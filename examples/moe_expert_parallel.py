#!/usr/bin/env python3
"""MoE training with expert parallelism: why C4D needs load smoothing.

The paper's §V discussion: expert-parallel jobs have *legitimate*
per-step load imbalance (tokens route to different experts every step),
which fools naive straggler detection; the fix is "averaging collected
data over a predefined period to smooth out random variations and
highlight systemic issues".

This demo trains a Llama-7B-with-experts job (DP=64, EP=16, alltoall
token exchange, 10% routing imbalance) twice:

1. healthy — the naive per-operation detector raises false alarms, the
   smoothed detector stays quiet;
2. with one genuinely slow GPU — both notice something, but only the
   smoothed detector points at the right node without noise.

Run:  python examples/moe_expert_parallel.py
"""

from repro.collective.context import CollectiveContext
from repro.core.c4d import AnomalyType, C4DMaster, DetectorConfig
from repro.netsim.units import GIB
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.training.job import JobSpec, TrainingJob
from repro.training.models import LLAMA_7B
from repro.training.parallelism import ParallelismPlan
from repro.workloads.generator import build_cluster


def run_job(slow_node=None, steps=8):
    scenario = build_cluster(ecmp_seed=3)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    spec = JobSpec(
        "moe",
        LLAMA_7B,
        ParallelismPlan(dp=64, ep=16),
        global_batch=128,
        ep_alltoall_bits=0.2 * GIB,
        ep_imbalance_std=0.1,
    )
    context = CollectiveContext(scenario.topology, sink=plane, job_id="moe")
    job = TrainingJob(spec, context, nodes=list(range(8)), seed=5)
    if slow_node is not None:
        scenario.topology.node(slow_node).gpus[2].compute_scale = 0.8
    job.run_steps(steps)
    scenario.network.run()
    return scenario, collector, job


def detect(collector, now, smooth_window):
    config = DetectorConfig(wait_min_lateness=0.1, smooth_window_ops=smooth_window)
    master = C4DMaster(collector, config)
    return [
        anomaly
        for anomaly in master.evaluate(now)
        if anomaly.anomaly_type is AnomalyType.NONCOMM_SLOW
    ]


def describe(label, anomalies):
    if not anomalies:
        print(f"  {label}: quiet")
        return
    for anomaly in anomalies:
        nodes = ", ".join(f"node{n}" for n in anomaly.suspect_nodes)
        print(f"  {label}: NONCOMM_SLOW on {anomaly.comm_id} -> {nodes}")


def main() -> None:
    print("--- healthy MoE job (random expert imbalance only) ---")
    scenario, collector, job = run_job(slow_node=None)
    print(f"  trained {len(job.steps)} steps, "
          f"mean step {sum(s.step_seconds for s in job.steps) / len(job.steps):.2f}s")
    describe("naive detector  ", detect(collector, scenario.network.now, 0))
    describe("smoothed detector", detect(collector, scenario.network.now, 6))

    print("--- same job with one GPU at 80% speed on node4 ---")
    scenario, collector, job = run_job(slow_node=4)
    describe("naive detector  ", detect(collector, scenario.network.now, 0))
    describe("smoothed detector", detect(collector, scenario.network.now, 6))


if __name__ == "__main__":
    main()
