#!/usr/bin/env python3
"""Chaos campaign: adversarial faults against the full C4 pipeline.

Five seeded scenarios attack the detect→steer→recover stack at once:

* two **flapping hosts** — faults that degrade a node, self-heal, and
  recur — under a telemetry channel that drops 10% of records and
  duplicates 5%;
* a **correlated cascade** (a ToR-style failure degrading a contiguous
  group of nodes in the same window);
* a **hard crash** whose steering actions themselves misbehave
  (isolation RPCs time out, replacement nodes arrive dead);
* a **corrupted checkpoint**: the newest snapshot is damaged right
  before the crash, so restore must fall back through the snapshot
  chain.

The campaign knows the ground truth it injected, so the run ends with a
scorecard instead of a vibe: detection precision/recall, false
isolations, isolation storms (the same node isolated twice for one
fault episode — what hysteresis exists to prevent), the MTTR
distribution, and wasted backup nodes.

Run:  python examples/chaos_campaign_demo.py
"""

from repro.analysis.export import campaign_scorecard_to_dict, write_json
from repro.chaos import ChaosCampaign

SEED = 7


def main() -> None:
    campaign = ChaosCampaign(seed=SEED)
    print(f"running {len(campaign.scenarios)} adversarial scenarios (seed {SEED})\n")
    card = campaign.run()

    for scenario in card.scenarios:
        print(f"{scenario.name} ({scenario.kind})")
        for episode in scenario.episodes:
            if episode.detected:
                status = f"detected, MTTR {episode.mttr_seconds:.0f}s"
            else:
                status = "missed"
            print(
                f"  episode {episode.episode_id} nodes={list(episode.nodes)} "
                f"onset={episode.onset:.0f}s -> {status}"
            )
        if scenario.channel:
            print(
                f"  telemetry: {scenario.channel['sent']} sent, "
                f"{scenario.channel['dropped_attempts']} attempts dropped, "
                f"{scenario.channel['duplicated']} duplicated, "
                f"{scenario.channel['abandoned']} lost for good"
            )
        if scenario.restore_fallbacks:
            print(
                f"  restore skipped {scenario.restore_fallbacks} corrupted "
                "snapshot(s) before finding a valid one"
            )
        print(
            f"  precision={scenario.precision:.2f} recall={scenario.recall:.2f} "
            f"storms={scenario.isolation_storms} "
            f"false_isolations={scenario.false_isolations} "
            f"wasted_backups={scenario.wasted_backups}\n"
        )

    stats = card.mttr_stats()
    print("campaign scorecard")
    print(f"  detection precision : {card.precision:.2f}")
    print(f"  episode recall      : {card.recall:.2f}")
    print(f"  isolation storms    : {card.isolation_storms}")
    print(f"  false isolations    : {card.false_isolations}")
    print(f"  wasted backups      : {card.wasted_backups}")
    if stats["count"]:
        print(
            f"  MTTR                : median {stats['median']:.0f}s "
            f"(min {stats['min']:.0f}s, max {stats['max']:.0f}s, n={stats['count']})"
        )
    path = write_json("chaos_scorecard.json", campaign_scorecard_to_dict(card))
    print(f"\nfull scorecard written to {path}")


if __name__ == "__main__":
    main()
