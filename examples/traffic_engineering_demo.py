#!/usr/bin/env python3
"""C4P demo: path probing, balanced allocation, failure recovery.

Walks through the three C4P mechanisms of §III-B on the simulated
testbed:

1. **path probing** — the master probes every leaf-spine route, finds a
   pre-existing dead link, and catalogs the source ports that steer
   traffic onto specific routes;
2. **balanced allocation** — eight concurrent jobs get plane-preserving,
   spine-balanced QP placements and all reach the NVLink-capped peak;
3. **dynamic load balancing** — a live uplink is killed mid-run and the
   balancer re-allocates displaced QPs and shifts load shares, keeping
   throughput near the 7/8 ideal.

Run:  python examples/traffic_engineering_demo.py
"""

from repro.core.c4p import C4PMaster, DynamicLoadBalancer, LoadBalancerConfig, PathProber
from repro.workloads.generator import build_cluster, concurrent_allreduce_jobs, fig12_spec


def demo_probing() -> None:
    print("--- path probing at start-up ---")
    scenario = build_cluster(ecmp_seed=4)
    # One leaf-spine link is already broken when C4P arrives.
    scenario.network.fail_link(("lup", 0, 0, 2, 1))
    master = C4PMaster(scenario.topology)
    dead = sorted(master.registry.dead_links)
    print(f"  probe catalogued {len(dead)} dead link(s): {dead}")
    prober = PathProber(scenario.topology)
    results = prober.full_mesh(0, find_ports=True)
    healthy = [r for r in results if r.healthy]
    example = healthy[0]
    print(f"  rail 0: {len(healthy)}/{len(results)} routes healthy; e.g. "
          f"source port {example.src_port} steers onto spine {example.choice.spine} "
          f"(side {example.choice.src_side}, uplink port {example.choice.up_port})")


def demo_balanced_jobs() -> None:
    print("--- balanced allocation across 8 concurrent jobs ---")
    for use_c4p in (False, True):
        scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=4)
        runners = concurrent_allreduce_jobs(scenario, max_ops=6, warmup_ops=2)
        for runner in runners:
            runner.start()
        scenario.network.run()
        series = sorted(runner.mean_busbw_gbps for runner in runners)
        label = "with C4P" if use_c4p else "ECMP    "
        print(f"  {label}: per-job busbw {series[0]:.0f}..{series[-1]:.0f} Gbps, "
              f"mean {sum(series) / len(series):.0f}")


def demo_failure_recovery() -> None:
    print("--- dynamic load balance through a link failure ---")
    for dynamic in (False, True):
        scenario = build_cluster(fig12_spec(), use_c4p=True, ecmp_seed=6)
        runners = concurrent_allreduce_jobs(
            scenario, max_ops=10_000, warmup_ops=0, stop_time=1.5,
            dynamic=dynamic, qp_work_stealing=dynamic,
        )
        for runner in runners:
            runner.start()
        if dynamic:
            balancer = DynamicLoadBalancer(
                [r.context for r in runners], LoadBalancerConfig(interval=0.02)
            )
            balancer.start()
        scenario.network.schedule(
            0.1, lambda s=scenario: s.network.fail_link(("lup", 0, 0, 0, 0))
        )
        scenario.network.run(until=1.5)
        after = [
            h.busbw_per_nic_gbps
            for r in runners
            for h in r.handles
            if h.start_time > 0.15
        ]
        label = "dynamic LB" if dynamic else "static TE "
        print(f"  {label}: busbw after failure "
              f"{min(after):.0f}..{max(after):.0f} Gbps, "
              f"mean {sum(after) / len(after):.0f} (7/8 ideal = 317)")


def main() -> None:
    demo_probing()
    demo_balanced_jobs()
    demo_failure_recovery()


if __name__ == "__main__":
    main()
