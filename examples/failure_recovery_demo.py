#!/usr/bin/env python3
"""The complete Fig. 4 loop: crash → detect → isolate → restart → finish.

A GPT-22B job (TP8 x DP4, 32 GPUs) runs under the full C4 deployment —
monitored ACCL, C4 agents, the C4D master evaluating every 5 simulated
seconds, a scheduler with the paper's backup provisioning, and an
in-memory checkpointer saving every 3 steps.

Two worker crashes are injected.  The first is absorbed by the backup
pool; the second exhausts it and the job elastically shrinks its DP
degree to finish on the remaining healthy nodes.

Run:  python examples/failure_recovery_demo.py
"""

from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.steering import SteeringConfig
from repro.training.job import JobSpec
from repro.training.memory_checkpoint import InMemoryCheckpointer
from repro.training.models import GPT_22B
from repro.training.parallelism import ParallelismPlan
from repro.training.recovery import RecoveryOrchestrator
from repro.training.scheduler import ClusterScheduler
from repro.workloads.generator import build_cluster


def main() -> None:
    scenario = build_cluster(ecmp_seed=2)
    scheduler = ClusterScheduler(scenario.topology, backup_ratio=1 / 16)
    print(f"cluster: {scenario.topology.spec.num_nodes} nodes, "
          f"{len(scheduler.backup_pool)} reserved as backups "
          f"(paper: 8 spares per 128 servers)")

    spec = JobSpec("gpt22b", GPT_22B, ParallelismPlan(tp=8, dp=4), global_batch=64)
    orchestrator = RecoveryOrchestrator(
        scenario.topology,
        scheduler,
        spec,
        detector_config=DetectorConfig(hang_timeout=20.0),
        steering_config=SteeringConfig(isolation_seconds=60, restart_seconds=120),
        checkpointer=InMemoryCheckpointer(interval_steps=3, save_seconds=0.1),
        evaluation_interval=5.0,
    )
    report = orchestrator.start(num_nodes=4, total_steps=30)
    print(f"job launched on nodes {list(scheduler.allocation_of('job').nodes)}; "
          f"target {report.target_steps} steps")

    def second_crash() -> None:
        if not report.finished:
            orchestrator.crash_node(0)

    scenario.network.schedule(10.0, lambda: orchestrator.crash_node(2))
    scenario.network.schedule(250.0, second_crash)
    scenario.network.run(until=2000.0)

    print(f"run finished: {report.finished} "
          f"({report.completed_steps}/{report.target_steps} steps)")
    for index, event in enumerate(report.events):
        print(f"crash #{index + 1} at t={event.crash_time:.0f}s:")
        print(f"  detected in {event.detection_seconds:.0f}s "
              f"(paper: tens of seconds vs ~30 min elastic-agent timeout)")
        print(f"  isolated node(s) {list(event.isolated_nodes)}, "
              f"backup(s) {list(event.replacement_nodes) or 'pool exhausted -> DP shrinks'}")
        print(f"  restored from step {event.restored_step} "
              f"({event.lost_steps} step(s) of work lost; ckpt every 3)")
        print(f"  training resumed after {event.downtime_seconds:.0f}s of downtime")
    nodes_now = scheduler.allocation_of("job").nodes
    print(f"final allocation: nodes {list(nodes_now)}")


if __name__ == "__main__":
    main()
