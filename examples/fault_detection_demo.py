#!/usr/bin/env python3
"""C4D demo: inject hardware faults, watch them get localized and steered.

Reproduces the paper's Fig. 4/5 recovery loop end-to-end on a simulated
cluster:

1. a training-style allreduce workload runs with full ACCL monitoring
   (communicator / operation / transport records flowing through
   per-node C4 agents to the central collector);
2. three faults are injected — a degraded NIC port (communication slow),
   a straggler GPU (non-communication slow) and a crashed worker
   (non-communication hang);
3. the C4D master detects each syndrome from the records alone,
   localizes the faulty component, and the steering service isolates the
   node and pulls in a backup.

Run:  python examples/fault_detection_demo.py
"""

import numpy as np

from repro.cluster.faults import FaultInjector
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.placement import contiguous_ranks
from repro.core.c4d import C4DMaster, DetectorConfig, JobSteeringService, RootCauseAnalyzer
from repro.netsim.units import GIB
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.workloads.generator import build_cluster


def scenario_comm_slow() -> None:
    print("--- communication slow: degraded NIC port on node3/nic5 ---")
    scenario = build_cluster(ecmp_seed=11)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    context = CollectiveContext(scenario.topology, sink=plane)
    comm = context.communicator(contiguous_ranks(range(8), 8), comm_id="dp")

    injector = FaultInjector(seed=0)
    injector.degrade_nic_port(scenario.topology, node=3, nic=5, side=0, scale=0.25)
    injector.degrade_nic_port(scenario.topology, node=3, nic=5, side=1, scale=0.25)

    runner = RepeatedOp(context, comm, OpType.ALLREDUCE, 1 * GIB, max_ops=5)
    runner.start()
    scenario.network.run()

    master = C4DMaster(collector, DetectorConfig(slow_window=1e9))
    for anomaly in master.evaluate(scenario.network.now):
        suspects = ", ".join(str(s) for s in anomaly.suspects)
        print(f"  detected {anomaly.anomaly_type.value}: suspects [{suspects}] "
              f"(max delay ratio {anomaly.evidence.get('max_ratio', 0):.1f}x)")


def scenario_straggler() -> None:
    print("--- non-communication slow: straggler GPU node2/gpu5 ---")
    scenario = build_cluster(ecmp_seed=11)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    context = CollectiveContext(scenario.topology, sink=plane)
    comm = context.communicator(contiguous_ranks(range(8), 8), comm_id="dp")
    rng = np.random.default_rng(1)

    state = {"ops": 0}

    def run_once() -> None:
        offsets = list(rng.uniform(0.0, 0.002, comm.size))
        offsets[21] += 0.4  # rank 21 = node2/gpu5 keeps arriving late
        context.run_op(comm, OpType.ALLREDUCE, 1 * GIB, entry_offsets=offsets,
                       on_complete=on_done)

    def on_done(_handle) -> None:
        state["ops"] += 1
        if state["ops"] < 4:
            run_once()

    run_once()
    scenario.network.run()
    master = C4DMaster(collector)
    for anomaly in master.evaluate(scenario.network.now):
        suspects = ", ".join(str(s) for s in anomaly.suspects)
        print(f"  detected {anomaly.anomaly_type.value}: suspects [{suspects}] "
              f"(lateness {anomaly.evidence.get('lateness', 0):.2f}s)")


def scenario_crash_and_steer() -> None:
    print("--- non-communication hang: worker on node1 crashes; steering reacts ---")
    scenario = build_cluster(ecmp_seed=11)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    context = CollectiveContext(scenario.topology, sink=plane)
    comm = context.communicator(contiguous_ranks(range(4), 8), comm_id="dp")

    context.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    scenario.network.run()
    # Worker (node1, gpu2) dies before the next collective: its launch
    # record never appears.
    context.run_op(comm, OpType.ALLREDUCE, 1 * GIB, absent_ranks=[10])
    scenario.network.schedule(120.0, lambda: None)
    scenario.network.run()

    steering = JobSteeringService(scenario.topology, backup_nodes=[15])
    rca = RootCauseAnalyzer()
    master = C4DMaster(collector, steering=steering, rca=rca)
    for anomaly in master.evaluate(scenario.network.now):
        suspects = ", ".join(str(s) for s in anomaly.suspects)
        print(f"  detected {anomaly.anomaly_type.value}: suspects [{suspects}]")
    for action in steering.actions:
        print(f"  steering: isolated nodes {list(action.isolated_nodes)}, "
              f"backups {list(action.replacement_nodes)}, "
              f"job ready at t={action.ready_at:.0f}s")
    report = rca.report()
    print(f"  offline RCA queue: {report.total_cases} case(s) filed")


def main() -> None:
    scenario_comm_slow()
    scenario_straggler()
    scenario_crash_and_steer()


if __name__ == "__main__":
    main()
