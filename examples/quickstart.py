#!/usr/bin/env python3
"""Quickstart: build a cluster, run a collective, see C4P's effect.

Builds the paper's 16-node/128-GPU testbed twice — once with plain ECMP
path selection, once with C4P's global traffic engineering — runs an
nccl-test-style allreduce on each, and prints the achieved bus
bandwidth.  This is the Fig. 9 experiment in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext
from repro.collective.placement import contiguous_ranks
from repro.core.c4p import C4PMaster, C4PSelector
from repro.netsim.units import GIB
from repro.workloads.generator import build_cluster


def run_allreduce(use_c4p: bool) -> float:
    """One 1-GiB allreduce over 8 nodes; returns busbw in Gbps."""
    scenario = build_cluster(use_c4p=False, ecmp_seed=9)
    selector = None
    if use_c4p:
        master = C4PMaster(scenario.topology)
        selector = C4PSelector(master)
    context = CollectiveContext(scenario.topology, selector=selector)
    comm = context.communicator(contiguous_ranks(range(8), 8))
    handle = context.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    scenario.network.run()
    return handle.busbw_per_nic_gbps


def main() -> None:
    without = run_allreduce(use_c4p=False)
    with_c4p = run_allreduce(use_c4p=True)
    print("allreduce over 64 GPUs on the 16-node testbed")
    print(f"  ECMP baseline : {without:7.1f} Gbps busbw per NIC")
    print(f"  with C4P      : {with_c4p:7.1f} Gbps busbw per NIC "
          f"(+{100 * (with_c4p / without - 1):.0f}%)")
    print("  (the NVLink fabric caps the peak at ~362 Gbps, as in the paper)")


if __name__ == "__main__":
    main()
