#!/usr/bin/env python3
"""A shared production cluster: training jobs, faults, C4 end to end.

The capstone scenario: the paper's three Fig. 14 training jobs cannot
run concurrently on one 16-node testbed, so this demo runs Job1
(GPT-22B, TP8 x DP16) as the tenant of record and exercises the full C4
deployment around it:

* the job trains with ACCL monitoring on;
* C4P plans its paths (vs the ECMP baseline, shown first);
* a GPU on one node silently degrades mid-training — C4D catches the
  straggler from the BSP launch skew and the steering service swaps the
  node for a backup;
* the month-scale downtime model prices out what that automation is
  worth (Table III's 30x).

Run:  python examples/multi_job_cluster.py
"""

from repro.collective.context import CollectiveContext
from repro.core.c4d import C4DMaster, DetectorConfig, JobSteeringService
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.training.job import TrainingJob
from repro.training.lifetime import (
    BASELINE_OPERATIONS,
    C4D_OPERATIONS,
    LifetimeConfig,
    simulate_lifetime,
)
from repro.workloads.generator import FIG14_SPECS, build_cluster


def train(use_c4p: bool, steps: int = 3) -> float:
    scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=12)
    spec = FIG14_SPECS["job1"]
    context = CollectiveContext(
        scenario.topology, selector=scenario.selector(), job_id=spec.name
    )
    job = TrainingJob(spec, context, nodes=list(range(16)))
    job.run_steps(steps)
    scenario.network.run()
    return job.throughput_samples_per_second(skip=1)


def train_with_fault_and_c4d() -> None:
    scenario = build_cluster(use_c4p=True, ecmp_seed=12)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    spec = FIG14_SPECS["job1"]
    context = CollectiveContext(
        scenario.topology, selector=scenario.selector(), sink=plane, job_id=spec.name
    )
    job = TrainingJob(spec, context, nodes=list(range(16)))

    # A GPU on node 9 drops to 40% speed after the first step completes.
    def degrade() -> None:
        scenario.topology.node(9).gpus[4].compute_scale = 0.4

    scenario.network.schedule(4.0, degrade)
    job.run_steps(6)
    scenario.network.run()

    steering = JobSteeringService(scenario.topology, backup_nodes=[])
    master = C4DMaster(collector, DetectorConfig(wait_min_lateness=0.2), steering=steering)
    anomalies = master.evaluate(scenario.network.now)
    print(f"  trained {len(job.steps)} steps; "
          f"step time grew from {job.steps[0].step_seconds:.2f}s "
          f"to {job.steps[-1].step_seconds:.2f}s after the degradation")
    for anomaly in anomalies:
        suspects = ", ".join(str(s) for s in anomaly.suspects)
        print(f"  C4D: {anomaly.anomaly_type.value} -> [{suspects}]")
    for action in steering.actions:
        print(f"  steering isolated node(s) {list(action.isolated_nodes)}; "
              f"restart ready at t={action.ready_at:.0f}s")


def downtime_value() -> None:
    config = LifetimeConfig(seed=7)
    before = simulate_lifetime(config, BASELINE_OPERATIONS)
    after = simulate_lifetime(config, C4D_OPERATIONS)
    f_before = before.total_seconds / before.duration_seconds
    f_after = after.total_seconds / after.duration_seconds
    print(f"  month-scale downtime: {100 * f_before:.1f}% without C4D "
          f"-> {100 * f_after:.2f}% with C4D "
          f"({f_before / f_after:.0f}x reduction; paper: 31.19% -> 1.16%)")


def main() -> None:
    print("--- GPT-22B training throughput (Fig. 14 Job1) ---")
    baseline = train(use_c4p=False)
    optimized = train(use_c4p=True)
    print(f"  ECMP baseline: {baseline:.1f} samples/s")
    print(f"  with C4P     : {optimized:.1f} samples/s "
          f"(+{100 * (optimized / baseline - 1):.1f}%; paper: +15.95%)")

    print("--- mid-training GPU degradation, caught by C4D ---")
    train_with_fault_and_c4d()

    print("--- what the automation is worth over a month (Table III) ---")
    downtime_value()


if __name__ == "__main__":
    main()
