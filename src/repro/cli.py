"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig9
    python -m repro run table3 --seed 11
    python -m repro run all
    python -m repro chaos --seed 7 --json scorecard.json --obs obs.json
    python -m repro obs                 # instrumented smoke run + dashboard
    python -m repro obs --snapshot obs.json   # render a saved snapshot
    python -m repro lint                # determinism/event-safety static analysis
    python -m repro lint --json         # machine-readable diagnostics
    python -m repro lint --racecheck link-down --replays 5   # dynamic race detector

Each experiment prints the same rows/series the paper reports; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import json
import sys
# Wall-clock timing uses perf_counter: time.time() is wall time subject
# to NTP steps/slews, so a clock adjustment mid-experiment could report
# a negative or wildly wrong duration.
from time import perf_counter

from repro.experiments import EXPERIMENTS, fig10


def _run_one(name: str, seed: int | None) -> None:
    module, description = EXPERIMENTS[name]
    print(f"--- {name}: {description} ---")
    started = perf_counter()
    kwargs = {}
    if seed is not None:
        # Every runner takes exactly one seed-like parameter.
        for param in ("seed", "ecmp_seed"):
            if param in module.run.__code__.co_varnames[: module.run.__code__.co_argcount]:
                kwargs[param] = seed
                break
    if module is fig10:
        kwargs["oversub_2to1"] = name.endswith("b")
    result = module.run(**kwargs)
    print(module.format_result(result))
    print(f"[{name} finished in {perf_counter() - started:.1f}s]\n")


def _run_chaos(
    seed: int,
    json_path: str | None,
    kind: str | None = None,
    obs_path: str | None = None,
) -> int:
    """Run the default chaos campaign and print/export the scorecard."""
    # Imported lazily: the chaos stack is not needed for 'list'/'run'.
    from repro.analysis.export import campaign_scorecard_to_dict, write_json
    from repro.chaos import ChaosCampaign, ScenarioKind, default_campaign

    started = perf_counter()
    scenarios = default_campaign(seed)
    if kind is not None:
        valid = sorted(k.value for k in ScenarioKind)
        if kind not in valid:
            print(
                f"unknown chaos kind {kind!r}; valid kinds: {', '.join(valid)}",
                file=sys.stderr,
            )
            return 2
        scenarios = [s for s in scenarios if s.kind.value == kind]
    campaign = ChaosCampaign(scenarios=scenarios)
    print(f"--- chaos: {len(campaign.scenarios)} adversarial scenarios, seed {seed} ---")
    card = campaign.run()
    for scenario in card.scenarios:
        if scenario.fabric is not None:
            m = scenario.fabric
            recovery = f"{m.recovery_time:.0f}s" if m.recovery_time is not None else "-"
            print(
                f"{scenario.name:24s} qps={m.qps_total} migrations={m.migrations} "
                f"residual={m.residual_after_deadline} stranded={m.stranded} "
                f"reroute_max={m.reroute_latency_max:.1f}s "
                f"holddown_violations={m.holddown_violations} "
                f"plane_violations={m.plane_violations} "
                f"spine_imbalance={m.spine_imbalance:.2f} "
                f"recovery={recovery} recovered_links={m.recovered_links}"
            )
            continue
        if scenario.controlplane is not None:
            m = scenario.controlplane
            recovery = (
                f"{m.recovery_seconds:.0f}s" if m.recovery_seconds is not None else "-"
            )
            print(
                f"{scenario.name:24s} recall={scenario.recall:.2f} "
                f"digest_match={m.replay_digest_match} "
                f"duplicates={m.duplicate_actions} stale={m.stale_actions_executed} "
                f"fenced={m.fencing_rejections} "
                f"blackout_false_isolations={m.blackout_false_isolations} "
                f"coverage_min={m.coverage_min:.2f} recovery={recovery} "
                f"replayed={m.entries_replayed} backfilled={m.backfilled_records}"
            )
            continue
        mttr = ", ".join(f"{v:.0f}s" for v in scenario.mttr_values) or "-"
        print(
            f"{scenario.name:24s} precision={scenario.precision:.2f} "
            f"recall={scenario.recall:.2f} storms={scenario.isolation_storms} "
            f"false_isolations={scenario.false_isolations} "
            f"wasted_backups={scenario.wasted_backups} mttr=[{mttr}]"
        )
    stats = card.mttr_stats()
    print(
        f"campaign: precision={card.precision:.2f} recall={card.recall:.2f} "
        f"storms={card.isolation_storms} false_isolations={card.false_isolations} "
        f"wasted_backups={card.wasted_backups}"
    )
    if stats["count"]:
        print(
            f"MTTR: n={stats['count']} min={stats['min']:.0f}s "
            f"median={stats['median']:.0f}s mean={stats['mean']:.0f}s "
            f"max={stats['max']:.0f}s"
        )
    if json_path:
        write_json(json_path, campaign_scorecard_to_dict(card))
        print(f"scorecard written to {json_path}")
    if obs_path:
        snapshot = campaign.obs.snapshot(
            meta={
                "title": "chaos campaign observability",
                "seed": seed,
                "scenarios": len(campaign.scenarios),
            }
        )
        write_json(obs_path, snapshot)
        print(f"observability snapshot written to {obs_path}")
    print(f"[chaos finished in {perf_counter() - started:.1f}s]")
    return 0


def _run_obs(
    snapshot_path: str | None,
    seed: int,
    json_path: str | None,
    prometheus: bool,
) -> int:
    """Render an observability dashboard.

    With ``--snapshot`` an archived JSON snapshot is rendered as-is;
    otherwise a short instrumented fabric chaos smoke runs first and its
    snapshot is rendered (and optionally dumped with ``--json``).
    """
    from repro.obs import render_dashboard

    if snapshot_path is not None:
        with open(snapshot_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
        print(render_dashboard(snapshot))
        return 0

    from repro.chaos import ChaosCampaign
    from repro.chaos.scenario import link_down_scenario, spine_maintenance_scenario

    campaign = ChaosCampaign(
        scenarios=[link_down_scenario(seed), spine_maintenance_scenario(seed + 1)]
    )
    campaign.run()
    snapshot = campaign.obs.snapshot(
        meta={"title": "instrumented fabric smoke", "seed": seed}
    )
    if prometheus:
        # Rebuild nothing: the campaign's registry renders directly.
        print(campaign.obs.registry.render_prometheus())
    else:
        print(render_dashboard(snapshot))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=1)
        print(f"\nobservability snapshot written to {json_path}")
    return 0


def _run_lint(
    paths: list[str],
    json_output: bool,
    racecheck_name: str | None,
    replays: int,
    seed: int,
    report_path: str | None,
) -> int:
    """Static determinism lint and/or the schedule-perturbation racecheck.

    Exit status is non-zero when any unsuppressed diagnostic remains or
    any perturbed replay diverges — the CI contract.
    """
    from pathlib import Path

    from repro.lint import lint_paths, racecheck_scenario, scenario_names

    status = 0
    if racecheck_name is None or paths:
        targets = paths or [str(Path(__file__).resolve().parent)]
        report = lint_paths(targets)
        print(report.render_json() if json_output else report.render())
        if not report.ok:
            status = 1
    if racecheck_name is not None:
        if racecheck_name not in scenario_names():
            print(
                f"unknown racecheck scenario {racecheck_name!r}; "
                f"choose from: {', '.join(scenario_names())}",
                file=sys.stderr,
            )
            return 2
        race = racecheck_scenario(racecheck_name, replays=replays, seed=seed)
        print(json.dumps(race.to_dict(), indent=2) if json_output else race.render())
        if report_path:
            with open(report_path, "w", encoding="utf-8") as handle:
                json.dump(race.to_dict(), handle, indent=2)
            print(f"racecheck report written to {report_path}")
        if race.diverged:
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the C4 paper's tables and figures on the simulator.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment's seed"
    )
    run_parser.add_argument(
        "--obs",
        default=None,
        metavar="PATH",
        help="write the process-wide metrics snapshot as JSON after the run",
    )
    chaos_parser = subparsers.add_parser(
        "chaos", help="run the adversarial chaos campaign and print the scorecard"
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0, help="base seed for the scenario suite"
    )
    chaos_parser.add_argument(
        "--json", default=None, metavar="PATH", help="also write the scorecard as JSON"
    )
    chaos_parser.add_argument(
        "--kind",
        default=None,
        metavar="KIND",
        help="run only scenarios of one kind (pipeline, recovery, fabric, controlplane)",
    )
    chaos_parser.add_argument(
        "--obs",
        default=None,
        metavar="PATH",
        help="write the observability snapshot (fault spans + metrics) as JSON",
    )
    obs_parser = subparsers.add_parser(
        "obs", help="render an observability dashboard (live smoke run or saved snapshot)"
    )
    obs_parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="render a previously saved snapshot instead of running a smoke",
    )
    obs_parser.add_argument(
        "--seed", type=int, default=0, help="seed for the smoke scenarios"
    )
    obs_parser.add_argument(
        "--json", default=None, metavar="PATH", help="also write the smoke's snapshot"
    )
    obs_parser.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition instead of the dashboard",
    )
    lint_parser = subparsers.add_parser(
        "lint", help="determinism & event-safety checks (static rules + racecheck)"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON diagnostics"
    )
    lint_parser.add_argument(
        "--racecheck",
        default=None,
        metavar="SCENARIO",
        help="also run the schedule-perturbation race detector on a named scenario",
    )
    lint_parser.add_argument(
        "--replays", type=int, default=5, help="perturbed replays per racecheck"
    )
    lint_parser.add_argument(
        "--seed", type=int, default=0, help="scenario + perturbation base seed"
    )
    lint_parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the racecheck divergence report as JSON",
    )
    args = parser.parse_args(argv)

    if args.command == "lint":
        return _run_lint(
            args.paths, args.json, args.racecheck, args.replays, args.seed, args.report
        )

    if args.command == "obs":
        return _run_obs(args.snapshot, args.seed, args.json, args.prometheus)

    if args.command == "chaos":
        return _run_chaos(args.seed, args.json, args.kind, args.obs)

    if args.command == "list":
        for name, (_module, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    def dump_default_registry() -> None:
        if not args.obs:
            return
        from repro.obs import build_snapshot
        from repro.obs.metrics import DEFAULT_REGISTRY

        snapshot = build_snapshot(
            DEFAULT_REGISTRY, meta={"title": "experiment run", "experiment": args.experiment}
        )
        with open(args.obs, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=1)
        print(f"metrics snapshot written to {args.obs}")

    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run_one(name, args.seed)
        dump_default_registry()
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    _run_one(args.experiment, args.seed)
    dump_default_registry()
    return 0
