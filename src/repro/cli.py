"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig9
    python -m repro run table3 --seed 11
    python -m repro run all
    python -m repro chaos --seed 7 --json scorecard.json

Each experiment prints the same rows/series the paper reports; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, fig10


def _run_one(name: str, seed: int | None) -> None:
    module, description = EXPERIMENTS[name]
    print(f"--- {name}: {description} ---")
    started = time.time()
    kwargs = {}
    if seed is not None:
        # Every runner takes exactly one seed-like parameter.
        for param in ("seed", "ecmp_seed"):
            if param in module.run.__code__.co_varnames[: module.run.__code__.co_argcount]:
                kwargs[param] = seed
                break
    if module is fig10:
        kwargs["oversub_2to1"] = name.endswith("b")
    result = module.run(**kwargs)
    print(module.format_result(result))
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def _run_chaos(seed: int, json_path: str | None, kind: str | None = None) -> int:
    """Run the default chaos campaign and print/export the scorecard."""
    # Imported lazily: the chaos stack is not needed for 'list'/'run'.
    from repro.analysis.export import campaign_scorecard_to_dict, write_json
    from repro.chaos import ChaosCampaign, default_campaign

    started = time.time()
    scenarios = default_campaign(seed)
    if kind is not None:
        scenarios = [s for s in scenarios if s.kind.value == kind]
    campaign = ChaosCampaign(scenarios=scenarios)
    print(f"--- chaos: {len(campaign.scenarios)} adversarial scenarios, seed {seed} ---")
    card = campaign.run()
    for scenario in card.scenarios:
        if scenario.fabric is not None:
            m = scenario.fabric
            recovery = f"{m.recovery_time:.0f}s" if m.recovery_time is not None else "-"
            print(
                f"{scenario.name:24s} qps={m.qps_total} migrations={m.migrations} "
                f"residual={m.residual_after_deadline} stranded={m.stranded} "
                f"reroute_max={m.reroute_latency_max:.1f}s "
                f"holddown_violations={m.holddown_violations} "
                f"plane_violations={m.plane_violations} "
                f"spine_imbalance={m.spine_imbalance:.2f} "
                f"recovery={recovery} recovered_links={m.recovered_links}"
            )
            continue
        mttr = ", ".join(f"{v:.0f}s" for v in scenario.mttr_values) or "-"
        print(
            f"{scenario.name:24s} precision={scenario.precision:.2f} "
            f"recall={scenario.recall:.2f} storms={scenario.isolation_storms} "
            f"false_isolations={scenario.false_isolations} "
            f"wasted_backups={scenario.wasted_backups} mttr=[{mttr}]"
        )
    stats = card.mttr_stats()
    print(
        f"campaign: precision={card.precision:.2f} recall={card.recall:.2f} "
        f"storms={card.isolation_storms} false_isolations={card.false_isolations} "
        f"wasted_backups={card.wasted_backups}"
    )
    if stats["count"]:
        print(
            f"MTTR: n={stats['count']} min={stats['min']:.0f}s "
            f"median={stats['median']:.0f}s mean={stats['mean']:.0f}s "
            f"max={stats['max']:.0f}s"
        )
    if json_path:
        write_json(json_path, campaign_scorecard_to_dict(card))
        print(f"scorecard written to {json_path}")
    print(f"[chaos finished in {time.time() - started:.1f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the C4 paper's tables and figures on the simulator.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment's seed"
    )
    chaos_parser = subparsers.add_parser(
        "chaos", help="run the adversarial chaos campaign and print the scorecard"
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0, help="base seed for the scenario suite"
    )
    chaos_parser.add_argument(
        "--json", default=None, metavar="PATH", help="also write the scorecard as JSON"
    )
    chaos_parser.add_argument(
        "--kind",
        default=None,
        choices=("pipeline", "recovery", "fabric"),
        help="run only scenarios of one kind",
    )
    args = parser.parse_args(argv)

    if args.command == "chaos":
        return _run_chaos(args.seed, args.json, args.kind)

    if args.command == "list":
        for name, (_module, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run_one(name, args.seed)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    _run_one(args.experiment, args.seed)
    return 0
