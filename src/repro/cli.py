"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig9
    python -m repro run table3 --seed 11
    python -m repro run all

Each experiment prints the same rows/series the paper reports; see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, fig10


def _run_one(name: str, seed: int | None) -> None:
    module, description = EXPERIMENTS[name]
    print(f"--- {name}: {description} ---")
    started = time.time()
    kwargs = {}
    if seed is not None:
        # Every runner takes exactly one seed-like parameter.
        for param in ("seed", "ecmp_seed"):
            if param in module.run.__code__.co_varnames[: module.run.__code__.co_argcount]:
                kwargs[param] = seed
                break
    if module is fig10:
        kwargs["oversub_2to1"] = name.endswith("b")
    result = module.run(**kwargs)
    print(module.format_result(result))
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the C4 paper's tables and figures on the simulator.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment's seed"
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (_module, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run_one(name, args.seed)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    _run_one(args.experiment, args.seed)
    return 0
