"""Fault taxonomy and stochastic fault injection.

The taxonomy mirrors Table I of the paper: from the user's point of view
almost everything surfaces as an opaque "NCCL Error", while the root
causes split into CUDA errors, ECC/NVLink errors, CCL timeouts, ACK
timeouts and miscellaneous network problems, ~82.5% of which are local
to one node or device (the fact C4D exploits).

Two kinds of faults are modelled:

* **crash faults** — kill the job; consumed by the month-scale lifetime
  simulations (Tables I and III);
* **degradations** — slow GPUs / NIC ports / hosts and link failures;
  consumed by the runtime experiments (Figs. 7, 12, 13) and by C4D's
  slow-detection tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.topology import ClusterTopology


class FaultType(enum.Enum):
    """Root-cause categories (Table I)."""

    CUDA_ERROR = "cuda_error"
    ECC_NVLINK_ERROR = "ecc_nvlink_error"
    CCL_TIMEOUT = "ccl_timeout"
    ACK_TIMEOUT = "ack_timeout"
    NETWORK_OTHER = "network_other"
    # Degradations (non-crash):
    SLOW_GPU = "slow_gpu"
    SLOW_NIC_PORT = "slow_nic_port"
    SLOW_HOST = "slow_host"
    LINK_FAILURE = "link_failure"


class FaultClass(enum.Enum):
    """Whether the fault crashes the job or just slows it."""

    CRASH = "crash"
    DEGRADE = "degrade"


#: What the user sees for each root cause (Table I, "Users' View").
USER_VIEW = {
    FaultType.CUDA_ERROR: "NCCL Error",
    FaultType.ECC_NVLINK_ERROR: "NCCL Error",
    FaultType.CCL_TIMEOUT: "NCCL Error",
    FaultType.ACK_TIMEOUT: "NCCL Error",
    FaultType.NETWORK_OTHER: "Network Error",
}

#: Table I crash mix: root cause -> (proportion, fraction local to a
#: node/device).
PAPER_CRASH_MIX: dict[FaultType, tuple[float, float]] = {
    FaultType.CUDA_ERROR: (0.125, 1.00),
    FaultType.ECC_NVLINK_ERROR: (0.275, 1.00),
    FaultType.CCL_TIMEOUT: (0.20, 0.75),
    FaultType.ACK_TIMEOUT: (0.275, 0.818),
    FaultType.NETWORK_OTHER: (0.125, 0.40),
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``component`` identifies the faulty element: a node id for local
    faults, ``None`` for systemic ones.  ``device`` optionally narrows it
    to a GPU or NIC index within the node.
    """

    time: float
    fault_type: FaultType
    fault_class: FaultClass
    is_local: bool
    component: Optional[int] = None
    device: Optional[int] = None

    @property
    def user_view(self) -> str:
        """What the job logs show for this fault."""
        return USER_VIEW.get(self.fault_type, "NCCL Error")


@dataclass(frozen=True)
class FaultRates:
    """Crash-fault intensity.

    The paper's representative job (Table I) logged 40 crashes in one
    month on 4,096 GPUs, i.e. ~9.8e-3 crashes per GPU-month.  Rates are
    expressed per GPU-second so they compose with any duration/scale.
    """

    crashes_per_gpu_second: float = 40.0 / (4096 * 30 * 24 * 3600)
    mix: dict[FaultType, tuple[float, float]] = field(
        default_factory=lambda: dict(PAPER_CRASH_MIX)
    )

    def scaled(self, factor: float) -> "FaultRates":
        """Rates multiplied by ``factor`` (e.g. hardened hardware)."""
        return FaultRates(
            crashes_per_gpu_second=self.crashes_per_gpu_second * factor,
            mix=dict(self.mix),
        )


class FaultInjector:
    """Samples fault timelines and applies degradations to a topology."""

    def __init__(self, rates: Optional[FaultRates] = None, seed: int = 0) -> None:
        self.rates = rates or FaultRates()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Crash-fault sampling (Tables I / III)
    # ------------------------------------------------------------------
    def sample_crashes(
        self,
        duration_seconds: float,
        num_gpus: int,
        num_nodes: int,
    ) -> list[FaultEvent]:
        """Poisson-sample crash faults over a window.

        Returns events sorted by time.  Fault types follow the Table I
        mix; locality follows each type's local fraction; local faults
        pick a uniform victim node (and device for GPU-class faults).
        """
        if duration_seconds <= 0 or num_gpus <= 0:
            raise ValueError("duration and GPU count must be positive")
        rate = self.rates.crashes_per_gpu_second * num_gpus
        count = self._rng.poisson(rate * duration_seconds)
        times = np.sort(self._rng.uniform(0.0, duration_seconds, size=count))
        types = list(self.rates.mix.keys())
        probs = np.array([self.rates.mix[t][0] for t in types])
        probs = probs / probs.sum()
        events: list[FaultEvent] = []
        for time in times:
            fault_type = types[self._rng.choice(len(types), p=probs)]
            local_fraction = self.rates.mix[fault_type][1]
            is_local = bool(self._rng.random() < local_fraction)
            component = int(self._rng.integers(num_nodes)) if is_local else None
            device: Optional[int] = None
            if is_local and fault_type in (FaultType.CUDA_ERROR, FaultType.ECC_NVLINK_ERROR):
                device = int(self._rng.integers(8))
            events.append(
                FaultEvent(
                    time=float(time),
                    fault_type=fault_type,
                    fault_class=FaultClass.CRASH,
                    is_local=is_local,
                    component=component,
                    device=device,
                )
            )
        return events

    # ------------------------------------------------------------------
    # Degradations (runtime-slowdown experiments)
    # ------------------------------------------------------------------
    def degrade_gpu(
        self, topology: ClusterTopology, node: int, gpu: int, scale: float
    ) -> FaultEvent:
        """Make one GPU compute at ``scale`` of nominal speed."""
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        topology.node(node).gpus[gpu].compute_scale = scale
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.SLOW_GPU,
            fault_class=FaultClass.DEGRADE,
            is_local=True,
            component=node,
            device=gpu,
        )

    def degrade_nic_port(
        self, topology: ClusterTopology, node: int, nic: int, side: int, scale: float
    ) -> FaultEvent:
        """Reduce one physical NIC port to ``scale`` of line rate."""
        topology.set_port_scale(node, nic, side, scale)
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.SLOW_NIC_PORT,
            fault_class=FaultClass.DEGRADE,
            is_local=True,
            component=node,
            device=nic,
        )

    def degrade_host(self, topology: ClusterTopology, node: int, slowdown: float) -> FaultEvent:
        """Inflate a node's non-communication time by ``slowdown`` (>1)."""
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        topology.node(node).host_slowdown = slowdown
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.SLOW_HOST,
            fault_class=FaultClass.DEGRADE,
            is_local=True,
            component=node,
        )

    def fail_uplink(
        self, topology: ClusterTopology, rail: int, side: int, spine: int, port: int
    ) -> FaultEvent:
        """Kill one leaf→spine physical link (Fig. 12's induced failure)."""
        link_id = topology.leaf_up(rail, side, spine, port)
        topology.network.fail_link(link_id)
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.LINK_FAILURE,
            fault_class=FaultClass.DEGRADE,
            is_local=False,
            component=None,
        )

    def pick_victims(self, candidates: Sequence[int], count: int) -> list[int]:
        """Uniformly choose ``count`` distinct victims from ``candidates``."""
        if count > len(candidates):
            raise ValueError("not enough candidates")
        picks = self._rng.choice(len(candidates), size=count, replace=False)
        return [candidates[i] for i in picks]
