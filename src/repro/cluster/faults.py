"""Fault taxonomy and stochastic fault injection.

The taxonomy mirrors Table I of the paper: from the user's point of view
almost everything surfaces as an opaque "NCCL Error", while the root
causes split into CUDA errors, ECC/NVLink errors, CCL timeouts, ACK
timeouts and miscellaneous network problems, ~82.5% of which are local
to one node or device (the fact C4D exploits).

Two kinds of faults are modelled:

* **crash faults** — kill the job; consumed by the month-scale lifetime
  simulations (Tables I and III);
* **degradations** — slow GPUs / NIC ports / hosts and link failures;
  consumed by the runtime experiments (Figs. 7, 12, 13) and by C4D's
  slow-detection tests.

On top of those, the chaos harness (:mod:`repro.chaos`) draws three
adversarial families that production diagnosis systems must survive:

* **flapping faults** — transient degradations that self-heal and recur
  in on/off windows (a marginal optic, a thermally throttling GPU);
* **correlated cascades** — one shared-infrastructure failure (a ToR /
  leaf switch, a power shelf) degrading every node under it at once;
* **checkpoint corruption** — a saved snapshot silently damaged, so
  recovery must fall back to an older valid one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import ClusterTopology


def spine_fabric_links(spec: ClusterSpec, rail: int, spine: int) -> tuple[tuple, ...]:
    """Every fabric link id touching one spine (both sides, both tiers).

    The unit a spine maintenance (or a spine dying) takes down at once:
    all leaf→spine uplinks into it and all spine→leaf downlinks out of
    it, on both planes.
    """
    links: list[tuple] = []
    for side in (0, 1):
        for k in range(spec.uplink_ports_per_spine):
            links.append(ClusterTopology.leaf_up(rail, side, spine, k))
            links.append(ClusterTopology.spine_down(rail, spine, side, k))
    return tuple(links)


class FaultType(enum.Enum):
    """Root-cause categories (Table I)."""

    CUDA_ERROR = "cuda_error"
    ECC_NVLINK_ERROR = "ecc_nvlink_error"
    CCL_TIMEOUT = "ccl_timeout"
    ACK_TIMEOUT = "ack_timeout"
    NETWORK_OTHER = "network_other"
    # Degradations (non-crash):
    SLOW_GPU = "slow_gpu"
    SLOW_NIC_PORT = "slow_nic_port"
    SLOW_HOST = "slow_host"
    LINK_FAILURE = "link_failure"
    # Adversarial families (chaos harness):
    FLAPPING_HOST = "flapping_host"
    TOR_CASCADE = "tor_cascade"
    CHECKPOINT_CORRUPTION = "checkpoint_corruption"


class FaultClass(enum.Enum):
    """Whether the fault crashes the job or just slows it."""

    CRASH = "crash"
    DEGRADE = "degrade"


#: What the user sees for each root cause (Table I, "Users' View").
USER_VIEW = {
    FaultType.CUDA_ERROR: "NCCL Error",
    FaultType.ECC_NVLINK_ERROR: "NCCL Error",
    FaultType.CCL_TIMEOUT: "NCCL Error",
    FaultType.ACK_TIMEOUT: "NCCL Error",
    FaultType.NETWORK_OTHER: "Network Error",
}

#: Table I crash mix: root cause -> (proportion, fraction local to a
#: node/device).
PAPER_CRASH_MIX: dict[FaultType, tuple[float, float]] = {
    FaultType.CUDA_ERROR: (0.125, 1.00),
    FaultType.ECC_NVLINK_ERROR: (0.275, 1.00),
    FaultType.CCL_TIMEOUT: (0.20, 0.75),
    FaultType.ACK_TIMEOUT: (0.275, 0.818),
    FaultType.NETWORK_OTHER: (0.125, 0.40),
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``component`` identifies the faulty element: a node id for local
    faults, ``None`` for systemic ones.  ``device`` optionally narrows it
    to a GPU or NIC index within the node.
    """

    time: float
    fault_type: FaultType
    fault_class: FaultClass
    is_local: bool
    component: Optional[int] = None
    device: Optional[int] = None
    #: Active window of a transient fault; ``None`` means permanent
    #: (until repair).  A flapping episode is several events sharing an
    #: ``episode_id``, each with its own active window.
    duration: Optional[float] = None
    #: Groups the recurrences of one flapping fault.
    episode_id: Optional[int] = None
    #: Groups the correlated victims of one cascade (e.g. a ToR dying).
    cascade_id: Optional[int] = None

    @property
    def user_view(self) -> str:
        """What the job logs show for this fault."""
        return USER_VIEW.get(self.fault_type, "NCCL Error")

    @property
    def end_time(self) -> Optional[float]:
        """When a transient fault clears (None for permanent faults)."""
        if self.duration is None:
            return None
        return self.time + self.duration

    def active_at(self, now: float) -> bool:
        """True while the fault is degrading its component."""
        if now < self.time:
            return False
        return self.duration is None or now < self.time + self.duration


@dataclass(frozen=True)
class FaultRates:
    """Crash-fault intensity.

    The paper's representative job (Table I) logged 40 crashes in one
    month on 4,096 GPUs, i.e. ~9.8e-3 crashes per GPU-month.  Rates are
    expressed per GPU-second so they compose with any duration/scale.
    """

    crashes_per_gpu_second: float = 40.0 / (4096 * 30 * 24 * 3600)
    mix: dict[FaultType, tuple[float, float]] = field(
        default_factory=lambda: dict(PAPER_CRASH_MIX)
    )

    def scaled(self, factor: float) -> "FaultRates":
        """Rates multiplied by ``factor`` (e.g. hardened hardware)."""
        return FaultRates(
            crashes_per_gpu_second=self.crashes_per_gpu_second * factor,
            mix=dict(self.mix),
        )


class FaultInjector:
    """Samples fault timelines and applies degradations to a topology."""

    def __init__(self, rates: Optional[FaultRates] = None, seed: int = 0) -> None:
        self.rates = rates or FaultRates()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Crash-fault sampling (Tables I / III)
    # ------------------------------------------------------------------
    def sample_crashes(
        self,
        duration_seconds: float,
        num_gpus: int,
        num_nodes: int,
    ) -> list[FaultEvent]:
        """Poisson-sample crash faults over a window.

        Returns events sorted by time.  Fault types follow the Table I
        mix; locality follows each type's local fraction; local faults
        pick a uniform victim node (and device for GPU-class faults).
        """
        if duration_seconds <= 0 or num_gpus <= 0:
            raise ValueError("duration and GPU count must be positive")
        rate = self.rates.crashes_per_gpu_second * num_gpus
        count = self._rng.poisson(rate * duration_seconds)
        times = np.sort(self._rng.uniform(0.0, duration_seconds, size=count))
        types = list(self.rates.mix.keys())
        probs = np.array([self.rates.mix[t][0] for t in types])
        probs = probs / probs.sum()
        events: list[FaultEvent] = []
        for time in times:
            fault_type = types[self._rng.choice(len(types), p=probs)]
            local_fraction = self.rates.mix[fault_type][1]
            is_local = bool(self._rng.random() < local_fraction)
            component = int(self._rng.integers(num_nodes)) if is_local else None
            device: Optional[int] = None
            if is_local and fault_type in (FaultType.CUDA_ERROR, FaultType.ECC_NVLINK_ERROR):
                device = int(self._rng.integers(8))
            events.append(
                FaultEvent(
                    time=float(time),
                    fault_type=fault_type,
                    fault_class=FaultClass.CRASH,
                    is_local=is_local,
                    component=component,
                    device=device,
                )
            )
        return events

    # ------------------------------------------------------------------
    # Adversarial faults (chaos harness)
    # ------------------------------------------------------------------
    def sample_flapping(
        self,
        duration_seconds: float,
        num_nodes: int,
        episodes: int,
        mean_active_seconds: float = 120.0,
        mean_quiet_seconds: float = 60.0,
        max_recurrences: int = 4,
    ) -> list[FaultEvent]:
        """Sample flapping host degradations: active/quiet windows that recur.

        Each episode picks one victim node and alternates exponentially
        distributed active windows (the node is slow) with quiet windows
        (it looks healthy), up to ``max_recurrences`` active windows or
        the end of the horizon.  All recurrences of an episode share an
        ``episode_id``; events are returned sorted by onset time.
        """
        if duration_seconds <= 0 or num_nodes <= 0:
            raise ValueError("duration and node count must be positive")
        if episodes < 0 or max_recurrences < 1:
            raise ValueError("episodes must be >= 0 and max_recurrences >= 1")
        events: list[FaultEvent] = []
        for episode_id in range(episodes):
            node = int(self._rng.integers(num_nodes))
            onset = float(self._rng.uniform(0.0, duration_seconds * 0.5))
            for _ in range(max_recurrences):
                if onset >= duration_seconds:
                    break
                active = float(self._rng.exponential(mean_active_seconds))
                active = min(active, duration_seconds - onset)
                if active <= 0:
                    break
                events.append(
                    FaultEvent(
                        time=onset,
                        fault_type=FaultType.FLAPPING_HOST,
                        fault_class=FaultClass.DEGRADE,
                        is_local=True,
                        component=node,
                        duration=active,
                        episode_id=episode_id,
                    )
                )
                onset += active + float(self._rng.exponential(mean_quiet_seconds))
        events.sort(key=lambda e: (e.time, e.episode_id or 0))
        return events

    def sample_cascades(
        self,
        duration_seconds: float,
        num_nodes: int,
        cascades: int,
        group_size: int = 4,
        mean_active_seconds: float = 300.0,
    ) -> list[FaultEvent]:
        """Sample correlated cascades: a shared ToR degrading a node group.

        Each cascade picks a contiguous run of ``group_size`` nodes (the
        rack under one ToR) and degrades all of them over the same
        window.  Victim events share a ``cascade_id`` so scoring can
        credit one detection per cascade rather than per node.
        """
        if duration_seconds <= 0 or num_nodes <= 0:
            raise ValueError("duration and node count must be positive")
        if group_size < 1 or group_size > num_nodes:
            raise ValueError("group_size must be in [1, num_nodes]")
        events: list[FaultEvent] = []
        for cascade_id in range(cascades):
            first = int(self._rng.integers(num_nodes - group_size + 1))
            onset = float(self._rng.uniform(0.0, duration_seconds * 0.5))
            active = float(self._rng.exponential(mean_active_seconds))
            active = min(max(active, 1.0), duration_seconds - onset)
            for node in range(first, first + group_size):
                events.append(
                    FaultEvent(
                        time=onset,
                        fault_type=FaultType.TOR_CASCADE,
                        fault_class=FaultClass.DEGRADE,
                        is_local=True,
                        component=node,
                        duration=active,
                        cascade_id=cascade_id,
                    )
                )
        events.sort(key=lambda e: (e.time, e.component or 0))
        return events

    def sample_checkpoint_corruptions(
        self,
        duration_seconds: float,
        expected_events: float = 1.0,
    ) -> list[FaultEvent]:
        """Poisson-sample checkpoint-corruption events over a window.

        Each event marks one point in time at which the newest snapshot
        on disk/host memory is silently damaged; the recovery pipeline
        must detect this at restore time and fall back to an older one.
        """
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if expected_events < 0:
            raise ValueError("expected_events must be non-negative")
        count = int(self._rng.poisson(expected_events))
        times = np.sort(self._rng.uniform(0.0, duration_seconds, size=count))
        return [
            FaultEvent(
                time=float(t),
                fault_type=FaultType.CHECKPOINT_CORRUPTION,
                fault_class=FaultClass.DEGRADE,
                is_local=False,
            )
            for t in times
        ]

    # ------------------------------------------------------------------
    # Degradations (runtime-slowdown experiments)
    # ------------------------------------------------------------------
    def degrade_gpu(
        self, topology: ClusterTopology, node: int, gpu: int, scale: float
    ) -> FaultEvent:
        """Make one GPU compute at ``scale`` of nominal speed."""
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        topology.node(node).gpus[gpu].compute_scale = scale
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.SLOW_GPU,
            fault_class=FaultClass.DEGRADE,
            is_local=True,
            component=node,
            device=gpu,
        )

    def degrade_nic_port(
        self, topology: ClusterTopology, node: int, nic: int, side: int, scale: float
    ) -> FaultEvent:
        """Reduce one physical NIC port to ``scale`` of line rate."""
        topology.set_port_scale(node, nic, side, scale)
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.SLOW_NIC_PORT,
            fault_class=FaultClass.DEGRADE,
            is_local=True,
            component=node,
            device=nic,
        )

    def degrade_host(self, topology: ClusterTopology, node: int, slowdown: float) -> FaultEvent:
        """Inflate a node's non-communication time by ``slowdown`` (>1)."""
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        topology.node(node).host_slowdown = slowdown
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.SLOW_HOST,
            fault_class=FaultClass.DEGRADE,
            is_local=True,
            component=node,
        )

    def fail_uplink(
        self, topology: ClusterTopology, rail: int, side: int, spine: int, port: int
    ) -> FaultEvent:
        """Kill one leaf→spine physical link (Fig. 12's induced failure)."""
        link_id = topology.leaf_up(rail, side, spine, port)
        topology.network.fail_link(link_id)
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.LINK_FAILURE,
            fault_class=FaultClass.DEGRADE,
            is_local=False,
            component=None,
        )

    def fail_spine(self, topology: ClusterTopology, rail: int, spine: int) -> FaultEvent:
        """Take every fabric link of one spine down at once.

        Models an unannounced spine maintenance or a spine switch dying —
        the correlated-fabric analogue of :meth:`sample_cascades`.
        """
        for link_id in spine_fabric_links(topology.spec, rail, spine):
            topology.network.fail_link(link_id)
        return FaultEvent(
            time=topology.network.now,
            fault_type=FaultType.LINK_FAILURE,
            fault_class=FaultClass.DEGRADE,
            is_local=False,
            component=None,
        )

    def pick_victims(self, candidates: Sequence[int], count: int) -> list[int]:
        """Uniformly choose ``count`` distinct victims from ``candidates``."""
        if count > len(candidates):
            raise ValueError("not enough candidates")
        picks = self._rng.choice(len(candidates), size=count, replace=False)
        return [candidates[i] for i in picks]
