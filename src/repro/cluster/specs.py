"""Cluster hardware and fabric specifications.

The numbers mirror Table II of the paper: nodes with 8 NVIDIA H800 GPUs
and 8 BlueField-3 NICs, each NIC exposing two physical 200 Gbps ports
bonded into one logical 400 Gbps port, wired into a Fat-Tree Clos fabric
with a 1:1 oversubscription rate.  The NVLink fabric inside a node caps
achievable per-GPU bus bandwidth at ~362 Gbps (the paper's measured
peak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.units import GBPS


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster and its fabric.

    Attributes
    ----------
    num_nodes:
        Number of compute nodes.
    gpus_per_node:
        GPUs per node (the paper's clusters use 8).
    nics_per_node:
        Dual-port NICs per node; one per GPU in the reference design.
    port_gbps:
        Line rate of one physical NIC port (200 Gbps for BlueField-3).
    rails:
        Number of leaf-switch *pairs*.  NIC ``j`` of every node attaches
        to rail ``j % rails``; each rail has a left and a right leaf, and
        NIC port L/R connects to the corresponding leaf of the pair.
        The paper's 16-node testbed has 8 leaf switches → 4 rails.
    spines_per_rail:
        Spine switches reachable from each rail's leaves (the paper's
        Fig. 12 failure experiment counts "8 uplinks").
    uplink_ports_per_spine:
        Parallel physical links between a leaf and each spine.
    uplink_port_gbps:
        Line rate of one leaf-spine physical link.
    oversubscription:
        Downlink:uplink capacity ratio; 1.0 means a non-blocking 1:1
        fabric, 2.0 halves effective uplink capacity (the paper creates
        2:1 by disabling half the spines).
    nvlink_busbw_gbps:
        Effective per-GPU NVLink bus-bandwidth ceiling (362 Gbps
        measured in the paper).
    """

    num_nodes: int
    gpus_per_node: int = 8
    nics_per_node: int = 8
    port_gbps: float = 200.0
    rails: int = 4
    spines_per_rail: int = 8
    uplink_ports_per_spine: int = 4
    uplink_port_gbps: float = 200.0
    oversubscription: float = 1.0
    nvlink_busbw_gbps: float = 362.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.nics_per_node % self.rails != 0:
            raise ValueError(
                f"nics_per_node ({self.nics_per_node}) must be a multiple of rails ({self.rails})"
            )
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        """Total GPU count across the cluster."""
        return self.num_nodes * self.gpus_per_node

    @property
    def nics_per_rail(self) -> int:
        """NICs of one node attached to each rail."""
        return self.nics_per_node // self.rails

    @property
    def port_capacity(self) -> float:
        """One physical NIC port's capacity in bits/s."""
        return self.port_gbps * GBPS

    @property
    def bonded_capacity(self) -> float:
        """Logical bonded NIC capacity in bits/s (two ports)."""
        return 2 * self.port_capacity

    @property
    def uplink_capacity(self) -> float:
        """One leaf-spine physical link's capacity in bits/s, after
        applying the oversubscription ratio."""
        return self.uplink_port_gbps * GBPS / self.oversubscription

    @property
    def leaf_downlink_ports(self) -> int:
        """Host-facing ports per leaf switch."""
        return self.num_nodes * self.nics_per_rail

    @property
    def leaf_uplink_ports(self) -> int:
        """Spine-facing ports per leaf switch."""
        return self.spines_per_rail * self.uplink_ports_per_spine

    @property
    def nvlink_capacity(self) -> float:
        """Per-node NVLink stage capacity in bits/s.

        Each inter-node ring edge crosses the NVLink stage of both its
        endpoints, and up to ``nics_per_node`` channels are in flight per
        direction, so the stage must carry 2 x nics x per-channel ceiling
        for the per-channel ceiling to equal ``nvlink_busbw_gbps``.
        """
        return 2 * self.nics_per_node * self.nvlink_busbw_gbps * GBPS

    def with_oversubscription(self, ratio: float) -> "ClusterSpec":
        """Copy of this spec with a different oversubscription ratio."""
        return ClusterSpec(
            num_nodes=self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            nics_per_node=self.nics_per_node,
            port_gbps=self.port_gbps,
            rails=self.rails,
            spines_per_rail=self.spines_per_rail,
            uplink_ports_per_spine=self.uplink_ports_per_spine,
            uplink_port_gbps=self.uplink_port_gbps,
            oversubscription=ratio,
            nvlink_busbw_gbps=self.nvlink_busbw_gbps,
        )

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Copy of this spec with a different node count."""
        return ClusterSpec(
            num_nodes=num_nodes,
            gpus_per_node=self.gpus_per_node,
            nics_per_node=self.nics_per_node,
            port_gbps=self.port_gbps,
            rails=self.rails,
            spines_per_rail=self.spines_per_rail,
            uplink_ports_per_spine=self.uplink_ports_per_spine,
            uplink_port_gbps=self.uplink_port_gbps,
            oversubscription=self.oversubscription,
            nvlink_busbw_gbps=self.nvlink_busbw_gbps,
        )


#: The paper's controlled testbed: 16 nodes / 128 GPUs, 8 dedicated leaf
#: switches (4 rail pairs), 1:1 oversubscription (Table II, §IV-A).
TESTBED_16_NODES = ClusterSpec(num_nodes=16)


def pod_spec(num_nodes: int, oversubscription: float = 1.0) -> ClusterSpec:
    """A pod-scale spec (up to 512 GPUs in a two-tier subnet, §IV-A).

    Leaf uplink port counts are derived so the fabric is 1:1 at the
    physical level (uplink ports == downlink ports per leaf); the
    ``oversubscription`` parameter then scales uplink capacity down for
    deliberately congested configurations.
    """
    if num_nodes * 8 > 512:
        raise ValueError("a single pod accommodates at most 512 GPUs")
    base = ClusterSpec(num_nodes=num_nodes)
    ports = max(1, -(-num_nodes * base.nics_per_rail // base.spines_per_rail))
    return ClusterSpec(
        num_nodes=num_nodes,
        uplink_ports_per_spine=ports,
        oversubscription=oversubscription,
    )
