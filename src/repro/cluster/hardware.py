"""Hardware inventory objects: GPUs, NIC ports, NICs, nodes.

These carry identity and *health* state.  The simulator's data plane
lives in :mod:`repro.netsim`; the objects here are what the fault
injector degrades and what C4D's steering service isolates and replaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PortSide(enum.Enum):
    """Which leaf of the rail pair a physical NIC port attaches to."""

    LEFT = "L"
    RIGHT = "R"

    @property
    def index(self) -> int:
        """0 for LEFT, 1 for RIGHT (used in link naming and hashing)."""
        return 0 if self is PortSide.LEFT else 1


class ComponentHealth(enum.Enum):
    """Coarse health state used by steering and scheduling."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"  # slow but functional (straggler)
    FAILED = "failed"  # crash-inducing
    ISOLATED = "isolated"  # removed from scheduling by the steering service


@dataclass
class Gpu:
    """One GPU.  ``compute_scale`` < 1.0 models a slow (defective) part."""

    node_id: int
    index: int
    health: ComponentHealth = ComponentHealth.HEALTHY
    compute_scale: float = 1.0

    @property
    def gpu_id(self) -> str:
        """Stable identifier, e.g. ``node3/gpu5``."""
        return f"node{self.node_id}/gpu{self.index}"


@dataclass
class NicPort:
    """One physical port of a dual-port NIC.

    ``bandwidth_scale`` < 1.0 models a degraded port (e.g. CRC storms or
    a flapping optic reducing effective throughput).
    """

    node_id: int
    nic_index: int
    side: PortSide
    health: ComponentHealth = ComponentHealth.HEALTHY
    bandwidth_scale: float = 1.0

    @property
    def port_id(self) -> str:
        """Stable identifier, e.g. ``node3/nic2/L``."""
        return f"node{self.node_id}/nic{self.nic_index}/{self.side.value}"


@dataclass
class Nic:
    """A dual-port RDMA NIC (the BlueField-3 stand-in)."""

    node_id: int
    index: int
    ports: dict[PortSide, NicPort] = field(default_factory=dict)
    health: ComponentHealth = ComponentHealth.HEALTHY

    def __post_init__(self) -> None:
        if not self.ports:
            self.ports = {
                side: NicPort(node_id=self.node_id, nic_index=self.index, side=side)
                for side in PortSide
            }

    @property
    def nic_id(self) -> str:
        """Stable identifier, e.g. ``node3/nic2``."""
        return f"node{self.node_id}/nic{self.index}"

    @property
    def ip_address(self) -> str:
        """Deterministic bonded-interface IP used in five-tuples."""
        return f"10.{self.index}.{self.node_id // 256}.{self.node_id % 256}"


@dataclass
class Node:
    """A compute node: GPUs + NICs + an aggregate health view."""

    node_id: int
    gpus: list[Gpu]
    nics: list[Nic]
    health: ComponentHealth = ComponentHealth.HEALTHY
    #: Multiplier on non-communication step time (data loading, host
    #: preprocessing).  >1.0 models a straggler node.
    host_slowdown: float = 1.0

    @classmethod
    def build(cls, node_id: int, gpus_per_node: int, nics_per_node: int) -> "Node":
        """Construct a healthy node with the given device counts."""
        gpus = [Gpu(node_id=node_id, index=i) for i in range(gpus_per_node)]
        nics = [Nic(node_id=node_id, index=i) for i in range(nics_per_node)]
        return cls(node_id=node_id, gpus=gpus, nics=nics)

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``node3``."""
        return f"node{self.node_id}"

    @property
    def is_schedulable(self) -> bool:
        """True if the node can host training workers."""
        return self.health in (ComponentHealth.HEALTHY, ComponentHealth.DEGRADED)

    def worst_gpu_scale(self) -> float:
        """Slowest GPU's compute scale (gates the node's compute speed in
        tightly synchronized kernels)."""
        return min(gpu.compute_scale for gpu in self.gpus)

    def isolate(self) -> None:
        """Remove the node from scheduling (C4D steering action)."""
        self.health = ComponentHealth.ISOLATED

    def restore(self) -> None:
        """Return the node to service after repair."""
        self.health = ComponentHealth.HEALTHY
        self.host_slowdown = 1.0
        for gpu in self.gpus:
            gpu.health = ComponentHealth.HEALTHY
            gpu.compute_scale = 1.0
        for nic in self.nics:
            nic.health = ComponentHealth.HEALTHY
            for port in nic.ports.values():
                port.health = ComponentHealth.HEALTHY
                port.bandwidth_scale = 1.0
