"""Cluster model: nodes, dual-port NICs, Clos fabric, faults.

Stands in for the paper's physical deployment: H800 nodes with eight
BlueField-3 dual-port NICs, a dual-ToR (leaf-pair) Clos/Fat-Tree fabric
with configurable oversubscription, plus the fault taxonomy of Tables I
and III and a stochastic fault injector used by the month-scale
experiments.
"""

from repro.cluster.faults import (
    PAPER_CRASH_MIX,
    FaultClass,
    FaultEvent,
    FaultInjector,
    FaultRates,
    FaultType,
)
from repro.cluster.hardware import ComponentHealth, Gpu, Nic, NicPort, Node, PortSide
from repro.cluster.specs import TESTBED_16_NODES, ClusterSpec, pod_spec
from repro.cluster.topology import ClusterTopology

__all__ = [
    "ClusterSpec",
    "TESTBED_16_NODES",
    "pod_spec",
    "Gpu",
    "Nic",
    "NicPort",
    "Node",
    "PortSide",
    "ComponentHealth",
    "ClusterTopology",
    "FaultType",
    "FaultClass",
    "FaultEvent",
    "FaultRates",
    "FaultInjector",
    "PAPER_CRASH_MIX",
]
