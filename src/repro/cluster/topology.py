"""Clos/Fat-Tree topology: naming, link installation, path computation.

The fabric layout follows §II-D and Table II of the paper:

* every dual-port NIC attaches to a *pair* of leaf switches (left port →
  left leaf, right port → right leaf) — the "dual-ToR" design that doubles
  availability and spine count;
* NIC ``j`` of every node lands on rail ``j % rails``; each rail's leaf
  pair connects to ``spines_per_rail`` spine switches through
  ``uplink_ports_per_spine`` parallel physical links;
* both leaves of a pair reach the *same* spines, so a packet descending
  from a spine may arrive at either physical port of the destination's
  bonded NIC — the exact mechanism behind the bonded-port imbalance C4P
  eliminates (Fig. 9).

Link ids are tuples::

    ("hup", node, nic, side)          host port -> leaf (uplink)
    ("hdn", node, nic, side)          leaf -> host port (downlink)
    ("lup", rail, side, spine, k)     leaf -> spine, k-th parallel port
    ("sdn", rail, spine, side, k)     spine -> leaf, k-th parallel port
    ("nvl", node)                     per-node NVLink stage (virtual)

where ``side`` is 0 (left) or 1 (right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cluster.hardware import Node, PortSide
from repro.cluster.specs import ClusterSpec
from repro.netsim.network import FlowNetwork
from repro.netsim.routing import EcmpHasher, FiveTuple


@dataclass(frozen=True)
class PathChoice:
    """One fully resolved route between two NICs on the same rail."""

    src_side: int
    spine: int
    up_port: int
    dst_side: int
    down_port: int


class ClusterTopology:
    """A built cluster: inventory + fabric naming + routing."""

    def __init__(
        self,
        spec: ClusterSpec,
        network: FlowNetwork,
        ecmp_seed: int = 0,
    ) -> None:
        self.spec = spec
        self.network = network
        self.ecmp = EcmpHasher(seed=ecmp_seed)
        self.nodes: list[Node] = [
            Node.build(node_id, spec.gpus_per_node, spec.nics_per_node)
            for node_id in range(spec.num_nodes)
        ]
        #: Spines administratively removed (used to create the 2:1
        #: oversubscription configuration of Fig. 10b), per rail.
        self.disabled_spines: dict[int, set[int]] = {r: set() for r in range(spec.rails)}
        self._install_links()

    # ------------------------------------------------------------------
    # Naming helpers
    # ------------------------------------------------------------------
    @staticmethod
    def host_up(node: int, nic: int, side: int) -> tuple:
        """Link id: host NIC port → leaf."""
        return ("hup", node, nic, side)

    @staticmethod
    def host_down(node: int, nic: int, side: int) -> tuple:
        """Link id: leaf → host NIC port."""
        return ("hdn", node, nic, side)

    @staticmethod
    def leaf_up(rail: int, side: int, spine: int, k: int) -> tuple:
        """Link id: leaf → spine parallel port ``k``."""
        return ("lup", rail, side, spine, k)

    @staticmethod
    def spine_down(rail: int, spine: int, side: int, k: int) -> tuple:
        """Link id: spine → leaf parallel port ``k``."""
        return ("sdn", rail, spine, side, k)

    @staticmethod
    def nvlink(node: int) -> tuple:
        """Link id: per-node NVLink stage."""
        return ("nvl", node)

    def rail_of(self, nic: int) -> int:
        """Rail (leaf-pair index) serving NIC index ``nic``."""
        return nic % self.spec.rails

    def node(self, node_id: int) -> Node:
        """Inventory record for a node."""
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Link installation
    # ------------------------------------------------------------------
    def _install_links(self) -> None:
        spec = self.spec
        for node in range(spec.num_nodes):
            self.network.add_link(
                self.nvlink(node), spec.nvlink_capacity, description=f"node{node} NVLink stage"
            )
            for nic in range(spec.nics_per_node):
                for side in (0, 1):
                    self.network.add_link(
                        self.host_up(node, nic, side),
                        spec.port_capacity,
                        description=f"node{node}/nic{nic} port{side} uplink",
                    )
                    self.network.add_link(
                        self.host_down(node, nic, side),
                        spec.port_capacity,
                        description=f"node{node}/nic{nic} port{side} downlink",
                    )
        for rail in range(spec.rails):
            for side in (0, 1):
                for spine in range(spec.spines_per_rail):
                    for k in range(spec.uplink_ports_per_spine):
                        self.network.add_link(
                            self.leaf_up(rail, side, spine, k),
                            spec.uplink_capacity,
                            description=f"rail{rail} leaf{side} -> spine{spine} port{k}",
                        )
                        self.network.add_link(
                            self.spine_down(rail, spine, side, k),
                            spec.uplink_capacity,
                            description=f"rail{rail} spine{spine} -> leaf{side} port{k}",
                        )

    # ------------------------------------------------------------------
    # Degradation hooks (used by the fault injector)
    # ------------------------------------------------------------------
    def set_port_scale(self, node: int, nic: int, side: int, scale: float) -> None:
        """Scale the capacity of one physical NIC port (both directions).

        ``scale`` is relative to the spec's nominal port capacity, so
        calls are idempotent rather than compounding.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        nominal = self.spec.port_capacity
        self.network.link(self.host_up(node, nic, side)).capacity = nominal * scale
        self.network.link(self.host_down(node, nic, side)).capacity = nominal * scale
        port_side = PortSide.LEFT if side == 0 else PortSide.RIGHT
        self.nodes[node].nics[nic].ports[port_side].bandwidth_scale = scale

    def disable_spine(self, rail: int, spine: int) -> None:
        """Administratively remove a spine from a rail (fails its links)."""
        self.disabled_spines[rail].add(spine)
        for side in (0, 1):
            for k in range(self.spec.uplink_ports_per_spine):
                self.network.link(self.leaf_up(rail, side, spine, k)).fail()
                self.network.link(self.spine_down(rail, spine, side, k)).fail()

    def enabled_spines(self, rail: int) -> list[int]:
        """Spines currently in service on a rail."""
        return [
            s for s in range(self.spec.spines_per_rail) if s not in self.disabled_spines[rail]
        ]

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------
    def resolve_path(
        self,
        src_node: int,
        src_nic: int,
        dst_node: int,
        dst_nic: int,
        choice: PathChoice,
        include_nvlink: bool = True,
    ) -> list[tuple]:
        """Materialize a route into an ordered list of link ids."""
        rail = self.rail_of(src_nic)
        if rail != self.rail_of(dst_nic):
            raise ValueError(
                f"cross-rail path requested: nic{src_nic} (rail {rail}) -> "
                f"nic{dst_nic} (rail {self.rail_of(dst_nic)})"
            )
        path: list[tuple] = []
        if include_nvlink:
            path.append(self.nvlink(src_node))
        path.extend(
            [
                self.host_up(src_node, src_nic, choice.src_side),
                self.leaf_up(rail, choice.src_side, choice.spine, choice.up_port),
                self.spine_down(rail, choice.spine, choice.dst_side, choice.down_port),
                self.host_down(dst_node, dst_nic, choice.dst_side),
            ]
        )
        if include_nvlink:
            path.append(self.nvlink(dst_node))
        return path

    def intra_node_path(self, node: int) -> list[tuple]:
        """Route for NVLink-only (same node) communication."""
        return [self.nvlink(node)]

    def candidate_choices(self, rail: int) -> Iterator[PathChoice]:
        """All routes between any two NICs of a rail, healthy spines only."""
        for src_side in (0, 1):
            for spine in self.enabled_spines(rail):
                for up_port in range(self.spec.uplink_ports_per_spine):
                    for dst_side in (0, 1):
                        for down_port in range(self.spec.uplink_ports_per_spine):
                            yield PathChoice(src_side, spine, up_port, dst_side, down_port)

    # ------------------------------------------------------------------
    # ECMP routing (the baseline the paper improves upon)
    # ------------------------------------------------------------------
    def ecmp_choice(
        self,
        src_node: int,
        src_nic: int,
        dst_node: int,
        dst_nic: int,
        five_tuple: FiveTuple,
        src_side: Optional[int] = None,
        avoid_failed: bool = True,
    ) -> PathChoice:
        """Route a flow the way the unmodified fabric would.

        The bond driver hashes the flow onto a transmit port (unless
        ``src_side`` pins it), the leaf hashes onto a (spine, port)
        uplink, and the spine hashes onto a (side, port) downlink.  With
        ``avoid_failed`` the hash walks to the next index when it lands
        on a dead link, modelling ECMP reconvergence (which is exactly
        the clumpy rerouting visible in the paper's Fig. 13a).
        """
        rail = self.rail_of(src_nic)
        spec = self.spec
        if src_side is None:
            src_side = self.ecmp.choose(five_tuple, 2, stage=f"bond:{src_node}:{src_nic}")

        # Hash over the *live* next-hop set, as real switches do: the
        # ECMP group shrinks when members fail, so surviving flows
        # rehash uniformly over what remains.
        up_members = [
            (spine, k)
            for spine in range(spec.spines_per_rail)
            for k in range(spec.uplink_ports_per_spine)
            if not avoid_failed
            or self.network.link(self.leaf_up(rail, src_side, spine, k)).is_up
        ]
        if not up_members:
            raise RuntimeError(f"no live uplink on rail {rail} side {src_side}")
        up_idx = self.ecmp.choose(five_tuple, len(up_members), stage=f"up:{rail}:{src_side}")
        spine, up_port = up_members[up_idx]

        down_members = [
            (side, k)
            for side in (0, 1)
            for k in range(spec.uplink_ports_per_spine)
            if not avoid_failed
            or self.network.link(self.spine_down(rail, spine, side, k)).is_up
        ]
        if not down_members:
            raise RuntimeError(f"no live downlink from spine {spine} on rail {rail}")
        down_idx = self.ecmp.choose(
            five_tuple, len(down_members), stage=f"down:{rail}:{spine}"
        )
        dst_side, down_port = down_members[down_idx]

        return PathChoice(src_side, spine, up_port, dst_side, down_port)

    def ecmp_path(
        self,
        src_node: int,
        src_nic: int,
        dst_node: int,
        dst_nic: int,
        five_tuple: FiveTuple,
        src_side: Optional[int] = None,
        include_nvlink: bool = True,
    ) -> list[tuple]:
        """ECMP-resolved path as an ordered list of link ids."""
        choice = self.ecmp_choice(src_node, src_nic, dst_node, dst_nic, five_tuple, src_side)
        return self.resolve_path(src_node, src_nic, dst_node, dst_nic, choice, include_nvlink)

    # ------------------------------------------------------------------
    # Introspection used by C4P and reports
    # ------------------------------------------------------------------
    def leaf_uplinks(self, rail: int, side: int) -> list[tuple]:
        """All leaf→spine link ids of one leaf switch."""
        return [
            self.leaf_up(rail, side, spine, k)
            for spine in range(self.spec.spines_per_rail)
            for k in range(self.spec.uplink_ports_per_spine)
        ]

    def schedulable_nodes(self) -> list[Node]:
        """Nodes available to host workers."""
        return [node for node in self.nodes if node.is_schedulable]
