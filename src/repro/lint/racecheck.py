"""Schedule-perturbation race detector: the lint pack's dynamic companion.

The static rules (``repro.lint.rules``) catch *sources* of
nondeterminism — wall clocks, unseeded RNGs, unordered iteration.  This
module catches *consumers* of accidental determinism: code that is only
correct because two timers scheduled for the same simulated instant
happen to fire in FIFO order.  The netsim promises ``(time, seq)``
ordering, and everything downstream (detection verdicts, reroute
decisions, scorecards) must not depend on the ``seq`` half of that pair,
because ``seq`` encodes scheduling history, not simulated causality.

Method: replay a scenario N times with a shimmed
:class:`PerturbedEventQueue` whose same-timestamp tie-breaking is
randomized (but seeded, so every replay is itself reproducible), then
diff a canonical digest of each run's fault timeline — every traced
lifecycle stage (inject/detect/steer/recover with timestamps) plus the
final scorecard.  The baseline run uses the stock FIFO queue.  Any
divergence between a perturbed replay and the baseline is a real
ordering race: the same fault schedule produced a different verdict
because of tie-break order alone.  The report pinpoints the first
diverging event pair so the race can be chased to its scheduling site.
"""

from __future__ import annotations

import hashlib
import json
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.netsim.engine import EventQueue

#: A timeline is an ordered list of JSON-able event dicts; runs are
#: compared element-wise and by digest.
Timeline = list


class PerturbedEventQueue(EventQueue):
    """An :class:`EventQueue` with randomized (seeded) same-time tie-breaking.

    The stock queue assigns monotonically increasing ``seq`` numbers, so
    timers scheduled for the same instant fire in scheduling order.
    This shim draws ``seq`` from a seeded RNG instead: relative order of
    *different* timestamps is untouched, but every same-timestamp tie is
    broken in a schedule-independent, perturbed order.  Runs remain
    fully reproducible for a given ``rng`` seed.
    """

    def __init__(self, rng: random.Random) -> None:
        super().__init__()
        # EventQueue.schedule draws from next(self._seq); feeding it a
        # seeded random stream perturbs exactly the tie-break half of the
        # (time, seq) ordering and nothing else.  (-1 is an unreachable
        # sentinel: getrandbits is non-negative.)
        self._seq = iter(lambda: rng.getrandbits(62), -1)


@contextmanager
def perturbed_scheduling(seed: int) -> Iterator[random.Random]:
    """Patch the netsim so FlowNetworks built inside use perturbed ties.

    Every :class:`~repro.netsim.network.FlowNetwork` constructed within
    the context gets a :class:`PerturbedEventQueue` sharing one RNG
    seeded with ``seed``.
    """
    import repro.netsim.network as network_module

    rng = random.Random(seed)
    original = network_module.EventQueue

    def build_queue() -> PerturbedEventQueue:
        return PerturbedEventQueue(rng)

    network_module.EventQueue = build_queue  # type: ignore[assignment]
    try:
        yield rng
    finally:
        network_module.EventQueue = original  # type: ignore[assignment]


def timeline_digest(timeline: Timeline) -> str:
    """Canonical content hash of a run's timeline."""
    payload = json.dumps(timeline, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Divergence:
    """First point where a perturbed replay departed from the baseline."""

    replay: int
    replay_seed: int
    index: int
    baseline_event: Optional[dict]
    perturbed_event: Optional[dict]

    def to_dict(self) -> dict:
        return {
            "replay": self.replay,
            "replay_seed": self.replay_seed,
            "index": self.index,
            "baseline_event": self.baseline_event,
            "perturbed_event": self.perturbed_event,
        }

    def format(self) -> str:
        return (
            f"replay {self.replay} (seed {self.replay_seed}) diverges at "
            f"timeline[{self.index}]:\n"
            f"  baseline : {json.dumps(self.baseline_event, sort_keys=True)}\n"
            f"  perturbed: {json.dumps(self.perturbed_event, sort_keys=True)}"
        )


@dataclass
class RacecheckReport:
    """Outcome of one racecheck campaign (baseline + N perturbed replays)."""

    target: str
    replays: int
    baseline_digest: str
    replay_digests: list[str] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        """True when any replay's timeline departed from the baseline."""
        return bool(self.divergences)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "replays": self.replays,
            "diverged": self.diverged,
            "baseline_digest": self.baseline_digest,
            "replay_digests": list(self.replay_digests),
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def render(self) -> str:
        lines = [
            f"racecheck {self.target}: {self.replays} perturbed replays, "
            f"baseline {self.baseline_digest[:12]}"
        ]
        if not self.diverged:
            lines.append("no divergence: event ordering is tie-break independent")
        else:
            lines.append(f"{len(self.divergences)} DIVERGENT replay(s) — ordering race!")
            for divergence in self.divergences:
                lines.append(divergence.format())
        return "\n".join(lines)


def _first_divergence(
    baseline: Timeline, perturbed: Timeline, replay: int, seed: int
) -> Divergence:
    for index, (expected, got) in enumerate(zip(baseline, perturbed, strict=False)):
        if expected != got:
            return Divergence(replay, seed, index, expected, got)
    index = min(len(baseline), len(perturbed))
    return Divergence(
        replay,
        seed,
        index,
        baseline[index] if index < len(baseline) else None,
        perturbed[index] if index < len(perturbed) else None,
    )


def racecheck(
    runner: Callable[[], Timeline],
    replays: int = 5,
    seed: int = 0,
    target: str = "runner",
) -> RacecheckReport:
    """Run ``runner`` once unpatched and ``replays`` times perturbed; diff.

    ``runner`` must build its simulation *inside* the call (constructing
    FlowNetworks lazily) and return the run's canonical timeline.  All
    other sources of randomness must already be seeded — the static
    rules enforce exactly that — so the only degree of freedom between
    runs is same-timestamp tie-breaking.
    """
    baseline = runner()
    report = RacecheckReport(
        target=target, replays=replays, baseline_digest=timeline_digest(baseline)
    )
    for replay in range(replays):
        replay_seed = seed * 7919 + replay + 1
        with perturbed_scheduling(replay_seed):
            perturbed = runner()
        digest = timeline_digest(perturbed)
        report.replay_digests.append(digest)
        if digest != report.baseline_digest:
            report.divergences.append(
                _first_divergence(baseline, perturbed, replay, replay_seed)
            )
    return report


# ----------------------------------------------------------------------
# Chaos-scenario frontend
# ----------------------------------------------------------------------
def scenario_timeline(scenario) -> Timeline:
    """Run one chaos scenario and return its canonical fault timeline.

    The timeline is every traced lifecycle stage — ``(time, fault_id,
    stage)`` plus per-stage annotations — in ``(time, fault, stage)``
    order, followed by the scenario's full scorecard.  Everything a
    delay-matrix or wait-chain verdict could influence lands in here, so
    tie-break-dependent behaviour anywhere in detect → steer → reroute →
    score shows up as a digest change.
    """
    from repro.analysis.export import scenario_scorecard_to_dict
    from repro.chaos.campaign import ChaosCampaign
    from repro.obs.report import ObservabilityPlane

    campaign = ChaosCampaign(scenarios=[scenario], observability=ObservabilityPlane())
    card = campaign.run_scenario(scenario)
    events: Timeline = []
    for fault_id in sorted(campaign.obs.tracer.spans):
        span = campaign.obs.tracer.spans[fault_id]
        for stage, at in span.timeline():
            events.append({"t": at, "fault": fault_id, "stage": stage})
    events.sort(key=lambda e: (e["t"], e["fault"], e["stage"]))
    for fp in campaign.obs.tracer.false_positives:
        events.append(
            {
                "t": fp.time,
                "fault": None,
                "stage": "false_positive",
                "victims": [str(v) for v in fp.victims],
            }
        )
    events.append({"scorecard": scenario_scorecard_to_dict(card)})
    return events


def _scenario_factories() -> dict[str, Callable[[int], object]]:
    from repro.chaos import scenario as scenarios

    return {
        "flapping": scenarios.flapping_scenario,
        "cascade": scenarios.cascade_scenario,
        "crash": scenarios.crash_under_loss_scenario,
        "ckpt-corruption": scenarios.checkpoint_corruption_scenario,
        "link-down": scenarios.link_down_scenario,
        "flapping-link": scenarios.flapping_link_scenario,
        "spine-maintenance": scenarios.spine_maintenance_scenario,
        "dual-plane": scenarios.dual_plane_scenario,
        "master-kill": scenarios.master_kill_scenario,
        "failover": scenarios.failover_scenario,
        "collector-partition": scenarios.collector_partition_scenario,
        "agent-massacre": scenarios.agent_massacre_scenario,
    }


def scenario_names() -> list[str]:
    """Scenario factory names accepted by :func:`racecheck_scenario`."""
    return sorted(_scenario_factories())


def racecheck_scenario(
    name: str, replays: int = 5, seed: int = 0
) -> RacecheckReport:
    """Racecheck one named chaos scenario (see :func:`scenario_names`)."""
    factories = _scenario_factories()
    if name not in factories:
        raise KeyError(
            f"unknown scenario {name!r}; expected one of {', '.join(sorted(factories))}"
        )

    def runner() -> Timeline:
        # Rebuilt per replay: scenario objects can carry stateful seeded
        # RNGs (e.g. SteeringFaultModel) whose stream must restart from
        # the seed every run, or replays would diverge for non-ordering
        # reasons and drown the signal.
        return scenario_timeline(factories[name](seed))

    return racecheck(runner, replays=replays, seed=seed, target=f"{name}[s{seed}]")
