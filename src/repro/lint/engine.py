"""The ``repro.lint`` rule engine: AST-based determinism & event-safety checks.

The C4D diagnostic method rests on the simulator's reproducibility
promise — timers fire in ``(time, seq)`` order, every stochastic choice
derives from a scenario seed, and the same fault therefore produces the
same event ordering every run.  Nothing about that promise is visible to
a conventional linter, so this module provides a small, zero-dependency
static-analysis engine with a registry of *simulation-safety* rules
(``repro.lint.rules``) that runs over the source tree and reports every
construct that could silently break determinism: wall-clock reads,
unseeded RNGs, set-iteration in event paths, re-entrant event-loop
calls, hot-loop metric registration.

Design:

* one :func:`parse <lint_source>` per file, one tree walk per file — all
  registered rules are dispatched from a single :class:`ast.NodeVisitor`
  pass that maintains the ancestor stack rules need for nesting checks;
* rules are small classes registered with :func:`register`; each
  declares the node types it is interested in and whether it applies
  only to *sim-path* packages (the packages whose code runs under the
  simulated clock: ``netsim``, ``core``, ``chaos``, ``collective``,
  ``telemetry``, ``controlplane``);
* intentional exceptions are suppressed inline with
  ``# repro: noqa[RULE]`` (or ``# repro: noqa[RULE1,RULE2]``, or a bare
  ``# repro: noqa`` suppressing every rule on that line); suppressed
  diagnostics stay in the report, marked, so ``repro lint --json`` can
  audit them;
* output is either human ``path:line:col: RULE message`` lines or a
  JSON document with per-rule counts (the CI contract: zero
  *unsuppressed* diagnostics).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Type

#: Packages whose code runs under the simulated clock; SIM rules apply
#: only to files whose path contains one of these as a component under
#: ``repro``.
SIM_PATH_PACKAGES = frozenset(
    {"netsim", "core", "chaos", "collective", "telemetry", "controlplane"}
)

#: Inline suppression directive: ``# repro: noqa`` or
#: ``# repro: noqa[SIM001]`` or ``# repro: noqa[SIM001,OBS001]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: True when an inline ``# repro: noqa`` directive covers this line.
    suppressed: bool = False

    def format(self) -> str:
        """Human one-liner, editor-clickable."""
        marker = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{marker}"

    def to_dict(self) -> dict:
        """JSON-safe dump."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass
class FileContext:
    """Everything a rule may inspect about the file being linted."""

    path: str
    source: str
    tree: ast.AST
    #: True when the file belongs to a simulated-clock package.
    sim_path: bool


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`/:attr:`summary`, declare the AST node
    types they want via :attr:`interests`, and implement :meth:`visit`,
    yielding ``(node, message)`` pairs for each violation.  ``ancestors``
    is the enclosing-node stack, outermost first (the module node is
    ``ancestors[0]``), so nesting-sensitive rules need no bookkeeping of
    their own.
    """

    rule_id: str = ""
    summary: str = ""
    #: Node classes dispatched to this rule.
    interests: tuple[type, ...] = ()
    #: True restricts the rule to SIM_PATH_PACKAGES files.
    sim_path_only: bool = False

    def visit(
        self, node: ast.AST, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError

    def applies(self, ctx: FileContext) -> bool:
        """True when this rule should run on ``ctx``'s file."""
        return ctx.sim_path or not self.sim_path_only


#: rule_id -> rule class, in registration order.
_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Type[Rule]]:
    """The registered rule classes, keyed by id (importing rules lazily)."""
    # The rule pack registers itself on import; importing here (not at
    # module top) keeps engine <-> rules acyclic.
    from repro.lint import rules  # noqa: F401  (import installs the pack)

    return dict(_REGISTRY)


class _Dispatcher(ast.NodeVisitor):
    """Single-pass walker dispatching nodes to interested rules."""

    def __init__(self, rules: Sequence[Rule], ctx: FileContext) -> None:
        self._rules = rules
        self._ctx = ctx
        self._stack: list[ast.AST] = []
        self.found: list[tuple[Rule, ast.AST, str]] = []

    def generic_visit(self, node: ast.AST) -> None:
        for rule in self._rules:
            if isinstance(node, rule.interests):
                for where, message in rule.visit(node, self._stack, self._ctx):
                    self.found.append((rule, where, message))
        self._stack.append(node)
        super().generic_visit(node)
        self._stack.pop()


def suppressions_for(source: str) -> dict[int, Optional[frozenset[str]]]:
    """Map line number -> suppressed rule ids (None = all rules).

    Only physical lines carrying a ``# repro: noqa`` comment appear in
    the map.
    """
    out: dict[int, Optional[frozenset[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        if match.group(1) is None:
            out[lineno] = None
        else:
            ids = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
            out[lineno] = ids
    return out


def is_sim_path(path: str | Path) -> bool:
    """True when ``path`` belongs to a simulated-clock package."""
    parts = Path(path).parts
    return any(part in SIM_PATH_PACKAGES for part in parts)


def _node_location(node: ast.AST) -> tuple[int, int]:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    return line, col


def lint_source(
    source: str,
    path: str = "<string>",
    sim_path: Optional[bool] = None,
    rule_ids: Optional[Iterable[str]] = None,
) -> list[Diagnostic]:
    """Lint one source string; returns all diagnostics (incl. suppressed).

    ``sim_path`` overrides path-based package inference (used by tests
    whose fixture files live outside the package tree).  ``rule_ids``
    restricts the run to a subset of the registry.
    """
    tree = ast.parse(source, filename=path)
    if sim_path is None:
        sim_path = is_sim_path(path)
    ctx = FileContext(path=path, source=source, tree=tree, sim_path=sim_path)
    registry = all_rules()
    if rule_ids is not None:
        unknown = set(rule_ids) - set(registry)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        registry = {rid: registry[rid] for rid in rule_ids}
    active = [cls() for cls in registry.values()]
    active = [rule for rule in active if rule.applies(ctx)]
    dispatcher = _Dispatcher(active, ctx)
    dispatcher.visit(tree)

    suppressed_lines = suppressions_for(source)
    diagnostics: list[Diagnostic] = []
    for rule, node, message in dispatcher.found:
        line, col = _node_location(node)
        covered = suppressed_lines.get(line, ...)
        suppressed = covered is None or (covered is not ... and rule.rule_id in covered)
        diagnostics.append(
            Diagnostic(
                rule=rule.rule_id,
                path=path,
                line=line,
                col=col,
                message=message,
                suppressed=suppressed,
            )
        )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diagnostics


@dataclass
class LintReport:
    """Aggregate result of linting a file set."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Diagnostic]:
        """The violations that fail the build."""
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def suppressed(self) -> list[Diagnostic]:
        """Violations waived by an inline ``# repro: noqa`` directive."""
        return [d for d in self.diagnostics if d.suppressed]

    @property
    def ok(self) -> bool:
        """True when no unsuppressed diagnostics remain."""
        return not self.unsuppressed

    def counts_by_rule(self) -> dict[str, int]:
        """Unsuppressed violation count per rule id."""
        counts: dict[str, int] = {}
        for diag in self.unsuppressed:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """JSON document (the ``repro lint --json`` payload)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "unsuppressed": len(self.unsuppressed),
            "suppressed": len(self.suppressed),
            "counts_by_rule": self.counts_by_rule(),
            "rules": {
                rule_id: cls.summary for rule_id, cls in sorted(all_rules().items())
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human report: one line per diagnostic plus a summary."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"repro lint: {self.files_checked} files, "
            f"{len(self.unsuppressed)} violation(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[str | Path], rule_ids: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint every ``.py`` file under ``paths``."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        report.diagnostics.extend(
            lint_source(source, path=str(file_path), rule_ids=rule_ids)
        )
        report.files_checked += 1
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return report
