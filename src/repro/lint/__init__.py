"""Determinism & event-safety static analysis for the simulator.

``repro.lint`` keeps the netsim's reproducibility promise honest: an
AST rule engine (:mod:`repro.lint.engine` + :mod:`repro.lint.rules`)
flags constructs that break determinism statically, and the
schedule-perturbation race detector (:mod:`repro.lint.racecheck`)
catches order-dependence dynamically.  Run both via ``repro lint``.
"""

from repro.lint.engine import (
    Diagnostic,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.racecheck import (
    PerturbedEventQueue,
    RacecheckReport,
    perturbed_scheduling,
    racecheck,
    racecheck_scenario,
    scenario_names,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "PerturbedEventQueue",
    "RacecheckReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "perturbed_scheduling",
    "racecheck",
    "racecheck_scenario",
    "register",
    "scenario_names",
]
