"""The simulation-safety rule pack.

Every rule here encodes one clause of the simulator's determinism
contract (see ``docs/architecture.md``, "Determinism contract"):

========  ==============================================================
SIM001    no wall-clock reads (``time.time``/``perf_counter``/
          ``datetime.now`` ...) in sim-path packages — simulated code
          derives time from the event loop (``network.now``)
SIM002    no unseeded or process-global RNG (``random.random``,
          ``random.Random()`` without a seed, ``numpy.random.*``
          module-level functions, ``default_rng()`` without a seed)
SIM003    no exact ``==``/``!=`` comparison of simulated-time floats —
          repeated float arithmetic on the event clock makes exact
          equality schedule-dependent
SIM004    no iteration over set-typed expressions in sim-path code
          without ``sorted()`` — set order depends on hash values,
          which are perturbed per process for strings
SIM005    event callbacks must not re-enter the event loop
          (``.run()``/``.run_until()``/``.pop_due()`` inside a nested
          callback ``def``) — schedule follow-up timers instead
SIM006    control-plane master state (``self.master.*``,
          ``self.collector.*`` ... in ``repro.controlplane`` files) may
          only be written inside the journaled mutation path
          (``__init__``/``_build*``/``recover*``/``_replay*``/
          ``restore*``) — ad-hoc writes desynchronise replay
OBS001    metrics must be registered (``registry.counter/gauge/
          histogram``) at module/``__init__`` scope, not inside loops
========  ==============================================================

Rules are registered on import; the engine pulls them in through
:func:`repro.lint.engine.all_rules`.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator, Optional, Sequence

from repro.lint.engine import FileContext, Rule, register


def dotted_name(node: ast.AST) -> Optional[str]:
    """Reconstruct ``a.b.c`` from Attribute/Name chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _enclosing_functions(ancestors: Sequence[ast.AST]) -> int:
    """How many function scopes (def/async def/lambda) enclose the node."""
    return sum(
        isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        for a in ancestors
    )


# ----------------------------------------------------------------------
# SIM001 — wall clock
# ----------------------------------------------------------------------
#: Fully dotted callables that read host clocks.  ``perf_counter`` and
#: ``monotonic`` are not wall time, but they are just as nondeterministic
#: from the simulation's point of view, so they need an explicit waiver.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Names that, imported from ``time``/``datetime``, smuggle the wall
#: clock in under a bare name the call-site check cannot see.
_WALL_CLOCK_IMPORTS = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
    ),
    "datetime": frozenset({"datetime", "date"}),
}


@register
class WallClockRule(Rule):
    rule_id = "SIM001"
    summary = "no wall-clock reads in simulation-path packages"
    interests = (ast.Call, ast.ImportFrom)
    sim_path_only = True

    def visit(
        self, node: ast.AST, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        if isinstance(node, ast.ImportFrom):
            banned = _WALL_CLOCK_IMPORTS.get(node.module or "")
            if banned:
                for alias in node.names:
                    if alias.name in banned:
                        yield (
                            node,
                            f"importing {alias.name!r} from {node.module!r} brings the "
                            "wall clock into a simulation path; use the event loop's "
                            "simulated time (network.now) instead",
                        )
            return
        name = dotted_name(node.func)  # type: ignore[union-attr]
        if name in _WALL_CLOCK:
            yield (
                node,
                f"wall-clock call {name}() in a simulation path; simulated code must "
                "derive time from the event loop (network.now)",
            )


# ----------------------------------------------------------------------
# SIM002 — unseeded / global RNG
# ----------------------------------------------------------------------
#: Module-level functions of the stdlib global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "random_sample",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
        "getrandbits",
    }
)


def _has_seed_argument(call: ast.Call) -> bool:
    """True when the constructor/call receives any positional or seed kwarg."""
    if call.args:
        return True
    return any(kw.arg in ("seed", "x") for kw in call.keywords)


@register
class UnseededRngRule(Rule):
    rule_id = "SIM002"
    summary = "no unseeded or process-global RNG in simulation-path packages"
    interests = (ast.Call,)
    sim_path_only = True

    def visit(
        self, node: ast.Call, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        name = dotted_name(node.func)
        if name is None:
            return
        root, _, rest = name.partition(".")
        # stdlib: random.random(), random.randint(...), ...
        if root == "random" and rest in _GLOBAL_RANDOM_FNS:
            yield (
                node,
                f"{name}() uses the process-global RNG; construct a seeded "
                "random.Random(seed) / numpy Generator instead",
            )
            return
        # stdlib: random.Random() / Random() without a seed.
        if name in ("random.Random", "Random") and not _has_seed_argument(node):
            yield (node, f"{name}() constructed without a seed; pass an explicit seed")
            return
        # numpy: np.random.<fn>() module-level calls drive the global
        # BitGenerator; default_rng()/Generator(...) need a seed argument.
        if root in ("np", "numpy") and rest.startswith("random."):
            fn = rest.split(".", 1)[1]
            if fn in ("default_rng", "Generator", "SeedSequence", "PCG64", "Philox"):
                if fn == "default_rng" and not _has_seed_argument(node):
                    yield (
                        node,
                        f"{name}() without a seed draws entropy from the OS; pass an "
                        "explicit seed",
                    )
                return
            yield (
                node,
                f"{name}() uses numpy's process-global RNG; use a seeded "
                "numpy.random.default_rng(seed) Generator instead",
            )


# ----------------------------------------------------------------------
# SIM003 — exact equality on simulated-time floats
# ----------------------------------------------------------------------
#: Attribute / name spellings that denote simulated-time values.
_TIME_SHAPED_ATTRS = frozenset(
    {"now", "time", "start_time", "end_time", "ready_at", "onset", "injected_at"}
)


def _is_time_shaped(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in _TIME_SHAPED_ATTRS:
        return True
    if isinstance(node, ast.Name) and node.id == "now":
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and (name == "now" or name.endswith(".now"))
    return False


@register
class ExactTimeComparisonRule(Rule):
    rule_id = "SIM003"
    summary = "no exact ==/!= comparison of simulated-time floats"
    interests = (ast.Compare,)
    sim_path_only = True

    def visit(
        self, node: ast.Compare, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # `x.end_time == None` style is SIM-irrelevant (identity
            # checks belong to ruff E711); skip None comparisons.
            if any(
                isinstance(side, ast.Constant) and side.value is None
                for side in (left, right)
            ):
                continue
            if _is_time_shaped(left) or _is_time_shaped(right):
                yield (
                    node,
                    "exact ==/!= on a simulated-time float is schedule-dependent; "
                    "use math.isclose(...) or an ordered bound instead",
                )
                return


# ----------------------------------------------------------------------
# SIM004 — unordered set iteration
# ----------------------------------------------------------------------
_SET_RETURNING_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference", "keys"}
)


def _is_set_typed(node: ast.AST) -> bool:
    """Syntactic approximation of 'this expression is a set'."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_RETURNING_METHODS
        ):
            # `.keys()` on a dict is insertion-ordered and deterministic,
            # so only the set algebra methods count.
            return node.func.attr != "keys"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_typed(node.left) or _is_set_typed(node.right)
    return False


@register
class UnorderedSetIterationRule(Rule):
    rule_id = "SIM004"
    summary = "no iteration over set-typed expressions without sorted() in sim paths"
    interests = (ast.For, ast.AsyncFor, ast.comprehension)
    sim_path_only = True

    def visit(
        self, node: ast.AST, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        iterable = node.iter  # type: ignore[union-attr]
        if _is_set_typed(iterable):
            # comprehension nodes carry no lineno; report at the iterable.
            yield (
                iterable,
                "iterating a set-typed expression: order depends on hash seeds and "
                "insertion history; wrap it in sorted(...) to fix the event order",
            )


# ----------------------------------------------------------------------
# SIM005 — re-entrant event-loop calls from callbacks
# ----------------------------------------------------------------------
_LOOP_DRIVERS = frozenset({"run", "run_until", "pop_due"})


@register
class ReentrantRunRule(Rule):
    rule_id = "SIM005"
    summary = "event callbacks must not re-enter the event loop (.run/.pop_due)"
    interests = (ast.Call,)
    sim_path_only = True

    def visit(
        self, node: ast.Call, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _LOOP_DRIVERS):
            return
        # The event-callback idiom in this codebase is a closure: a `def`
        # nested inside the function that schedules it.  Top-level
        # functions and methods drive the loop legitimately.
        if _enclosing_functions(ancestors) >= 2:
            yield (
                node,
                f".{func.attr}() called from inside a nested callback re-enters the "
                "event loop re-entrantly; schedule follow-up work with "
                "schedule()/schedule_at() instead",
            )


# ----------------------------------------------------------------------
# SIM006 — journaled mutation path for control-plane master state
# ----------------------------------------------------------------------
#: Handles of the journal-managed detection stack: every durable mutation
#: of these objects must go through a journaled ingestion/evaluate method
#: so crash-replay reproduces it.  Writing through them anywhere else
#: silently diverges the recovered state from the journal.
_JOURNALED_HANDLES = frozenset({"collector", "master", "steering", "leases", "store"})

#: Method-name shapes allowed to write managed state directly: object
#: construction and the replay/restore path itself (which rebuilds state
#: *from* the journal rather than around it).
_JOURNALED_WRITER_PREFIXES = ("_build", "_apply", "_replay", "_restore", "restore", "recover")


def _innermost_function(ancestors: Sequence[ast.AST]) -> Optional[str]:
    """Name of the nearest enclosing def/async def, else None."""
    for ancestor in reversed(ancestors):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name
    return None


def _managed_write_target(target: ast.AST) -> Optional[str]:
    """The dotted path when ``target`` writes through a managed handle.

    Matches ``self.<handle>.<attr>`` and deeper, seeing through
    subscripts (``self.master.pending[k] = ...``,
    ``self.collector.progress[c].min_seq += 1``); plain
    ``self.<handle> = ...`` rebinding is construction, not state
    mutation, and does not match.
    """
    parts: list[str] = []
    node = target
    while True:
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        else:
            break
    if not (isinstance(node, ast.Name) and node.id == "self"):
        return None
    parts.reverse()
    if len(parts) >= 2 and parts[0] in _JOURNALED_HANDLES:
        return ".".join(["self", *parts])
    return None


@register
class JournaledMutationRule(Rule):
    rule_id = "SIM006"
    summary = "control-plane master state must be written via the journaled mutation path"
    interests = (ast.Assign, ast.AugAssign, ast.AnnAssign)
    sim_path_only = True

    def visit(
        self, node: ast.AST, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        # Only the control-plane package hosts journal-managed classes.
        if "controlplane" not in PurePath(ctx.path).parts:
            return
        writer = _innermost_function(ancestors)
        if writer is not None and (
            writer == "__init__" or writer.startswith(_JOURNALED_WRITER_PREFIXES)
        ):
            return
        if isinstance(node, ast.Assign):
            targets: list[ast.AST] = []
            for t in node.targets:
                targets.extend(t.elts if isinstance(t, ast.Tuple) else [t])
        elif isinstance(node, ast.AnnAssign) and node.value is None:
            return  # bare annotation: a declaration, not a write
        else:
            targets = [node.target]
        for target in targets:
            name = _managed_write_target(target)
            if name is not None:
                yield (
                    node,
                    f"direct write to managed state {name!r} outside the journaled "
                    "mutation path; route it through a journaled ingestion/evaluate "
                    "method (or a _replay*/_build*/recover* writer) so crash-replay "
                    "reproduces it",
                )


# ----------------------------------------------------------------------
# OBS001 — metric registration in hot loops
# ----------------------------------------------------------------------
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_REGISTRY_NAMES = ("registry", "metrics")


def _is_registry_receiver(func: ast.Attribute) -> bool:
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    leaf = receiver.rsplit(".", 1)[-1].lstrip("_")
    return any(leaf == name or leaf.endswith("_" + name) for name in _REGISTRY_NAMES)


@register
class MetricRegistrationInLoopRule(Rule):
    rule_id = "OBS001"
    summary = "register metrics at module/__init__ scope, not inside loops"
    interests = (ast.Call,)
    sim_path_only = False

    def visit(
        self, node: ast.Call, ancestors: Sequence[ast.AST], ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str]]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_FACTORIES):
            return
        if not _is_registry_receiver(func):
            return
        if any(isinstance(a, (ast.For, ast.AsyncFor, ast.While)) for a in ancestors):
            yield (
                node,
                f"registry.{func.attr}(...) inside a loop registers (or re-looks-up) "
                "a metric per iteration; hoist the handle to module or __init__ scope",
            )
