"""FABRIC chaos scenarios: the C4P control plane under adversarial link faults.

Nothing in the execution path is mocked: a real
:class:`~repro.core.c4p.master.C4PMaster` (with its registry, prober and
link health state machine) allocates QPs for a synthetic multi-tenant
load on the 16-node testbed fabric, one long-running simulated flow per
QP.  The scenario's :class:`~repro.chaos.scenario.FabricPlan` then kills
and restores links on schedule — announced (out-of-band notification,
the Fig. 12 fast path) or silent (the master must catch it through its
periodic incremental re-probe) — while the runner measures what the
ground truth alone can judge:

* **residual QPs** — flows still crossing a physically dead link when a
  down event's migration deadline expires;
* **reroute latency** — down event to the last victim QP's migration;
* **hold-down violations** — placements onto a flapping link while the
  flap-damping guard window is open;
* **plane violations** — migrations that crossed physical planes;
* **spine imbalance** and **throughput recovery** — the Fig. 12b
  post-fault balance and bandwidth numbers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.chaos.scenario import ChaosScenario, ScenarioKind
from repro.chaos.scorecard import FabricMetrics, ScenarioScorecard, score_fabric_scenario
from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest
from repro.core.c4p.master import C4PMaster
from repro.netsim.flows import Flow
from repro.netsim.network import FlowNetwork
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import LATENCY_BUCKETS, FaultTracer

#: Effectively infinite transfer: fabric flows run for the whole scenario.
_FLOW_SIZE = 1e18


def run_fabric_scenario(
    scenario: ChaosScenario,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[FaultTracer] = None,
) -> ScenarioScorecard:
    """Execute one FABRIC scenario end to end and score it.

    ``metrics``/``tracer`` attach the observability plane: the registry
    receives the instrumented components' series plus the runner's
    ``fabric_reroute_latency_seconds`` histogram, and each scheduled
    ``down`` event gets a fault span traced inject → detect (the
    out-of-band notification, or the maintenance pass that caught a
    silent failure) → steer (first victim migration) → recover (last
    victim migration).
    """
    if scenario.kind is not ScenarioKind.FABRIC or scenario.fabric is None:
        raise ValueError(f"{scenario.name} is not a fabric scenario")
    plan = scenario.fabric

    registry = get_registry(metrics)
    if tracer is None:
        tracer = FaultTracer(metrics=registry)
    m_reroute = registry.histogram(
        "fabric_reroute_latency_seconds",
        "Down event to last victim QP migrated",
        buckets=LATENCY_BUCKETS,
    )
    network = FlowNetwork(metrics=registry)
    spec = TESTBED_16_NODES
    topology = ClusterTopology(spec, network, ecmp_seed=scenario.seed)
    master = C4PMaster(topology, health_config=plan.health, metrics=registry)
    rng = np.random.default_rng(scenario.seed)

    # ------------------------------------------------------------------
    # Tenant load: one persistent flow per allocated QP.
    # ------------------------------------------------------------------
    flows: dict[int, Flow] = {}
    home_side: dict[int, int] = {}
    for index in range(plan.connections):
        src = int(rng.integers(spec.num_nodes))
        dst = int(rng.integers(spec.num_nodes - 1))
        if dst >= src:
            dst += 1
        request = PathRequest(
            comm_id=f"fabric-{index}",
            job_id=f"chaos-{index % 4}",
            src_node=src,
            src_nic=plan.nic,
            dst_node=dst,
            dst_nic=plan.nic,
            num_qps=plan.qps_per_connection,
        )
        for alloc in master.allocate(request):
            flow = Flow(
                flow_id=f"qp{alloc.qp_num}",
                path=list(alloc.path),
                size=_FLOW_SIZE,
                metadata={"request": request, "qp": alloc},
            )
            network.add_flow(flow)
            flows[alloc.qp_num] = flow
            home_side[alloc.qp_num] = alloc.choice.src_side

    # ------------------------------------------------------------------
    # Observers: migrations, hold-down guard, throughput samples.
    # ------------------------------------------------------------------
    migration_log: list[tuple[float, int]] = []
    violations = {"holddown": 0, "plane": 0}
    flap_guards = {link: (start, end) for link, start, end in plan.flap_guards}

    def guarded_links(now: float) -> list[tuple]:
        return [
            link
            for link, (start, end) in flap_guards.items()
            if start <= now <= end
        ]

    def on_migrate(request: PathRequest, alloc) -> None:
        now = network.now
        migration_log.append((now, alloc.qp_num))
        if alloc.choice.src_side != home_side.get(alloc.qp_num, alloc.choice.src_side):
            violations["plane"] += 1
        if set(guarded_links(now)).intersection(alloc.path):
            violations["holddown"] += 1
        flow = flows.get(alloc.qp_num)
        if flow is not None:
            flow.reroute(alloc.path)

    master.migration_listener = on_migrate

    samples: list[tuple[float, float]] = []

    def sample() -> None:
        rates = network.compute_rates()
        samples.append((network.now, sum(rates.values())))
        for link in guarded_links(network.now):
            violations["holddown"] += len(master.qps_on_link(link))
        if network.now + plan.sample_interval <= scenario.duration:
            network.schedule(plan.sample_interval, sample)

    # Phase-shifted off the fault schedule's grid: fault times and
    # sampling cadences are both round numbers, and a sampler sharing an
    # instant with a `down` event would read pre- or post-fault
    # throughput depending on timer tie-breaking alone (a racecheck
    # divergence).  Observers must never share an instant with the
    # schedule they observe.
    network.schedule(plan.sample_interval * 0.5, sample)

    # ------------------------------------------------------------------
    # The fault schedule (ground truth).
    # ------------------------------------------------------------------
    event_records: list[dict] = []
    residual_checks: list[int] = []
    stranded_ever: set[int] = set()
    #: Dead link -> fault id of the down event that killed it (silent
    #: failures earn their ``detect`` stage at the maintenance pass that
    #: finds them).
    link_to_fault: dict[tuple, str] = {}

    def ground_truth_residual() -> int:
        """QPs whose flow still crosses a physically dead link."""
        return sum(
            1
            for flow in flows.values()
            if any(not network.link(link_id).is_up for link_id in flow.path)
        )

    fault_ids: list[Optional[str]] = []
    down_index = 0
    for event in plan.events:
        if event.action != "down":
            fault_ids.append(None)
            continue
        fault_id = f"{scenario.name}/down{down_index}"
        down_index += 1
        fault_ids.append(fault_id)
        # A later "up" restoring any of the same links closes the
        # activity window; a permanent failure stays open.
        window_end = min(
            (
                up.time
                for up in plan.events
                if up.action == "up"
                and up.time > event.time
                and set(up.links) & set(event.links)
            ),
            default=float("inf"),
        )
        tracer.register_fault(
            fault_id,
            kind="link_down" if event.notify else "link_down_silent",
            victims=tuple(str(link) for link in event.links),
            injected_at=event.time,
            windows=((event.time, window_end),),
        )

    for event, fault_id in zip(plan.events, fault_ids, strict=True):

        def fire(event=event, fault_id=fault_id) -> None:
            if event.action == "up":
                for link in event.links:
                    network.restore_link(link)
                return
            victims: set[int] = set()
            for link in event.links:
                victims.update(master.qps_on_link(link))
                link_to_fault[link] = fault_id
            event_records.append(
                {"time": network.now, "victims": victims, "fault_id": fault_id}
            )
            for link in event.links:
                network.fail_link(link)
            if victims:
                # Victim flows stall the instant the link dies: that
                # stall is the first fault-attributable signal.
                tracer.stage(fault_id, "first_record", network.now)
            if event.notify:
                for link in event.links:
                    report = master.notify_link_failure(link)
                    stranded_ever.update(report.stranded)
                tracer.stage(fault_id, "detect", network.now, via="notification")

        network.schedule_at(event.time, fire)
        if event.action == "down":
            # The deadline audit runs a hair past the deadline instant:
            # flapping schedules put other links' `fire` timers on the
            # same round timestamps, and whether the audit sees their
            # stalls must not hinge on tie-break order (deadline
            # inclusive either way — migrations due at the deadline have
            # already happened).
            network.schedule_at(
                event.time + plan.migration_deadline + 1e-3,
                lambda: residual_checks.append(ground_truth_residual()),
            )

    # Periodic incremental re-probe: catches silent failures, walks
    # quarantined links back through probation.
    reports = []

    def maintenance_tick() -> None:
        report = master.maintenance(network.now)
        reports.append(report)
        for link in report.newly_dead:
            fault_id = link_to_fault.get(link)
            if fault_id is not None:
                tracer.stage(fault_id, "detect", network.now, via="reprobe")
        for drain in report.drains:
            stranded_ever.update(drain.stranded)
        if network.now + plan.reprobe_interval <= scenario.duration:
            network.schedule(plan.reprobe_interval, maintenance_tick)

    # The first tick is deliberately phase-shifted off the interval grid
    # so silent failures scheduled on round timestamps are detected a
    # fraction of an interval later, as in production — not at the very
    # instant they occur.
    network.schedule(plan.reprobe_interval * 0.6, maintenance_tick)

    network.run(until=scenario.duration)

    # ------------------------------------------------------------------
    # Judgment.
    # ------------------------------------------------------------------
    down_events = plan.down_events
    latencies: list[float] = []
    for record in event_records:
        victims = record["victims"]
        if not victims:
            continue
        moved = [t for t, qp in migration_log if qp in victims and t >= record["time"]]
        if moved:
            latency = max(moved) - record["time"]
            latencies.append(latency)
            m_reroute.observe(latency)
            fault_id = record["fault_id"]
            tracer.stage(fault_id, "steer", min(moved))
            tracer.stage(fault_id, "recover", max(moved), migrated=len(moved))

    pre_fault = 0.0
    if down_events:
        first_down = down_events[0].time
        before = [thr for t, thr in samples if t < first_down]
        pre_fault = before[-1] if before else 0.0

    recovery_time: Optional[float] = None
    if down_events and pre_fault > 0:
        last_down = down_events[-1].time
        for t, thr in samples:
            if t >= last_down and thr >= plan.recovery_fraction * pre_fault:
                recovery_time = t - last_down
                break

    rail = topology.rail_of(plan.nic)
    spine_loads = []
    for spine in range(spec.spines_per_rail):
        uplinks = [
            ClusterTopology.leaf_up(rail, side, spine, k)
            for side in (0, 1)
            for k in range(spec.uplink_ports_per_spine)
        ]
        if all(link in master.registry.dead_links for link in uplinks):
            continue
        spine_loads.append(sum(master.registry.load_of(link) for link in uplinks))
    mean_load = sum(spine_loads) / len(spine_loads) if spine_loads else 0.0
    imbalance = max(spine_loads) / mean_load if mean_load > 0 else 1.0

    metrics = FabricMetrics(
        qps_total=len(flows),
        migrations=len(migration_log),
        stranded=len(stranded_ever),
        residual_after_deadline=max(residual_checks) if residual_checks else 0,
        reroute_latency_mean=sum(latencies) / len(latencies) if latencies else 0.0,
        reroute_latency_max=max(latencies) if latencies else 0.0,
        holddown_violations=violations["holddown"],
        plane_violations=violations["plane"],
        spine_imbalance=imbalance,
        pre_fault_throughput=pre_fault,
        recovery_time=recovery_time,
        recovered_links=sum(len(r.recovered) for r in reports),
    )
    return score_fabric_scenario(scenario, metrics)
