"""CONTROLPLANE chaos runner: faults aimed at the master itself.

The other scenario kinds assume an immortal control plane and attack
the cluster; this runner attacks the control plane.  It drives the same
synthetic feed and agent plane as the PIPELINE kind, but the collector /
master / steering stack lives inside a journaled
:class:`~repro.controlplane.c4d_plane.C4DControlPlane`, and the scenario
plan schedules master kills, warm-standby promotions, collector
partitions and agent massacres against it.

Judgment is two-layered.  The pipeline layer is unchanged — actions
versus injected ground truth.  The resilience layer checks the
invariants the journal/fencing/lease machinery exists for:

* recovery replays the journal to a digest **bit-identical** to the one
  captured at the instant of the kill;
* no steering action is physically executed twice for one fault, even
  across incarnations (replay re-derives bookkeeping, never actions);
* a fenced-out master executes nothing after its successor takes over;
* telemetry blackouts produce **zero** false isolations — lease-derived
  coverage pushes the master into degraded mode instead;
* post-recovery recall matches the fault-free baseline run.

Every chaos timestamp sits off the feed/evaluation grids, so the
schedule-perturbation racecheck can replay these scenarios without
same-instant ties.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.chaos.scenario import ChaosScenario, ControlPlanePlan
from repro.chaos.scorecard import (
    DEFAULT_GRACE,
    ControlPlaneMetrics,
    ScenarioScorecard,
    _matching_episodes,
    score_controlplane_scenario,
)
from repro.chaos.workload import SyntheticFeed
from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.controlplane import C4DControlPlane, JournalStore, LeaseTable
from repro.core.c4d.steering import fault_key
from repro.netsim.network import FlowNetwork
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import FaultTracer
from repro.telemetry.agent import AgentPlane


def _run(
    scenario: ChaosScenario,
    plan: ControlPlanePlan,
    registry: MetricsRegistry,
    tracer: Optional[FaultTracer],
    grace: float,
) -> dict:
    """One full simulation; returns everything the scorer needs."""
    network = FlowNetwork(metrics=registry)
    spec = ClusterSpec(num_nodes=scenario.job_nodes + scenario.backup_nodes)
    topology = ClusterTopology(spec, network, ecmp_seed=scenario.seed)
    backups = list(range(scenario.job_nodes, spec.num_nodes))
    store = JournalStore(metrics=registry)
    leases = LeaseTable(lease_seconds=plan.lease_seconds, metrics=registry)

    # Mutable run context: the current master incarnation plus the
    # resilience counters the scorecard reports.
    ctx = {
        "down": False,
        "kills": 0,
        "digest_at_kill": None,
        "replay_digest_match": True,
        "replay_digest": "",
        "entries_replayed": 0,
        "recovery_seconds": None,
        "duplicates": 0,
        "blackout_false_isolations": 0,
        "coverage_min": 1.0,
        "stale_planes": [],
        "token": 0,
        "seen_keys": {},
    }

    def on_action(action, coverage) -> None:
        """Physical execution hook: relaunch the job, audit the action."""
        key = fault_key(action.anomaly)
        executed_at = ctx["seen_keys"].get(key)
        if executed_at is not None and network.now - executed_at < plan.dedup_window:
            ctx["duplicates"] += 1
        ctx["seen_keys"][key] = network.now
        if coverage < plan.degraded_coverage_threshold and not _matching_episodes(
            action, scenario.episodes, grace
        ):
            ctx["blackout_false_isolations"] += len(action.isolated_nodes)
        removed = set(action.isolated_nodes)
        state["nodes"] = [n for n in state["nodes"] if n not in removed] + list(
            action.replacement_nodes
        )
        old_comm = feed.comm_id
        feed.halt()
        ctx["plane"].drop_communicator(old_comm)
        ctx["token"] += 1
        token = ctx["token"]

        def relaunch() -> None:
            if token == ctx["token"] and state["nodes"]:
                feed.relaunch(state["nodes"])

        # A hair past ready_at, off the round-number grids (same
        # rationale as the pipeline runner).
        network.schedule(max(0.0, action.ready_at - network.now) + 1e-3, relaunch)

    def build_plane(active: bool, standby: bool = False) -> C4DControlPlane:
        return C4DControlPlane(
            topology,
            backup_nodes=backups,
            store=store,
            leases=leases,
            detector_config=scenario.detector,
            steering_config=scenario.steering,
            steering_faults=scenario.steering_faults,
            dedup_window=plan.dedup_window,
            degraded_coverage_threshold=plan.degraded_coverage_threshold,
            active=active,
            standby=standby,
            action_listener=on_action,
            metrics=registry,
            tracer=tracer,
        )

    ctx["plane"] = build_plane(active=True)
    planes = [ctx["plane"]]
    standby = build_plane(active=False, standby=True) if plan.failover else None
    if standby is not None:
        planes.append(standby)

    agent_plane = AgentPlane(
        ctx["plane"], network=network, leases=leases, metrics=registry
    )
    state = {"nodes": list(range(scenario.job_nodes))}
    for node in state["nodes"]:
        agent_plane.agent(node)
        leases.register(node, 0.0)

    feed = SyntheticFeed(
        network,
        agent_plane,
        nodes=state["nodes"],
        faults=scenario.faults,
        step_seconds=scenario.step_seconds,
        seed=scenario.seed,
    )
    if tracer is not None:
        feed.symptom_observer = tracer.observe_symptom

    # ------------------------------------------------------------------
    # Periodic timers (all offsets off the feed/evaluation grids)
    # ------------------------------------------------------------------
    def evaluate_tick() -> None:
        coverage = leases.coverage(network.now)
        ctx["coverage_min"] = min(ctx["coverage_min"], coverage)
        if not ctx["down"]:
            ctx["plane"].evaluate(network.now)
        if network.now + scenario.evaluation_interval <= scenario.duration:
            network.schedule(scenario.evaluation_interval, evaluate_tick)

    def heartbeat_tick() -> None:
        agent_plane.beat_all(network.now)
        if network.now + plan.heartbeat_interval <= scenario.duration:
            network.schedule(plan.heartbeat_interval, heartbeat_tick)

    def snapshot_tick() -> None:
        if not ctx["down"]:
            ctx["plane"].snapshot()
        if network.now + plan.snapshot_interval <= scenario.duration:
            network.schedule(plan.snapshot_interval, snapshot_tick)

    network.schedule(
        scenario.evaluation_interval + 0.1 * scenario.step_seconds, evaluate_tick
    )
    network.schedule(plan.heartbeat_interval + 2.7, heartbeat_tick)
    network.schedule(plan.snapshot_interval + 0.9, snapshot_tick)

    # ------------------------------------------------------------------
    # Scheduled control-plane faults
    # ------------------------------------------------------------------
    if plan.kill_at is not None and plan.recover_at is not None:

        def kill() -> None:
            ctx["down"] = True
            ctx["kills"] += 1
            ctx["digest_at_kill"] = ctx["plane"].state_digest()
            # Agents lose their master: records buffer node-locally and
            # heartbeats stop arriving.
            agent_plane.suspend()

        def recover() -> None:
            old = ctx["plane"]
            successor = standby if standby is not None else build_plane(active=False)
            if successor not in planes:
                planes.append(successor)
            info = successor.recover(now=network.now)
            ctx["replay_digest"] = info["digest"]
            ctx["replay_digest_match"] = info["digest"] == ctx["digest_at_kill"]
            ctx["entries_replayed"] += info["entries_replayed"]
            ctx["recovery_seconds"] = network.now - plan.kill_at
            ctx["plane"] = successor
            ctx["down"] = False
            ctx["demoted"] = (old, len(old.steering.executed_actions))
            agent_plane.retarget(successor)
            agent_plane.resume(network.now)

        network.schedule(plan.kill_at, kill)
        network.schedule(plan.recover_at, recover)

    if plan.stale_poke_at is not None:

        def stale_poke() -> None:
            demoted = ctx.get("demoted")
            if demoted is None:
                return
            old_plane, _ = demoted
            # The zombie write: a fenced-out master re-attempting an
            # evaluation.  It must be rejected without appending.
            old_plane.evaluate(network.now)
            old_plane.snapshot()

        network.schedule(plan.stale_poke_at, stale_poke)

    if plan.partition is not None:
        start, end = plan.partition
        network.schedule(start, agent_plane.suspend)
        network.schedule(end, lambda: agent_plane.resume(network.now))

    if plan.massacre_window is not None:
        start, end = plan.massacre_window

        def massacre() -> None:
            for node in plan.massacre_nodes:
                agent_plane.kill_agent(node)

        def revive() -> None:
            for node in plan.massacre_nodes:
                agent_plane.revive_agent(node, network.now)

        network.schedule(start, massacre)
        network.schedule(end, revive)

    feed.start()
    network.run(until=scenario.duration)

    final = ctx["plane"]
    stale_executed = 0
    demoted = ctx.get("demoted")
    if demoted is not None:
        old_plane, executed_at_demotion = demoted
        stale_executed = len(old_plane.steering.executed_actions) - executed_at_demotion
    return {
        "actions": list(final.steering.actions),
        "steps_completed": feed.steps_completed,
        "relaunches": feed.relaunches,
        "kills": ctx["kills"],
        "recoveries": sum(p.recoveries for p in planes),
        "failovers": sum(p.failovers for p in planes),
        "replay_digest_match": ctx["replay_digest_match"],
        "replay_digest": ctx["replay_digest"],
        "entries_replayed": ctx["entries_replayed"],
        "journal_entries": len(store.entries),
        "snapshots": len(store.snapshots),
        "recovery_seconds": ctx["recovery_seconds"],
        "duplicate_actions": ctx["duplicates"],
        "fencing_rejections": sum(p.stale_rejections for p in planes),
        "stale_actions_executed": stale_executed,
        "blackout_false_isolations": ctx["blackout_false_isolations"],
        "coverage_min": ctx["coverage_min"],
        "backfilled_records": agent_plane.backfilled_records,
    }


def run_controlplane_scenario(
    scenario: ChaosScenario,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[FaultTracer] = None,
    grace: float = DEFAULT_GRACE,
) -> ScenarioScorecard:
    """Execute one CONTROLPLANE scenario and judge it.

    The scenario runs twice: once with every control-plane fault
    disabled (a private registry/tracer — the recall baseline), then
    for real.  Both runs share seeds, so any recall the faulted run
    loses is attributable to the control-plane faults alone.
    """
    if scenario.controlplane is None:
        raise ValueError(f"scenario {scenario.name} has no controlplane plan")
    plan = scenario.controlplane
    registry = get_registry(metrics)

    calm_plan = ControlPlanePlan(
        snapshot_interval=plan.snapshot_interval,
        heartbeat_interval=plan.heartbeat_interval,
        lease_seconds=plan.lease_seconds,
        degraded_coverage_threshold=plan.degraded_coverage_threshold,
        dedup_window=plan.dedup_window,
    )
    baseline = _run(
        replace(scenario, controlplane=calm_plan),
        calm_plan,
        MetricsRegistry(),
        None,
        grace,
    )
    baseline_card = score_controlplane_scenario(
        replace(scenario, controlplane=calm_plan),
        baseline["actions"],
        _resilience(baseline, baseline_recall=0.0),
        grace=grace,
    )

    if tracer is not None:
        for episode in scenario.episodes:
            tracer.register_fault(
                f"{scenario.name}/{episode.episode_id}",
                kind=episode.kind,
                victims=episode.nodes,
                injected_at=episode.onset,
                windows=episode.windows,
            )
    result = _run(scenario, plan, registry, tracer, grace)
    return score_controlplane_scenario(
        scenario,
        result["actions"],
        _resilience(result, baseline_recall=baseline_card.recall),
        steps_completed=result["steps_completed"],
        relaunches=result["relaunches"],
        grace=grace,
    )


def _resilience(result: dict, baseline_recall: float) -> ControlPlaneMetrics:
    return ControlPlaneMetrics(
        kills=result["kills"],
        recoveries=result["recoveries"],
        failovers=result["failovers"],
        replay_digest_match=result["replay_digest_match"],
        replay_digest=result["replay_digest"],
        entries_replayed=result["entries_replayed"],
        journal_entries=result["journal_entries"],
        snapshots=result["snapshots"],
        recovery_seconds=result["recovery_seconds"],
        duplicate_actions=result["duplicate_actions"],
        fencing_rejections=result["fencing_rejections"],
        stale_actions_executed=result["stale_actions_executed"],
        blackout_false_isolations=result["blackout_false_isolations"],
        coverage_min=result["coverage_min"],
        backfilled_records=result["backfilled_records"],
        baseline_recall=baseline_recall,
    )


__all__ = ["run_controlplane_scenario"]
