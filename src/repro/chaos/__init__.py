"""Chaos harness: adversarial fault campaigns against the C4 pipeline.

The package turns the repo's detect→steer→recover stack into a system
under test: scenarios inject flapping faults, correlated cascades, hard
crashes, lossy telemetry, failing steering actions and corrupted
checkpoints — and the campaign scores what the pipeline actually did
against the injected ground truth.
"""

from repro.chaos.campaign import ChaosCampaign
from repro.chaos.scenario import (
    HARDENED_DETECTORS,
    ChaosScenario,
    Episode,
    ScenarioKind,
    cascade_scenario,
    checkpoint_corruption_scenario,
    crash_under_loss_scenario,
    default_campaign,
    episodes_from_faults,
    flapping_scenario,
)
from repro.chaos.scorecard import (
    DEFAULT_GRACE,
    CampaignScorecard,
    EpisodeOutcome,
    ScenarioScorecard,
    score_pipeline_scenario,
    score_recovery_scenario,
)
from repro.chaos.workload import SyntheticFeed

__all__ = [
    "ChaosCampaign",
    "ChaosScenario",
    "ScenarioKind",
    "Episode",
    "EpisodeOutcome",
    "CampaignScorecard",
    "ScenarioScorecard",
    "SyntheticFeed",
    "HARDENED_DETECTORS",
    "DEFAULT_GRACE",
    "default_campaign",
    "flapping_scenario",
    "cascade_scenario",
    "crash_under_loss_scenario",
    "checkpoint_corruption_scenario",
    "episodes_from_faults",
    "score_pipeline_scenario",
    "score_recovery_scenario",
]
