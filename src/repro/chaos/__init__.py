"""Chaos harness: adversarial fault campaigns against the C4 pipeline.

The package turns the repo's detect→steer→recover stack into a system
under test: scenarios inject flapping faults, correlated cascades, hard
crashes, lossy telemetry, failing steering actions and corrupted
checkpoints — and the campaign scores what the pipeline actually did
against the injected ground truth.  FABRIC scenarios aim the same
treatment at the traffic-engineering plane: links die, flap and return
under a live C4P master, judged on drain-and-migrate completeness, flap
damping and throughput recovery.  CONTROLPLANE scenarios attack the
masters themselves — kills, warm-standby failovers, collector
partitions, agent massacres — judged on journal-replay digests,
duplicate-action counts, fencing and blackout false isolations.
"""

from repro.chaos.campaign import ChaosCampaign
from repro.chaos.controlplane import run_controlplane_scenario
from repro.chaos.fabric import run_fabric_scenario
from repro.chaos.scenario import (
    HARDENED_DETECTORS,
    ChaosScenario,
    ControlPlanePlan,
    Episode,
    FabricEvent,
    FabricPlan,
    ScenarioKind,
    agent_massacre_scenario,
    cascade_scenario,
    checkpoint_corruption_scenario,
    collector_partition_scenario,
    crash_under_loss_scenario,
    default_campaign,
    dual_plane_scenario,
    episodes_from_faults,
    failover_scenario,
    flapping_link_scenario,
    flapping_scenario,
    link_down_scenario,
    master_kill_scenario,
    spine_maintenance_scenario,
)
from repro.chaos.scorecard import (
    DEFAULT_GRACE,
    CampaignScorecard,
    ControlPlaneMetrics,
    EpisodeOutcome,
    FabricMetrics,
    ScenarioScorecard,
    score_controlplane_scenario,
    score_fabric_scenario,
    score_pipeline_scenario,
    score_recovery_scenario,
)
from repro.chaos.workload import SyntheticFeed

__all__ = [
    "ChaosCampaign",
    "ChaosScenario",
    "ControlPlaneMetrics",
    "ControlPlanePlan",
    "ScenarioKind",
    "Episode",
    "EpisodeOutcome",
    "FabricEvent",
    "FabricPlan",
    "FabricMetrics",
    "CampaignScorecard",
    "ScenarioScorecard",
    "SyntheticFeed",
    "HARDENED_DETECTORS",
    "DEFAULT_GRACE",
    "default_campaign",
    "flapping_scenario",
    "cascade_scenario",
    "crash_under_loss_scenario",
    "checkpoint_corruption_scenario",
    "link_down_scenario",
    "flapping_link_scenario",
    "spine_maintenance_scenario",
    "dual_plane_scenario",
    "master_kill_scenario",
    "failover_scenario",
    "collector_partition_scenario",
    "agent_massacre_scenario",
    "episodes_from_faults",
    "run_controlplane_scenario",
    "run_fabric_scenario",
    "score_pipeline_scenario",
    "score_recovery_scenario",
    "score_fabric_scenario",
    "score_controlplane_scenario",
]
