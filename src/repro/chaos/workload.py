"""Synthetic monitored workload driving the detect→steer pipeline.

The chaos campaign needs thousands of simulated seconds of monitored
training per scenario; running the full collective/netsim stack for
each would dominate the campaign's wall time without adding signal (the
detectors consume only monitoring records).  :class:`SyntheticFeed`
emits the *same* record types the real instrumented stack produces —
``CommunicatorRecord`` / ``OpLaunchRecord`` / ``OpRecord`` through the
same agent plane — while the injected ground-truth faults shape the
records exactly the way real faults shape them:

* a **crashed** node stops producing launch records and the whole
  communicator stalls (the BSP barrier never clears) → the hang
  detector's non-communication-hang syndrome;
* a **degraded** node (flapping window, cascade victim) launches late
  every step → the wait-chain non-communication-slow syndrome;
* everything flows through the (possibly lossy) telemetry channel, so
  the detectors see exactly what an unreliable deployment would.

The feed never talks to the detectors directly — the pipeline under
test is the real collector → master → steering code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.faults import FaultClass, FaultEvent
from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import CommunicatorRecord, OpLaunchRecord, OpRecord


class SyntheticFeed:
    """Emits monitoring records for one job under injected faults.

    Parameters
    ----------
    network:
        Event loop (supplies ``now`` / ``schedule``).
    sink:
        A MonitoringSink — normally the campaign's
        :class:`~repro.telemetry.agent.AgentPlane`.
    nodes:
        Node ids hosting the job, one rank per node.
    faults:
        Ground-truth fault events shaping the records.
    step_seconds:
        Simulated time per training step (one collective per step).
    degraded_lateness:
        Launch lateness of a node inside an active degradation window.
    jitter:
        Benign per-rank launch jitter (uniform, seconds).
    """

    def __init__(
        self,
        network,
        sink,
        nodes: Sequence[int],
        faults: Sequence[FaultEvent] = (),
        step_seconds: float = 5.0,
        op_seconds: float = 0.5,
        degraded_lateness: float = 2.0,
        jitter: float = 0.02,
        comm_prefix: str = "chaos",
        seed: int = 0,
    ) -> None:
        self.network = network
        self.sink = sink
        self.nodes: list[int] = list(nodes)
        self.faults = list(faults)
        self.step_seconds = step_seconds
        self.op_seconds = op_seconds
        self.degraded_lateness = degraded_lateness
        self.jitter = jitter
        self.comm_prefix = comm_prefix
        self._rng = np.random.default_rng(seed)
        self._incarnation = 0
        self._seq = 0
        self._halted = True
        self._comm_id = ""
        self.steps_completed = 0
        self.relaunches = 0
        #: Optional ``(now, node)`` callback fired when a record shaped
        #: by an active fault is emitted (or withheld, for crashes) — the
        #: observability tracer's ``first_record`` stage hook.
        self.symptom_observer = None

    # ------------------------------------------------------------------
    # Ground-truth queries (the feed is the cluster, not the detector)
    # ------------------------------------------------------------------
    def _crashed(self, node: int, now: float) -> bool:
        return any(
            f.fault_class is FaultClass.CRASH
            and f.component == node
            and f.active_at(now)
            for f in self.faults
        )

    def _lateness(self, node: int, now: float) -> float:
        degraded = any(
            f.fault_class is FaultClass.DEGRADE
            and f.component == node
            and f.active_at(now)
            for f in self.faults
        )
        return self.degraded_lateness if degraded else 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register the first incarnation and begin emitting steps."""
        self._register()
        self.network.schedule(self.step_seconds, self._tick)

    def halt(self) -> None:
        """Stop emitting (steering tore the incarnation down)."""
        self._halted = True

    def relaunch(self, nodes: Sequence[int]) -> None:
        """Restart on a (possibly shrunk/swapped) node set."""
        self.nodes = list(nodes)
        self.relaunches += 1
        self._register()
        self.network.schedule(self.step_seconds, self._tick)

    @property
    def comm_id(self) -> str:
        """The current incarnation's communicator id."""
        return self._comm_id

    def _register(self) -> None:
        self._incarnation += 1
        self._seq = 0
        self._halted = False
        self._comm_id = f"{self.comm_prefix}#{self._incarnation}"
        ranks = tuple(RankLocation(node, 0) for node in self.nodes)
        self.sink.on_communicator(
            CommunicatorRecord(self._comm_id, len(self.nodes), ranks)
        )

    # ------------------------------------------------------------------
    # Step emission
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._halted:
            return
        now = self.network.now
        seq = self._seq
        launches: dict[int, float] = {}
        crashed = []
        for rank, node in enumerate(self.nodes):
            if self._crashed(node, now):
                crashed.append(rank)
                if self.symptom_observer is not None:
                    self.symptom_observer(now, node)
                continue
            lateness = self._lateness(node, now)
            if lateness > 0 and self.symptom_observer is not None:
                self.symptom_observer(now, node)
            launch_time = (
                now
                + float(self._rng.uniform(0.0, self.jitter))
                + lateness
            )
            launches[rank] = launch_time
            self.sink.on_op_launch(
                OpLaunchRecord(
                    comm_id=self._comm_id,
                    seq=seq,
                    op_type=OpType.ALLREDUCE,
                    rank=rank,
                    location=RankLocation(node, 0),
                    launch_time=launch_time,
                )
            )
        if crashed or not launches:
            # The BSP barrier never clears: no completions, no further
            # steps.  The hang detector must notice from the records.
            return
        start = max(launches.values())
        end = start + self.op_seconds
        for rank, node in enumerate(self.nodes):
            self.sink.on_op(
                OpRecord(
                    comm_id=self._comm_id,
                    seq=seq,
                    op_type=OpType.ALLREDUCE,
                    algorithm=Algorithm.RING,
                    dtype="fp16",
                    element_count=1,
                    rank=rank,
                    location=RankLocation(node, 0),
                    launch_time=launches[rank],
                    start_time=start,
                    end_time=end,
                )
            )
        self._seq += 1
        self.steps_completed += 1
        self.network.schedule(self.step_seconds, self._tick)
