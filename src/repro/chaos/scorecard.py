"""Campaign scoring: pipeline output judged against injected ground truth.

The chaos harness knows exactly which faults it injected (the scenario's
:class:`~repro.chaos.scenario.Episode` list) and observes exactly what
the pipeline did (the steering service's actions, the recovery
orchestrator's events).  The scorecard joins the two:

* an action is **true** when at least one node it targeted belongs to an
  episode active at detection time (stretched by a grace window — a
  flapping window may close while the debounce is still counting);
* an action is **false** otherwise, and each node it isolated counts as
  a false isolation (healthy capacity destroyed by ghost telemetry);
* an **isolation storm** is the same (episode, node) pair isolated more
  than once — the failure mode hysteresis exists to prevent;
* **MTTR** is fault onset to the job running again (``ready_at`` of the
  first matching action);
* **wasted backups** are spares consumed without curing a real fault:
  dead-on-arrival replacements plus replacements issued by false
  actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.chaos.scenario import ChaosScenario, Episode
from repro.core.c4d.steering import SteeringAction
from repro.training.recovery import RecoveryReport

#: Seconds past an episode window's end during which a detection still
#: counts as true.  Debounce, evaluation cadence and telemetry latency
#: all sit between fault onset and action; a flapping window can close
#: in the meantime without making the (correct) detection a ghost.
DEFAULT_GRACE = 240.0


@dataclass(frozen=True)
class EpisodeOutcome:
    """How the pipeline handled one ground-truth episode."""

    episode_id: str
    kind: str
    nodes: tuple[int, ...]
    onset: float
    detected: bool
    #: Detection time of the first matching action (None when missed).
    detected_at: Optional[float] = None
    #: Onset → job-running-again of the first matching action.
    mttr_seconds: Optional[float] = None
    #: Isolations per node of this episode (storm when any exceeds 1).
    isolations_per_node: dict[int, int] = field(default_factory=dict)

    @property
    def storm_nodes(self) -> tuple[int, ...]:
        """Nodes of this episode isolated more than once."""
        return tuple(
            sorted(n for n, count in self.isolations_per_node.items() if count > 1)
        )


@dataclass(frozen=True)
class FabricMetrics:
    """Traffic-engineering judgment of one FABRIC scenario.

    The runner knows the injected link schedule (ground truth) and
    observes the master's books plus the simulated flows, so every
    number here is measured, not inferred:

    * ``residual_after_deadline`` — worst-case count of QPs whose flows
      still crossed a physically dead link when a down event's migration
      deadline expired (the Fig. 12 acceptance number: must be zero);
    * ``reroute_latency_*`` — seconds from a down event to the last
      victim QP's migration (zero when the out-of-band notification
      drains synchronously; bounded by the re-probe interval for silent
      failures);
    * ``holddown_violations`` — QP placements onto a flapping link
      inside the guard window (flap damping must keep this at zero);
    * ``plane_violations`` — migrations that crossed physical planes;
    * ``spine_imbalance`` — max/mean allocated QP load across live
      spines at scenario end (post-fault balance, Fig. 12b);
    * ``recovery_time`` — seconds from the last down event until
      throughput first returned to ``recovery_fraction`` of its
      pre-fault level (None when it never did);
    * ``recovered_links`` — dead links re-admitted through hold-down +
      probation by scenario end.
    """

    qps_total: int
    migrations: int
    stranded: int
    residual_after_deadline: int
    reroute_latency_mean: float
    reroute_latency_max: float
    holddown_violations: int
    plane_violations: int
    spine_imbalance: float
    pre_fault_throughput: float
    recovery_time: Optional[float]
    recovered_links: int


@dataclass(frozen=True)
class ControlPlaneMetrics:
    """Resilience judgment of one CONTROLPLANE scenario.

    * ``replay_digest_match`` — the recovered master's state digest is
      bit-identical to the digest captured at the instant of the kill
      (vacuously true when no kill was scheduled);
    * ``duplicate_actions`` — steering actions physically executed more
      than once for the same fault key within the dedup window, across
      every master incarnation (must be zero: recovery may re-derive an
      action's bookkeeping but never re-execute it);
    * ``stale_actions_executed`` — actions executed by a fenced-out
      master after its successor claimed the journal (must be zero);
    * ``fencing_rejections`` — writes a stale incarnation attempted and
      had rejected (nonzero proves the fence was actually exercised in
      failover scenarios);
    * ``blackout_false_isolations`` — nodes isolated by actions executed
      under degraded coverage that matched no active ground-truth
      episode (the false-isolation storm a telemetry blackout must not
      cause);
    * ``recovery_seconds`` — master downtime: kill to the replacement
      accepting writes;
    * ``baseline_recall`` — episode recall of the identical scenario
      with every control-plane fault disabled; the faulted run's recall
      must not fall below it.
    """

    kills: int
    recoveries: int
    failovers: int
    replay_digest_match: bool
    replay_digest: str
    entries_replayed: int
    journal_entries: int
    snapshots: int
    recovery_seconds: Optional[float]
    duplicate_actions: int
    fencing_rejections: int
    stale_actions_executed: int
    blackout_false_isolations: int
    coverage_min: float
    backfilled_records: int
    baseline_recall: float


@dataclass(frozen=True)
class ScenarioScorecard:
    """One scenario's score."""

    name: str
    seed: int
    kind: str
    episodes: tuple[EpisodeOutcome, ...]
    #: Steering actions judged true / false.
    true_actions: int
    false_actions: int
    #: Nodes isolated by false actions (healthy capacity destroyed).
    false_isolations: int
    #: (episode, node) pairs isolated more than once.
    isolation_storms: int
    #: Spares consumed without curing a real fault (DOA + false actions).
    wasted_backups: int
    #: Actions that found the backup pool empty.
    pool_exhaustions: int
    #: Telemetry channel counters (empty for a perfect channel).
    channel: dict = field(default_factory=dict)
    #: Workload progress (pipeline scenarios).
    steps_completed: int = 0
    relaunches: int = 0
    #: Corrupted snapshots skipped during restore (recovery scenarios).
    restore_fallbacks: int = 0
    #: RECOVERY kind: the run finished despite the injected damage.
    completed: bool = True
    #: FABRIC kind: traffic-engineering metrics (None otherwise).
    fabric: Optional[FabricMetrics] = None
    #: CONTROLPLANE kind: resilience metrics (None otherwise).
    controlplane: Optional[ControlPlaneMetrics] = None

    @property
    def precision(self) -> float:
        """True actions over all actions (1.0 when no action was taken)."""
        total = self.true_actions + self.false_actions
        return self.true_actions / total if total else 1.0

    @property
    def recall(self) -> float:
        """Detected episodes over all episodes (1.0 when none injected)."""
        if not self.episodes:
            return 1.0
        return sum(1 for e in self.episodes if e.detected) / len(self.episodes)

    @property
    def mttr_values(self) -> tuple[float, ...]:
        """MTTR samples of the detected episodes."""
        return tuple(
            e.mttr_seconds for e in self.episodes if e.mttr_seconds is not None
        )


@dataclass(frozen=True)
class CampaignScorecard:
    """Aggregate over every scenario of a campaign."""

    scenarios: tuple[ScenarioScorecard, ...]

    @property
    def precision(self) -> float:
        """Micro-averaged action precision across scenarios."""
        true = sum(s.true_actions for s in self.scenarios)
        false = sum(s.false_actions for s in self.scenarios)
        total = true + false
        return true / total if total else 1.0

    @property
    def recall(self) -> float:
        """Micro-averaged episode recall across scenarios."""
        episodes = [e for s in self.scenarios for e in s.episodes]
        if not episodes:
            return 1.0
        return sum(1 for e in episodes if e.detected) / len(episodes)

    @property
    def false_isolations(self) -> int:
        """Healthy nodes isolated across the whole campaign."""
        return sum(s.false_isolations for s in self.scenarios)

    @property
    def isolation_storms(self) -> int:
        """(episode, node) pairs isolated more than once, campaign-wide."""
        return sum(s.isolation_storms for s in self.scenarios)

    @property
    def wasted_backups(self) -> int:
        """Spares consumed without curing a real fault, campaign-wide."""
        return sum(s.wasted_backups for s in self.scenarios)

    @property
    def mttr_values(self) -> tuple[float, ...]:
        """All MTTR samples across scenarios."""
        return tuple(v for s in self.scenarios for v in s.mttr_values)

    def mttr_stats(self) -> dict:
        """Min/median/mean/max of the MTTR distribution."""
        values = sorted(self.mttr_values)
        if not values:
            return {"count": 0}
        mid = len(values) // 2
        median = (
            values[mid]
            if len(values) % 2
            else (values[mid - 1] + values[mid]) / 2.0
        )
        return {
            "count": len(values),
            "min": values[0],
            "median": median,
            "mean": sum(values) / len(values),
            "max": values[-1],
        }


def _action_targets(action: SteeringAction) -> set[int]:
    """Every node an action accused: isolated, failed, or suspected."""
    targets = set(action.isolated_nodes) | set(action.failed_isolations)
    targets.update(n for n in action.anomaly.suspect_nodes)
    return targets


def _matching_episodes(
    action: SteeringAction, episodes: Sequence[Episode], grace: float
) -> list[Episode]:
    """Episodes an action correctly responded to."""
    when = action.anomaly.detected_at
    targets = _action_targets(action)
    return [
        episode
        for episode in episodes
        if episode.active_at(when, grace=grace)
        and targets.intersection(episode.nodes)
    ]


def score_pipeline_scenario(
    scenario: ChaosScenario,
    actions: Sequence[SteeringAction],
    channel_stats: Optional[dict] = None,
    steps_completed: int = 0,
    relaunches: int = 0,
    grace: float = DEFAULT_GRACE,
) -> ScenarioScorecard:
    """Judge one pipeline run's steering actions against ground truth."""
    episodes = scenario.episodes
    first_match: dict[str, SteeringAction] = {}
    isolations: dict[str, dict[int, int]] = {e.episode_id: {} for e in episodes}
    true_actions = 0
    false_actions = 0
    false_isolations = 0
    wasted = 0
    pool_exhaustions = 0
    for action in actions:
        pool_exhaustions += int(action.pool_exhausted)
        wasted += len(action.doa_replacements)
        matched = _matching_episodes(action, episodes, grace)
        if matched:
            true_actions += 1
            for episode in matched:
                first_match.setdefault(episode.episode_id, action)
                counts = isolations[episode.episode_id]
                for node in action.isolated_nodes:
                    if episode.covers_node(node):
                        counts[node] = counts.get(node, 0) + 1
        else:
            false_actions += 1
            false_isolations += len(action.isolated_nodes)
            wasted += len(action.replacement_nodes)
    outcomes = []
    for episode in episodes:
        action = first_match.get(episode.episode_id)
        outcomes.append(
            EpisodeOutcome(
                episode_id=episode.episode_id,
                kind=episode.kind,
                nodes=episode.nodes,
                onset=episode.onset,
                detected=action is not None,
                detected_at=action.anomaly.detected_at if action else None,
                mttr_seconds=(action.ready_at - episode.onset) if action else None,
                isolations_per_node=dict(isolations[episode.episode_id]),
            )
        )
    storms = sum(len(o.storm_nodes) for o in outcomes)
    return ScenarioScorecard(
        name=scenario.name,
        seed=scenario.seed,
        kind=scenario.kind.value,
        episodes=tuple(outcomes),
        true_actions=true_actions,
        false_actions=false_actions,
        false_isolations=false_isolations,
        isolation_storms=storms,
        wasted_backups=wasted,
        pool_exhaustions=pool_exhaustions,
        channel=dict(channel_stats or {}),
        steps_completed=steps_completed,
        relaunches=relaunches,
    )


def score_fabric_scenario(
    scenario: ChaosScenario, metrics: FabricMetrics
) -> ScenarioScorecard:
    """Wrap one fabric run's measurements into the campaign scorecard.

    Fabric scenarios have no steering actions or node episodes; the
    episode/action counters stay empty and the scenario passes
    (``completed``) when the three hard invariants hold: every victim
    QP migrated by its deadline, no placement violated a hold-down, and
    no migration crossed planes.
    """
    return ScenarioScorecard(
        name=scenario.name,
        seed=scenario.seed,
        kind=scenario.kind.value,
        episodes=(),
        true_actions=0,
        false_actions=0,
        false_isolations=0,
        isolation_storms=0,
        wasted_backups=0,
        pool_exhaustions=metrics.stranded,
        completed=(
            metrics.residual_after_deadline == 0
            and metrics.holddown_violations == 0
            and metrics.plane_violations == 0
        ),
        fabric=metrics,
    )


def score_controlplane_scenario(
    scenario: ChaosScenario,
    actions: Sequence[SteeringAction],
    resilience: ControlPlaneMetrics,
    channel_stats: Optional[dict] = None,
    steps_completed: int = 0,
    relaunches: int = 0,
    grace: float = DEFAULT_GRACE,
) -> ScenarioScorecard:
    """Judge one control-plane run: pipeline quality plus resilience.

    The episode/action judgment reuses the pipeline scorer (the logical
    action history spans every master incarnation — replay reconstructs
    the pre-crash actions on the recovered master).  On top of it, the
    scenario only passes (``completed``) when the resilience invariants
    hold: the replayed digest matched, no action was executed twice, no
    stale master executed anything, no blackout false isolation
    happened, and recall did not fall below the fault-free baseline.
    """
    card = score_pipeline_scenario(
        scenario,
        actions,
        channel_stats=channel_stats,
        steps_completed=steps_completed,
        relaunches=relaunches,
        grace=grace,
    )
    completed = (
        resilience.replay_digest_match
        and resilience.duplicate_actions == 0
        and resilience.stale_actions_executed == 0
        and resilience.blackout_false_isolations == 0
        and card.recall >= resilience.baseline_recall
    )
    return replace(card, completed=completed, controlplane=resilience)


def score_recovery_scenario(
    scenario: ChaosScenario,
    report: RecoveryReport,
    grace: float = DEFAULT_GRACE,
) -> ScenarioScorecard:
    """Judge one recovery run's events against ground truth."""
    episodes = scenario.episodes
    first_match: dict[str, tuple[float, float]] = {}  # id -> (detected, resumed)
    isolations: dict[str, dict[int, int]] = {e.episode_id: {} for e in episodes}
    true_actions = 0
    false_actions = 0
    false_isolations = 0
    wasted = 0
    pool_exhaustions = 0
    restore_fallbacks = 0
    for event in report.events:
        pool_exhaustions += int(event.pool_exhausted)
        wasted += len(event.doa_replacements)
        restore_fallbacks += event.restore_fallbacks
        targets = set(event.isolated_nodes)
        matched = [
            episode
            for episode in episodes
            if episode.active_at(event.detected_at, grace=grace)
            and targets.intersection(episode.nodes)
        ]
        if matched:
            true_actions += 1
            for episode in matched:
                first_match.setdefault(
                    episode.episode_id, (event.detected_at, event.resumed_at)
                )
                counts = isolations[episode.episode_id]
                for node in event.isolated_nodes:
                    if episode.covers_node(node):
                        counts[node] = counts.get(node, 0) + 1
        else:
            false_actions += 1
            false_isolations += len(event.isolated_nodes)
            wasted += len(event.replacement_nodes)
    outcomes = []
    for episode in episodes:
        match = first_match.get(episode.episode_id)
        outcomes.append(
            EpisodeOutcome(
                episode_id=episode.episode_id,
                kind=episode.kind,
                nodes=episode.nodes,
                onset=episode.onset,
                detected=match is not None,
                detected_at=match[0] if match else None,
                mttr_seconds=(match[1] - episode.onset) if match else None,
                isolations_per_node=dict(isolations[episode.episode_id]),
            )
        )
    storms = sum(len(o.storm_nodes) for o in outcomes)
    return ScenarioScorecard(
        name=scenario.name,
        seed=scenario.seed,
        kind=scenario.kind.value,
        episodes=tuple(outcomes),
        true_actions=true_actions,
        false_actions=false_actions,
        false_isolations=false_isolations,
        isolation_storms=storms,
        wasted_backups=wasted,
        pool_exhaustions=pool_exhaustions,
        steps_completed=report.completed_steps,
        relaunches=len(report.events),
        restore_fallbacks=restore_fallbacks,
        completed=report.finished,
    )
