"""Chaos scenario definitions: seeded adversarial campaigns with ground truth.

A scenario bundles everything one adversarial run needs — the fault
plan (the *ground truth* the scorecard judges against), the telemetry
unreliability model, and the detector/steering hardening knobs.  Two
scenario kinds exist:

* ``PIPELINE`` — drives the full detect→steer pipeline: a synthetic
  monitored workload emits real monitoring records through a lossy
  channel into the central collector, the (debounced) C4D master
  evaluates periodically, and the hardened steering service isolates
  and replaces nodes;
* ``RECOVERY`` — drives the full crash→restore pipeline on the real
  :class:`~repro.training.recovery.RecoveryOrchestrator`, with
  checkpoint corruption injected so restore must fall back through the
  snapshot chain.
* ``FABRIC`` — drives the C4P traffic-engineering plane: live QPs
  allocated by a real :class:`~repro.core.c4p.master.C4PMaster` while
  fabric links die, flap and come back, judged on drain-and-migrate
  completeness, reroute latency, flap damping and throughput recovery
  (the Fig. 12/13 behaviours under adversarial schedules).

Scenario factories derive every stochastic choice from the scenario
seed, so a campaign is reproducible end to end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.faults import (
    FaultClass,
    FaultEvent,
    FaultInjector,
    FaultType,
    spine_fabric_links,
)
from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.steering import SteeringConfig, SteeringFaultModel
from repro.core.c4p.health import LinkHealthConfig
from repro.telemetry.unreliable import ChannelConfig


class ScenarioKind(enum.Enum):
    """Which pipeline the scenario exercises."""

    PIPELINE = "pipeline"  # detect -> steer on the synthetic feed
    RECOVERY = "recovery"  # crash -> checkpoint-restore on the orchestrator
    FABRIC = "fabric"  # link faults -> drain-and-migrate on the C4P master
    CONTROLPLANE = "controlplane"  # master crashes / telemetry blackouts


@dataclass(frozen=True)
class Episode:
    """One ground-truth fault episode the pipeline should handle.

    ``windows`` are the (start, end) intervals during which the fault
    degrades its victims; ``end`` is ``inf`` for permanent faults.  A
    flapping fault is one episode with several windows; a cascade is one
    episode with several nodes.
    """

    episode_id: str
    nodes: tuple[int, ...]
    windows: tuple[tuple[float, float], ...]
    kind: str

    @property
    def onset(self) -> float:
        """First moment the fault is active."""
        return min(start for start, _end in self.windows)

    def active_at(self, now: float, grace: float = 0.0) -> bool:
        """True while any window (stretched by ``grace``) covers ``now``."""
        return any(start <= now <= end + grace for start, end in self.windows)

    def covers_node(self, node: int) -> bool:
        """True when the episode degrades ``node``."""
        return node in self.nodes


def episodes_from_faults(faults: tuple[FaultEvent, ...]) -> tuple[Episode, ...]:
    """Group injected fault events into scoreable ground-truth episodes.

    Events sharing an ``episode_id`` (flapping recurrences) merge into
    one multi-window episode; events sharing a ``cascade_id`` merge into
    one multi-node episode; everything else is its own episode.
    """
    groups: dict[str, list[FaultEvent]] = {}
    for index, event in enumerate(faults):
        if event.episode_id is not None:
            key = f"flap{event.episode_id}"
        elif event.cascade_id is not None:
            key = f"cascade{event.cascade_id}"
        else:
            key = f"single{index}"
        groups.setdefault(key, []).append(event)
    episodes = []
    for key, events in groups.items():
        nodes = tuple(sorted({e.component for e in events if e.component is not None}))
        windows = tuple(
            sorted(
                (e.time, e.end_time if e.end_time is not None else float("inf"))
                for e in events
            )
        )
        episodes.append(
            Episode(
                episode_id=key,
                nodes=nodes,
                windows=windows,
                kind=events[0].fault_type.value,
            )
        )
    return tuple(sorted(episodes, key=lambda e: e.onset))


@dataclass(frozen=True)
class FabricEvent:
    """One scheduled fabric state change.

    ``notify=True`` models an out-of-band failure notification reaching
    the C4P master immediately (a switch trap, a NIC event — the Fig. 12
    fast path); ``notify=False`` is a *silent* failure the master must
    catch through its periodic incremental re-probe.  ``up`` events are
    always silent: recovery must earn its way back through the health
    state machine, never through an announcement.
    """

    time: float
    action: str  # "down" | "up"
    links: tuple[tuple, ...]
    notify: bool = True

    def __post_init__(self) -> None:
        if self.action not in ("down", "up"):
            raise ValueError(f"action must be 'down' or 'up', got {self.action!r}")


@dataclass(frozen=True)
class FabricPlan:
    """Ground truth and judging knobs of one FABRIC scenario.

    Attributes
    ----------
    events:
        The fault schedule (the ground truth the scorecard judges
        against).
    migration_deadline:
        Seconds after each ``down`` event by which every victim QP must
        be off the dead link(s) — the residual-QP acceptance check.
    reprobe_interval:
        Cadence of the master's periodic :meth:`maintenance` passes.
    connections / qps_per_connection:
        Synthetic tenant load placed through the master before faults.
    nic:
        NIC index the connections use; pins the load to one rail so the
        scheduled link faults actually have victims.
    sample_interval:
        Throughput / residual sampling cadence.
    recovery_fraction:
        Fraction of pre-fault throughput that counts as recovered.
    health:
        Flap-damping configuration handed to the master.
    flap_guards:
        ``(link_id, start, end)`` triples: placements of QPs onto
        ``link_id`` inside its window are hold-down violations.  Each
        window runs from just after that link's *first* failure (before
        it the link is legitimately healthy) until its last hold-down
        expires under ``health``'s escalation schedule.
    """

    events: tuple[FabricEvent, ...]
    migration_deadline: float = 30.0
    reprobe_interval: float = 15.0
    connections: int = 48
    qps_per_connection: int = 2
    nic: int = 0
    sample_interval: float = 5.0
    recovery_fraction: float = 0.90
    health: LinkHealthConfig = field(default_factory=LinkHealthConfig)
    flap_guards: tuple[tuple[tuple, float, float], ...] = ()

    @property
    def down_events(self) -> tuple[FabricEvent, ...]:
        """The failure half of the schedule, in time order."""
        return tuple(
            sorted((e for e in self.events if e.action == "down"), key=lambda e: e.time)
        )


@dataclass(frozen=True)
class ControlPlanePlan:
    """Ground truth and judging knobs of one CONTROLPLANE scenario.

    The plan schedules faults against the *control plane itself* — the
    C4D master process and its telemetry supply — rather than against
    the monitored job.  Every timestamp is deliberately off the feed
    (5 s) and evaluation (10 s + 0.5) grids so perturbed-schedule
    replays cannot reorder the chaos events against same-instant
    pipeline events.

    Attributes
    ----------
    kill_at / recover_at:
        When the primary master dies and when the replacement claims the
        journal.  ``failover=False`` restarts a cold instance from the
        journal; ``failover=True`` promotes a pre-built warm standby.
    stale_poke_at:
        Failover only: when the fenced-out old primary attempts a write
        (the zombie-master probe — it must be rejected, not applied).
    partition:
        ``(start, end)`` window during which agents cannot reach the
        collector at all (a full telemetry blackout; the master stays
        up and must enter degraded mode instead of isolating).
    massacre_window / massacre_nodes:
        Window during which the listed nodes' agents are dead — their
        records vanish and their leases expire, blinding the master to
        half the job while the job itself stays healthy.
    snapshot_interval / heartbeat_interval / lease_seconds:
        Periodic-snapshot cadence, agent keep-alive cadence, and lease
        TTL.
    """

    kill_at: Optional[float] = None
    recover_at: Optional[float] = None
    failover: bool = False
    stale_poke_at: Optional[float] = None
    partition: Optional[tuple[float, float]] = None
    massacre_window: Optional[tuple[float, float]] = None
    massacre_nodes: tuple[int, ...] = ()
    snapshot_interval: float = 60.0
    heartbeat_interval: float = 10.0
    lease_seconds: float = 30.0
    degraded_coverage_threshold: float = 0.6
    dedup_window: float = 900.0


#: Detector hardening used by default in chaos runs: debounce over two
#: consecutive evaluations, ten-minute per-node action hysteresis, and
#: slow-threshold hysteresis — the configuration the acceptance
#: criteria (precision >= 0.9, zero isolation storms) are scored with.
HARDENED_DETECTORS = DetectorConfig(
    hang_timeout=30.0,
    debounce_evaluations=2,
    node_action_cooldown=600.0,
    slow_hysteresis=0.8,
)


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded adversarial run."""

    name: str
    seed: int
    kind: ScenarioKind = ScenarioKind.PIPELINE
    #: Nodes participating in the monitored job (one rank per node).
    job_nodes: int = 8
    #: Spare nodes available to the steering service.
    backup_nodes: int = 2
    duration: float = 1800.0
    step_seconds: float = 5.0
    #: Injected ground truth.
    faults: tuple[FaultEvent, ...] = ()
    #: Telemetry unreliability (None = perfect channel).
    channel: Optional[ChannelConfig] = None
    detector: DetectorConfig = field(default_factory=lambda: HARDENED_DETECTORS)
    steering: SteeringConfig = field(
        default_factory=lambda: SteeringConfig(isolation_seconds=60.0, restart_seconds=120.0)
    )
    steering_faults: Optional[SteeringFaultModel] = None
    #: How often the master evaluates, in simulated seconds.
    evaluation_interval: float = 10.0
    #: RECOVERY kind: snapshots corrupted before restore.
    corrupt_newest: int = 0
    #: FABRIC kind: the fault schedule and judging knobs.
    fabric: Optional[FabricPlan] = None
    #: CONTROLPLANE kind: the master/telemetry fault schedule.
    controlplane: Optional[ControlPlanePlan] = None

    @property
    def episodes(self) -> tuple[Episode, ...]:
        """Ground-truth episodes derived from the fault plan."""
        return episodes_from_faults(self.faults)


# ----------------------------------------------------------------------
# Scenario factories
# ----------------------------------------------------------------------
def flapping_scenario(
    seed: int,
    episodes: int = 2,
    drop_rate: float = 0.10,
    job_nodes: int = 8,
    duration: float = 1800.0,
) -> ChaosScenario:
    """Flapping hosts under lossy telemetry — the acceptance scenario."""
    injector = FaultInjector(seed=seed)
    faults = tuple(
        injector.sample_flapping(
            duration_seconds=duration * 0.6,
            num_nodes=job_nodes,
            episodes=episodes,
            mean_active_seconds=240.0,
            mean_quiet_seconds=120.0,
            max_recurrences=3,
        )
    )
    return ChaosScenario(
        name=f"flapping[s{seed}]",
        seed=seed,
        job_nodes=job_nodes,
        duration=duration,
        faults=faults,
        channel=ChannelConfig(drop_rate=drop_rate, duplicate_rate=0.05),
    )


def cascade_scenario(
    seed: int,
    group_size: int = 3,
    job_nodes: int = 8,
    duration: float = 1500.0,
) -> ChaosScenario:
    """A correlated ToR-style cascade degrading a contiguous node group."""
    injector = FaultInjector(seed=seed)
    faults = tuple(
        injector.sample_cascades(
            duration_seconds=duration * 0.5,
            num_nodes=job_nodes,
            cascades=1,
            group_size=group_size,
            mean_active_seconds=600.0,
        )
    )
    return ChaosScenario(
        name=f"cascade[s{seed}]",
        seed=seed,
        job_nodes=job_nodes,
        backup_nodes=group_size,
        duration=duration,
        faults=faults,
        channel=ChannelConfig(drop_rate=0.05, duplicate_rate=0.05),
    )


def crash_under_loss_scenario(
    seed: int,
    drop_rate: float = 0.10,
    job_nodes: int = 8,
    duration: float = 1200.0,
) -> ChaosScenario:
    """A hard worker crash with degraded steering under lossy telemetry."""
    injector = FaultInjector(seed=seed)
    victim = int(injector.pick_victims(list(range(job_nodes)), 1)[0])
    onset = 60.0 + (seed % 5) * 30.0
    crash = FaultEvent(
        time=onset,
        fault_type=FaultType.CUDA_ERROR,
        fault_class=FaultClass.CRASH,
        is_local=True,
        component=victim,
    )
    return ChaosScenario(
        name=f"crash[s{seed}]",
        seed=seed,
        job_nodes=job_nodes,
        duration=duration,
        faults=(crash,),
        channel=ChannelConfig(drop_rate=drop_rate, duplicate_rate=0.05),
        steering_faults=SteeringFaultModel(
            isolation_failure_rate=0.3, replacement_doa_rate=0.2, seed=seed
        ),
    )


def checkpoint_corruption_scenario(seed: int, corrupt_newest: int = 1) -> ChaosScenario:
    """A crash whose newest snapshot(s) are corrupted at restore time."""
    injector = FaultInjector(seed=seed)
    victim = int(injector.pick_victims(list(range(4)), 1)[0])
    crash = FaultEvent(
        time=40.0,
        fault_type=FaultType.ECC_NVLINK_ERROR,
        fault_class=FaultClass.CRASH,
        is_local=True,
        component=victim,
    )
    return ChaosScenario(
        name=f"ckpt-corruption[s{seed}]",
        seed=seed,
        kind=ScenarioKind.RECOVERY,
        job_nodes=4,
        duration=800.0,
        faults=(crash,),
        corrupt_newest=corrupt_newest,
    )


# ----------------------------------------------------------------------
# Fabric (C4P) scenario factories
# ----------------------------------------------------------------------
def link_down_scenario(seed: int, duration: float = 300.0) -> ChaosScenario:
    """Mid-job leaf-spine link death with out-of-band notification (Fig. 12).

    The acceptance scenario for drain-and-migrate: every QP on the dead
    link must be on a healthy route within the migration deadline.
    """
    spec = TESTBED_16_NODES
    rail = seed % spec.rails
    link = ClusterTopology.leaf_up(
        rail, seed % 2, seed % spec.spines_per_rail, seed % spec.uplink_ports_per_spine
    )
    plan = FabricPlan(
        events=(FabricEvent(time=60.0, action="down", links=(link,)),),
        migration_deadline=20.0,
        nic=rail,
    )
    return ChaosScenario(
        name=f"link-down[s{seed}]",
        seed=seed,
        kind=ScenarioKind.FABRIC,
        duration=duration,
        fabric=plan,
    )


def flapping_link_scenario(seed: int, duration: float = 400.0) -> ChaosScenario:
    """Two links flapping out of phase (Fig. 13's adversarial cousin).

    When link A dies while link B is in its quiet half, B is exactly
    where a naive master would migrate A's QPs — the hold-down must keep
    both links out of the pool until they stop flapping.  The guard
    window runs from the first failure to the last hold-down expiry
    (failures at 60/110/160 and 80/130/180 escalate 30 s → 60 s → 120 s
    under the default :class:`LinkHealthConfig`).
    """
    spec = TESTBED_16_NODES
    rail = seed % spec.rails
    link_a = ClusterTopology.leaf_up(
        rail, 0, seed % spec.spines_per_rail, seed % spec.uplink_ports_per_spine
    )
    link_b = ClusterTopology.leaf_up(
        rail,
        1,
        (seed + 3) % spec.spines_per_rail,
        (seed + 1) % spec.uplink_ports_per_spine,
    )
    events = []
    for link, start in [
        (link_a, 60.0), (link_b, 80.0), (link_a, 110.0),
        (link_b, 130.0), (link_a, 160.0), (link_b, 180.0),
    ]:
        events.append(FabricEvent(time=start, action="down", links=(link,)))
        events.append(FabricEvent(time=start + 15.0, action="up", links=(link,)))
    plan = FabricPlan(
        events=tuple(events),
        migration_deadline=20.0,
        # Hold-downs escalate 30 -> 60 -> 120: A's expires at 160 + 120
        # = 280, B's at 180 + 120 = 300.
        flap_guards=((link_a, 61.0, 280.0), (link_b, 81.0, 300.0)),
        nic=rail,
    )
    return ChaosScenario(
        name=f"flapping-link[s{seed}]",
        seed=seed,
        kind=ScenarioKind.FABRIC,
        duration=duration,
        fabric=plan,
    )


def spine_maintenance_scenario(seed: int, duration: float = 300.0) -> ChaosScenario:
    """A whole spine silently taken down (unannounced maintenance).

    No notification reaches the master — detection must come from the
    periodic incremental re-probe, so the migration deadline allows for
    one re-probe interval of blindness.
    """
    spec = TESTBED_16_NODES
    rail = seed % spec.rails
    spine = seed % spec.spines_per_rail
    plan = FabricPlan(
        events=(
            FabricEvent(
                time=60.0,
                action="down",
                links=spine_fabric_links(spec, rail, spine),
                notify=False,
            ),
        ),
        migration_deadline=40.0,
        reprobe_interval=15.0,
        nic=rail,
    )
    return ChaosScenario(
        name=f"spine-maintenance[s{seed}]",
        seed=seed,
        kind=ScenarioKind.FABRIC,
        duration=duration,
        fabric=plan,
    )


def dual_plane_scenario(seed: int, duration: float = 300.0) -> ChaosScenario:
    """Correlated failures on *both* planes at the same instant.

    The drain must keep every migrated QP in its original plane (left
    victims re-placed on left routes, right on right) even though both
    planes are degraded simultaneously.
    """
    spec = TESTBED_16_NODES
    rail = seed % spec.rails
    link_left = ClusterTopology.leaf_up(
        rail, 0, seed % spec.spines_per_rail, seed % spec.uplink_ports_per_spine
    )
    link_right = ClusterTopology.leaf_up(
        rail,
        1,
        (seed + 5) % spec.spines_per_rail,
        (seed + 2) % spec.uplink_ports_per_spine,
    )
    plan = FabricPlan(
        events=(
            FabricEvent(time=60.0, action="down", links=(link_left, link_right)),
        ),
        migration_deadline=20.0,
        nic=rail,
    )
    return ChaosScenario(
        name=f"dual-plane[s{seed}]",
        seed=seed,
        kind=ScenarioKind.FABRIC,
        duration=duration,
        fabric=plan,
    )


# ----------------------------------------------------------------------
# Control-plane scenario factories
# ----------------------------------------------------------------------
def _crash(time: float, victim: int) -> FaultEvent:
    return FaultEvent(
        time=time,
        fault_type=FaultType.CUDA_ERROR,
        fault_class=FaultClass.CRASH,
        is_local=True,
        component=victim,
    )


def master_kill_scenario(seed: int, duration: float = 900.0) -> ChaosScenario:
    """The C4D master dies mid-campaign and restarts from its journal.

    One worker crash lands before the kill (its verdict and isolation
    are in the journal) and one after the recovery (post-recovery recall
    must match the no-kill baseline).  The acceptance criteria: the
    recovered state digest equals the pre-kill digest, and no steering
    action is ever executed twice for the same fault.
    """
    injector = FaultInjector(seed=seed)
    victims = [int(v) for v in injector.pick_victims(list(range(8)), 2)]
    plan = ControlPlanePlan(kill_at=397.3, recover_at=457.9)
    return ChaosScenario(
        name=f"master-kill[s{seed}]",
        seed=seed,
        kind=ScenarioKind.CONTROLPLANE,
        job_nodes=8,
        backup_nodes=2,
        duration=duration,
        faults=(_crash(60.3, victims[0]), _crash(600.3, victims[1])),
        controlplane=plan,
    )


def failover_scenario(seed: int, duration: float = 900.0) -> ChaosScenario:
    """A warm standby is promoted while the old primary still runs.

    Identical fault plan to :func:`master_kill_scenario`, but recovery
    promotes a pre-built standby sharing the journal store, and the
    fenced-out old primary pokes the journal after the promotion — the
    zombie write that epoch fencing exists to reject.
    """
    injector = FaultInjector(seed=seed)
    victims = [int(v) for v in injector.pick_victims(list(range(8)), 2)]
    plan = ControlPlanePlan(
        kill_at=397.3, recover_at=457.9, failover=True, stale_poke_at=465.2
    )
    return ChaosScenario(
        name=f"failover[s{seed}]",
        seed=seed,
        kind=ScenarioKind.CONTROLPLANE,
        job_nodes=8,
        backup_nodes=2,
        duration=duration,
        faults=(_crash(60.3, victims[0]), _crash(600.3, victims[1])),
        controlplane=plan,
    )


def collector_partition_scenario(seed: int, duration: float = 720.0) -> ChaosScenario:
    """Agents partitioned from the collector: a total telemetry blackout.

    The master stays up and keeps evaluating while every record and
    heartbeat is cut off for two minutes.  The cluster is healthy the
    whole time — so every isolation during the blackout would destroy
    good capacity.  Lease expiry must drive coverage below the degraded
    threshold and suppress the (inevitable) hang verdicts; on heal, the
    agents backfill their buffered records and detection resumes.
    """
    injector = FaultInjector(seed=seed)
    victim = int(injector.pick_victims(list(range(8)), 1)[0])
    plan = ControlPlanePlan(partition=(300.7, 420.7))
    return ChaosScenario(
        name=f"collector-partition[s{seed}]",
        seed=seed,
        kind=ScenarioKind.CONTROLPLANE,
        job_nodes=8,
        backup_nodes=2,
        duration=duration,
        faults=(_crash(60.3, victim),),
        controlplane=plan,
    )


def agent_massacre_scenario(seed: int, duration: float = 900.0) -> ChaosScenario:
    """Half the agents die; their nodes go dark while staying healthy.

    Four of eight agents are killed for two hundred seconds — coverage
    drops to 0.5 (below the 0.6 threshold) and the dark nodes look
    exactly like crashed workers.  Degraded mode must hold fire for the
    whole window; after the agents revive, a real crash on a node that
    stayed covered must still be caught.
    """
    injector = FaultInjector(seed=seed)
    massacred = tuple(int(v) for v in sorted(injector.pick_victims(list(range(8)), 4)))
    survivors = [n for n in range(8) if n not in massacred]
    victim = int(injector.pick_victims(survivors, 1)[0])
    plan = ControlPlanePlan(
        massacre_window=(200.3, 400.7), massacre_nodes=massacred
    )
    return ChaosScenario(
        name=f"agent-massacre[s{seed}]",
        seed=seed,
        kind=ScenarioKind.CONTROLPLANE,
        job_nodes=8,
        backup_nodes=2,
        duration=duration,
        faults=(_crash(500.3, victim),),
        controlplane=plan,
    )


def default_campaign(seed: int = 0) -> list[ChaosScenario]:
    """The standard mixed campaign: node, recovery, fabric and master faults."""
    return [
        flapping_scenario(seed),
        flapping_scenario(seed + 1),
        cascade_scenario(seed + 2),
        crash_under_loss_scenario(seed + 3),
        checkpoint_corruption_scenario(seed + 4),
        link_down_scenario(seed + 5),
        flapping_link_scenario(seed + 6),
        spine_maintenance_scenario(seed + 7),
        dual_plane_scenario(seed + 8),
        master_kill_scenario(seed + 9),
        failover_scenario(seed + 10),
        collector_partition_scenario(seed + 11),
        agent_massacre_scenario(seed + 12),
    ]
