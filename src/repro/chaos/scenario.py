"""Chaos scenario definitions: seeded adversarial campaigns with ground truth.

A scenario bundles everything one adversarial run needs — the fault
plan (the *ground truth* the scorecard judges against), the telemetry
unreliability model, and the detector/steering hardening knobs.  Two
scenario kinds exist:

* ``PIPELINE`` — drives the full detect→steer pipeline: a synthetic
  monitored workload emits real monitoring records through a lossy
  channel into the central collector, the (debounced) C4D master
  evaluates periodically, and the hardened steering service isolates
  and replaces nodes;
* ``RECOVERY`` — drives the full crash→restore pipeline on the real
  :class:`~repro.training.recovery.RecoveryOrchestrator`, with
  checkpoint corruption injected so restore must fall back through the
  snapshot chain.

Scenario factories derive every stochastic choice from the scenario
seed, so a campaign is reproducible end to end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.faults import FaultClass, FaultEvent, FaultInjector, FaultType
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.steering import SteeringConfig, SteeringFaultModel
from repro.telemetry.unreliable import ChannelConfig


class ScenarioKind(enum.Enum):
    """Which pipeline the scenario exercises."""

    PIPELINE = "pipeline"  # detect -> steer on the synthetic feed
    RECOVERY = "recovery"  # crash -> checkpoint-restore on the orchestrator


@dataclass(frozen=True)
class Episode:
    """One ground-truth fault episode the pipeline should handle.

    ``windows`` are the (start, end) intervals during which the fault
    degrades its victims; ``end`` is ``inf`` for permanent faults.  A
    flapping fault is one episode with several windows; a cascade is one
    episode with several nodes.
    """

    episode_id: str
    nodes: tuple[int, ...]
    windows: tuple[tuple[float, float], ...]
    kind: str

    @property
    def onset(self) -> float:
        """First moment the fault is active."""
        return min(start for start, _end in self.windows)

    def active_at(self, now: float, grace: float = 0.0) -> bool:
        """True while any window (stretched by ``grace``) covers ``now``."""
        return any(start <= now <= end + grace for start, end in self.windows)

    def covers_node(self, node: int) -> bool:
        """True when the episode degrades ``node``."""
        return node in self.nodes


def episodes_from_faults(faults: tuple[FaultEvent, ...]) -> tuple[Episode, ...]:
    """Group injected fault events into scoreable ground-truth episodes.

    Events sharing an ``episode_id`` (flapping recurrences) merge into
    one multi-window episode; events sharing a ``cascade_id`` merge into
    one multi-node episode; everything else is its own episode.
    """
    groups: dict[str, list[FaultEvent]] = {}
    for index, event in enumerate(faults):
        if event.episode_id is not None:
            key = f"flap{event.episode_id}"
        elif event.cascade_id is not None:
            key = f"cascade{event.cascade_id}"
        else:
            key = f"single{index}"
        groups.setdefault(key, []).append(event)
    episodes = []
    for key, events in groups.items():
        nodes = tuple(sorted({e.component for e in events if e.component is not None}))
        windows = tuple(
            sorted(
                (e.time, e.end_time if e.end_time is not None else float("inf"))
                for e in events
            )
        )
        episodes.append(
            Episode(
                episode_id=key,
                nodes=nodes,
                windows=windows,
                kind=events[0].fault_type.value,
            )
        )
    return tuple(sorted(episodes, key=lambda e: e.onset))


#: Detector hardening used by default in chaos runs: debounce over two
#: consecutive evaluations, ten-minute per-node action hysteresis, and
#: slow-threshold hysteresis — the configuration the acceptance
#: criteria (precision >= 0.9, zero isolation storms) are scored with.
HARDENED_DETECTORS = DetectorConfig(
    hang_timeout=30.0,
    debounce_evaluations=2,
    node_action_cooldown=600.0,
    slow_hysteresis=0.8,
)


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded adversarial run."""

    name: str
    seed: int
    kind: ScenarioKind = ScenarioKind.PIPELINE
    #: Nodes participating in the monitored job (one rank per node).
    job_nodes: int = 8
    #: Spare nodes available to the steering service.
    backup_nodes: int = 2
    duration: float = 1800.0
    step_seconds: float = 5.0
    #: Injected ground truth.
    faults: tuple[FaultEvent, ...] = ()
    #: Telemetry unreliability (None = perfect channel).
    channel: Optional[ChannelConfig] = None
    detector: DetectorConfig = field(default_factory=lambda: HARDENED_DETECTORS)
    steering: SteeringConfig = field(
        default_factory=lambda: SteeringConfig(isolation_seconds=60.0, restart_seconds=120.0)
    )
    steering_faults: Optional[SteeringFaultModel] = None
    #: How often the master evaluates, in simulated seconds.
    evaluation_interval: float = 10.0
    #: RECOVERY kind: snapshots corrupted before restore.
    corrupt_newest: int = 0

    @property
    def episodes(self) -> tuple[Episode, ...]:
        """Ground-truth episodes derived from the fault plan."""
        return episodes_from_faults(self.faults)


# ----------------------------------------------------------------------
# Scenario factories
# ----------------------------------------------------------------------
def flapping_scenario(
    seed: int,
    episodes: int = 2,
    drop_rate: float = 0.10,
    job_nodes: int = 8,
    duration: float = 1800.0,
) -> ChaosScenario:
    """Flapping hosts under lossy telemetry — the acceptance scenario."""
    injector = FaultInjector(seed=seed)
    faults = tuple(
        injector.sample_flapping(
            duration_seconds=duration * 0.6,
            num_nodes=job_nodes,
            episodes=episodes,
            mean_active_seconds=240.0,
            mean_quiet_seconds=120.0,
            max_recurrences=3,
        )
    )
    return ChaosScenario(
        name=f"flapping[s{seed}]",
        seed=seed,
        job_nodes=job_nodes,
        duration=duration,
        faults=faults,
        channel=ChannelConfig(drop_rate=drop_rate, duplicate_rate=0.05),
    )


def cascade_scenario(
    seed: int,
    group_size: int = 3,
    job_nodes: int = 8,
    duration: float = 1500.0,
) -> ChaosScenario:
    """A correlated ToR-style cascade degrading a contiguous node group."""
    injector = FaultInjector(seed=seed)
    faults = tuple(
        injector.sample_cascades(
            duration_seconds=duration * 0.5,
            num_nodes=job_nodes,
            cascades=1,
            group_size=group_size,
            mean_active_seconds=600.0,
        )
    )
    return ChaosScenario(
        name=f"cascade[s{seed}]",
        seed=seed,
        job_nodes=job_nodes,
        backup_nodes=group_size,
        duration=duration,
        faults=faults,
        channel=ChannelConfig(drop_rate=0.05, duplicate_rate=0.05),
    )


def crash_under_loss_scenario(
    seed: int,
    drop_rate: float = 0.10,
    job_nodes: int = 8,
    duration: float = 1200.0,
) -> ChaosScenario:
    """A hard worker crash with degraded steering under lossy telemetry."""
    injector = FaultInjector(seed=seed)
    victim = int(injector.pick_victims(list(range(job_nodes)), 1)[0])
    onset = 60.0 + (seed % 5) * 30.0
    crash = FaultEvent(
        time=onset,
        fault_type=FaultType.CUDA_ERROR,
        fault_class=FaultClass.CRASH,
        is_local=True,
        component=victim,
    )
    return ChaosScenario(
        name=f"crash[s{seed}]",
        seed=seed,
        job_nodes=job_nodes,
        duration=duration,
        faults=(crash,),
        channel=ChannelConfig(drop_rate=drop_rate, duplicate_rate=0.05),
        steering_faults=SteeringFaultModel(
            isolation_failure_rate=0.3, replacement_doa_rate=0.2, seed=seed
        ),
    )


def checkpoint_corruption_scenario(seed: int, corrupt_newest: int = 1) -> ChaosScenario:
    """A crash whose newest snapshot(s) are corrupted at restore time."""
    injector = FaultInjector(seed=seed)
    victim = int(injector.pick_victims(list(range(4)), 1)[0])
    crash = FaultEvent(
        time=40.0,
        fault_type=FaultType.ECC_NVLINK_ERROR,
        fault_class=FaultClass.CRASH,
        is_local=True,
        component=victim,
    )
    return ChaosScenario(
        name=f"ckpt-corruption[s{seed}]",
        seed=seed,
        kind=ScenarioKind.RECOVERY,
        job_nodes=4,
        duration=800.0,
        faults=(crash,),
        corrupt_newest=corrupt_newest,
    )


def default_campaign(seed: int = 0) -> list[ChaosScenario]:
    """The standard mixed campaign: flapping, cascade, crash, corruption."""
    return [
        flapping_scenario(seed),
        flapping_scenario(seed + 1),
        cascade_scenario(seed + 2),
        crash_under_loss_scenario(seed + 3),
        checkpoint_corruption_scenario(seed + 4),
    ]
