"""The chaos campaign runner: seeded adversarial runs, scored end to end.

:class:`ChaosCampaign` executes a list of
:class:`~repro.chaos.scenario.ChaosScenario` definitions and judges each
run against its injected ground truth.  Nothing in the execution path is
mocked:

* **PIPELINE** scenarios build a real cluster topology, a real central
  collector fed through the (optionally lossy)
  :class:`~repro.telemetry.unreliable.UnreliableChannel`, the real
  debounced :class:`~repro.core.c4d.master.C4DMaster`, and the real
  hardened :class:`~repro.core.c4d.steering.JobSteeringService`.  A
  :class:`~repro.chaos.workload.SyntheticFeed` plays the monitored job;
  the campaign closes the loop by tearing the incarnation down when
  steering acts and relaunching on the survivors plus replacements at
  ``ready_at``.
* **RECOVERY** scenarios run the full
  :class:`~repro.training.recovery.RecoveryOrchestrator` on the 16-node
  testbed, with checkpoint corruption injected right before the crash so
  restore must walk the snapshot fallback chain.

Every stochastic choice derives from scenario seeds, so a campaign's
scorecard is reproducible bit for bit.
"""

from __future__ import annotations

import logging
from typing import Optional, Sequence

from repro.chaos.scenario import ChaosScenario, ScenarioKind, default_campaign
from repro.chaos.scorecard import (
    DEFAULT_GRACE,
    CampaignScorecard,
    ScenarioScorecard,
    score_pipeline_scenario,
    score_recovery_scenario,
)
from repro.chaos.workload import SyntheticFeed
from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.steering import JobSteeringService
from repro.netsim.network import FlowNetwork
from repro.obs.report import ObservabilityPlane
from repro.obs.trace import FaultTracer
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.telemetry.unreliable import UnreliableChannel
from repro.training.job import JobSpec
from repro.training.memory_checkpoint import InMemoryCheckpointer
from repro.training.models import GPT_22B
from repro.training.parallelism import ParallelismPlan
from repro.training.recovery import RecoveryOrchestrator
from repro.training.scheduler import ClusterScheduler
from repro.workloads.generator import build_cluster

logger = logging.getLogger(__name__)


class ChaosCampaign:
    """Run seeded adversarial scenarios and score the pipeline.

    Parameters
    ----------
    scenarios:
        Scenario list; ``None`` uses :func:`default_campaign`.
    seed:
        Base seed for the default campaign (ignored when ``scenarios``
        is given).
    grace:
        Seconds past an episode window's end during which a detection
        still counts as true.
    observability:
        The :class:`~repro.obs.report.ObservabilityPlane` receiving this
        campaign's metrics and fault spans.  ``None`` creates a private
        plane, so every campaign is observable by default; read
        ``campaign.obs.snapshot()`` after :meth:`run`.
    """

    def __init__(
        self,
        scenarios: Optional[Sequence[ChaosScenario]] = None,
        seed: int = 0,
        grace: float = DEFAULT_GRACE,
        observability: Optional[ObservabilityPlane] = None,
    ) -> None:
        self.scenarios = (
            list(scenarios) if scenarios is not None else default_campaign(seed)
        )
        self.grace = grace
        self.obs = observability if observability is not None else ObservabilityPlane()

    def run(self) -> CampaignScorecard:
        """Execute every scenario; returns the aggregate scorecard."""
        cards = []
        for scenario in self.scenarios:
            logger.info("chaos scenario %s starting", scenario.name)
            card = self.run_scenario(scenario)
            logger.info(
                "chaos scenario %s: precision=%.2f recall=%.2f storms=%d",
                scenario.name,
                card.precision,
                card.recall,
                card.isolation_storms,
            )
            cards.append(card)
        return CampaignScorecard(scenarios=tuple(cards))

    def run_scenario(self, scenario: ChaosScenario) -> ScenarioScorecard:
        """Execute one scenario of any kind."""
        # Each scenario gets a private tracer — scenarios reuse node ids
        # and each has its own simulated clock, so victim matching must
        # never cross scenario boundaries.  The finished tracer is then
        # folded into the campaign-wide plane (metrics were shared all
        # along through self.obs.registry).
        tracer = FaultTracer(metrics=self.obs.registry, grace=self.grace)
        if scenario.kind is ScenarioKind.RECOVERY:
            card = self._run_recovery(scenario, tracer)
        elif scenario.kind is ScenarioKind.FABRIC:
            from repro.chaos.fabric import run_fabric_scenario

            card = run_fabric_scenario(
                scenario, metrics=self.obs.registry, tracer=tracer
            )
        elif scenario.kind is ScenarioKind.CONTROLPLANE:
            from repro.chaos.controlplane import run_controlplane_scenario

            card = run_controlplane_scenario(
                scenario, metrics=self.obs.registry, tracer=tracer, grace=self.grace
            )
        else:
            card = self._run_pipeline(scenario, tracer)
        self.obs.tracer.absorb(tracer)
        return card

    def _register_episodes(
        self, scenario: ChaosScenario, tracer: FaultTracer
    ) -> None:
        """Open one fault span per ground-truth episode."""
        for episode in scenario.episodes:
            tracer.register_fault(
                f"{scenario.name}/{episode.episode_id}",
                kind=episode.kind,
                victims=episode.nodes,
                injected_at=episode.onset,
                windows=episode.windows,
            )

    # ------------------------------------------------------------------
    # PIPELINE: synthetic feed -> lossy channel -> master -> steering
    # ------------------------------------------------------------------
    def _run_pipeline(
        self, scenario: ChaosScenario, tracer: FaultTracer
    ) -> ScenarioScorecard:
        registry = self.obs.registry
        network = FlowNetwork(metrics=registry)
        spec = ClusterSpec(num_nodes=scenario.job_nodes + scenario.backup_nodes)
        topology = ClusterTopology(spec, network, ecmp_seed=scenario.seed)
        collector = CentralCollector(metrics=registry)
        channel = (
            UnreliableChannel(network, scenario.channel, seed=scenario.seed)
            if scenario.channel is not None
            else None
        )
        plane = AgentPlane(collector, network=network, channel=channel, metrics=registry)
        backups = list(range(scenario.job_nodes, spec.num_nodes))
        steering = JobSteeringService(
            topology,
            backup_nodes=backups,
            config=scenario.steering,
            faults=scenario.steering_faults,
            metrics=registry,
        )
        master = C4DMaster(
            collector, scenario.detector, steering=steering, metrics=registry,
            tracer=tracer,
        )
        self._register_episodes(scenario, tracer)
        feed = SyntheticFeed(
            network,
            plane,
            nodes=range(scenario.job_nodes),
            faults=scenario.faults,
            step_seconds=scenario.step_seconds,
            seed=scenario.seed,
        )
        feed.symptom_observer = tracer.observe_symptom

        # Closing the loop: when steering acts, the current incarnation
        # is torn down, its communicator deregistered (straggler records
        # still in flight are discarded), and the job relaunches on the
        # survivors plus replacements once the action completes.
        state = {"nodes": list(feed.nodes), "token": 0, "seen": 0}

        def handle_action(action) -> None:
            removed = set(action.isolated_nodes)
            state["nodes"] = [
                n for n in state["nodes"] if n not in removed
            ] + list(action.replacement_nodes)
            old_comm = feed.comm_id
            feed.halt()
            collector.drop_communicator(old_comm)
            state["token"] += 1
            token = state["token"]

            def relaunch() -> None:
                # Superseded by a newer action's relaunch plan.
                if token == state["token"] and state["nodes"]:
                    feed.relaunch(state["nodes"])

            # A hair past ready_at: steering latencies and the master's
            # evaluation grid are both round numbers, so an exact-ready_at
            # relaunch ties with an evaluation tick — whether the relaunch
            # registration (and the feed grid it anchors) lands before or
            # after that evaluation would then hinge on timer tie-breaking
            # alone (a racecheck divergence).
            network.schedule(max(0.0, action.ready_at - network.now) + 1e-3, relaunch)

        def tick() -> None:
            master.evaluate(network.now)
            while state["seen"] < len(steering.actions):
                handle_action(steering.actions[state["seen"]])
                state["seen"] += 1
            if network.now + scenario.evaluation_interval <= scenario.duration:
                network.schedule(scenario.evaluation_interval, tick)

        feed.start()
        # The evaluation grid is phase-shifted off the feed's step grid
        # (both are round numbers, so exact-interval ticks would share
        # instants with step emission): whether an evaluation — and the
        # steering halt it can trigger — lands before or after a
        # same-instant step must not depend on timer tie-breaking.  The
        # master evaluates a fraction of a step after each interval, as a
        # control plane asynchronous to the data path would.
        network.schedule(
            scenario.evaluation_interval + 0.1 * scenario.step_seconds, tick
        )
        network.run(until=scenario.duration)
        return score_pipeline_scenario(
            scenario,
            steering.actions,
            channel_stats=channel.stats() if channel is not None else None,
            steps_completed=feed.steps_completed,
            relaunches=feed.relaunches,
            grace=self.grace,
        )

    # ------------------------------------------------------------------
    # RECOVERY: crash -> detect -> isolate -> checkpoint fallback chain
    # ------------------------------------------------------------------
    def _run_recovery(
        self, scenario: ChaosScenario, tracer: FaultTracer
    ) -> ScenarioScorecard:
        self._register_episodes(scenario, tracer)
        cluster = build_cluster(ecmp_seed=scenario.seed)
        scheduler = ClusterScheduler(cluster.topology, backup_ratio=1 / 16)
        checkpointer = InMemoryCheckpointer(
            interval_steps=2, save_seconds=0.1, capacity=4
        )
        orchestrator = RecoveryOrchestrator(
            cluster.topology,
            scheduler,
            JobSpec(
                "chaos", GPT_22B, ParallelismPlan(tp=8, dp=4), global_batch=64
            ),
            detector_config=scenario.detector,
            steering_config=scenario.steering,
            checkpointer=checkpointer,
            evaluation_interval=scenario.evaluation_interval,
            steering_faults=scenario.steering_faults,
        )
        report = orchestrator.start(num_nodes=scenario.job_nodes, total_steps=24)
        for event in scenario.faults:
            victim = event.component

            def strike(node=victim) -> None:
                if scenario.corrupt_newest:
                    corrupted = checkpointer.corrupt_latest(scenario.corrupt_newest)
                    logger.info(
                        "chaos: corrupted %d snapshot(s) before crash", corrupted
                    )
                orchestrator.crash_node(node)

            cluster.network.schedule(event.time, strike)
        cluster.network.run(until=scenario.duration)
        # The orchestrator's report carries the lifecycle the tracer
        # needs; replay it as detection/steer/recover stage observations.
        for event in report.events:
            tracer.detection(event.detected_at, event.isolated_nodes)
            tracer.action(
                event.detected_at, event.isolated_nodes, ready_at=event.resumed_at
            )
        return score_recovery_scenario(scenario, report, grace=self.grace)
