"""repro — a reproduction of "The C4 Solution" (HPCA 2025).

C4 (Calibrating Collective Communication over Converged Ethernet) is
Alibaba's production system for (1) real-time hardware-anomaly detection
in large-scale LLM training — C4D — and (2) cluster-scale traffic
engineering for collective communication — C4P.

This package rebuilds both subsystems on top of a simulated substrate:

* :mod:`repro.netsim` — flow-level fabric simulator (max-min fair rates,
  ECMP, DCQCN-style congestion, link failures),
* :mod:`repro.cluster` — Clos/Fat-Tree cluster model with dual-port NICs
  and a fault injector,
* :mod:`repro.collective` — an ACCL-like collective communication
  library with the paper's three-layer monitoring enhancement,
* :mod:`repro.telemetry` — the C4 agent / collector plane,
* :mod:`repro.training` — BSP training-job model (GPT/Llama configs,
  TP/PP/DP, checkpointing, month-scale lifetime Monte-Carlo),
* :mod:`repro.core.c4d` and :mod:`repro.core.c4p` — the paper's
  contribution,
* :mod:`repro.experiments` — one runner per table/figure (plus
  ablations), shared by the benchmark harness and the CLI
  (``python -m repro``),
* :mod:`repro.analysis` / :mod:`repro.workloads` — reporting/export and
  scenario builders used by the benchmark harness.

See ``DESIGN.md`` for the full system inventory and the experiment
index, and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
