"""Discrete-event primitives: a timer queue with stable ordering.

The network simulator advances time from one event to the next.  Events
are either *flow completions* (computed from current max-min rates) or
*timers* scheduled through this queue (link failures, congestion-control
ticks, application callbacks such as "start the next iteration").

Timers fire in (time, sequence) order so that two timers scheduled for
the same instant fire in scheduling order, which keeps runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class TimerHandle:
    """Handle returned by :meth:`EventQueue.schedule`; supports cancellation."""

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """Absolute simulated time at which the timer fires."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the timer fired."""
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self._entry.cancelled = True


class EventQueue:
    """Min-heap of timers with deterministic same-time ordering."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        #: Timers ever scheduled / fired (cheap counters the network's
        #: observability gauges read; cancellations count as neither).
        self.timers_scheduled = 0
        self.timers_fired = 0

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def depth(self) -> int:
        """Heap size including cancelled-but-unpopped entries (O(1)).

        Unlike ``len()`` this is safe to sample from a metrics gauge on
        every scrape: it measures the real memory/latency footprint of
        the heap without walking it.
        """
        return len(self._heap)

    def schedule(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to fire at absolute simulated ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule a timer at negative time {time}")
        entry = _Entry(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, entry)
        self.timers_scheduled += 1
        return TimerHandle(entry)

    def next_time(self) -> float | None:
        """Time of the earliest pending timer, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_due(self, now: float) -> list[Callable[[], None]]:
        """Remove and return callbacks of all timers due at or before ``now``.

        Callbacks are returned in firing order; the caller invokes them.
        """
        due: list[Callable[[], None]] = []
        while self._heap and self._heap[0].time <= now:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                due.append(entry.callback)
        self.timers_fired += len(due)
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
