"""Discrete-event primitives: a timer queue with stable ordering.

The network simulator advances time from one event to the next.  Events
are either *flow completions* (computed from current max-min rates) or
*timers* scheduled through this queue (link failures, congestion-control
ticks, application callbacks such as "start the next iteration").

Timers fire in (time, sequence) order so that two timers scheduled for
the same instant fire in scheduling order, which keeps runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class TimerHandle:
    """Handle returned by :meth:`EventQueue.schedule`; supports cancellation."""

    def __init__(self, entry: _Entry, queue: "EventQueue | None" = None) -> None:
        self._entry = entry
        self._queue = queue

    @property
    def time(self) -> float:
        """Absolute simulated time at which the timer fires."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the timer fired."""
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        if self._entry.cancelled:
            return
        if self._queue is not None:
            self._queue._note_cancel(self._entry)
        else:
            self._entry.cancelled = True


class EventQueue:
    """Min-heap of timers with deterministic same-time ordering.

    Cancellation is lazy — a cancelled entry stays in the heap, flagged,
    until popped — but the queue tracks how many dead entries it holds
    and compacts the heap once they are the majority, so workloads with
    heavy timer churn (long chaos campaigns cancelling thousands of
    hold-down/backoff timers) keep the heap proportional to the *live*
    timer count instead of growing unboundedly.
    """

    #: Heaps smaller than this are never compacted: rebuilds would cost
    #: more than the few dead entries they could reclaim.
    _COMPACT_MIN_HEAP = 64

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._cancelled_pending = 0
        #: Timers ever scheduled / fired (cheap counters the network's
        #: observability gauges read; cancellations count as neither).
        self.timers_scheduled = 0
        self.timers_fired = 0
        #: Times the lazy sweep rebuilt the heap (observability/tests).
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_pending

    def depth(self) -> int:
        """Heap size including cancelled-but-unpopped entries (O(1)).

        Unlike ``len()`` this is safe to sample from a metrics gauge on
        every scrape: it measures the real memory/latency footprint of
        the heap without walking it.
        """
        return len(self._heap)

    def schedule(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to fire at absolute simulated ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule a timer at negative time {time}")
        entry = _Entry(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, entry)
        self.timers_scheduled += 1
        return TimerHandle(entry, self)

    def next_time(self) -> float | None:
        """Time of the earliest pending timer, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_due(self, now: float) -> list[Callable[[], None]]:
        """Remove and return callbacks of all timers due at or before ``now``.

        Callbacks are returned in firing order; the caller invokes them.
        """
        due: list[Callable[[], None]] = []
        while self._heap and self._heap[0].time <= now:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                self._cancelled_pending -= 1
            else:
                due.append(entry.callback)
        self.timers_fired += len(due)
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1

    def _note_cancel(self, entry: _Entry) -> None:
        """Flag ``entry`` dead and compact the heap when the dead dominate.

        Rebuilding preserves ordering exactly: live entries keep their
        ``(time, seq)`` keys, so heapify reproduces the same firing order
        the lazy path would have produced.
        """
        entry.cancelled = True
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_HEAP
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0
            self.compactions += 1
