"""Fluid DCQCN-style congestion model: CNP accounting and sender throttling.

RoCEv2 NICs run DCQCN: congested switches ECN-mark packets, receivers
convert marks into Congestion Notification Packets (CNPs) back to the
senders, and senders multiplicatively decrease then gradually recover
their rate.  A fluid simulator has no packets, so we model the two
observable consequences the paper reports:

* **CNP counters** (Fig. 11): each saturated link generates CNPs for the
  flows crossing it at a rate proportional to the flow's share of the
  link — the constant is calibrated so a fully loaded 200 Gbps port under
  2:1 oversubscription yields the ~15k CNP/s per bonded port the paper
  measured.
* **Rate fluctuation** (Fig. 10b's 11.27 Gbps spread): senders receiving
  CNPs carry a multiplicative throttle that decays on congestion and
  recovers otherwise, with seeded stochastic gain, producing the band of
  effective bandwidths the paper attributes to DCQCN dynamics.

The model only engages on links that are genuine max-min bottlenecks
(utilization at capacity); an uncongested fabric — e.g. the 1:1
oversubscription runs where NVLink is the limit — generates no CNPs and
no throttling, matching the paper's observation that "the network's
capacity is underutilized, which results in an absence of queue buildup".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.flows import Flow


@dataclass
class CongestionConfig:
    """Tunables of the fluid DCQCN model.

    Attributes
    ----------
    cnp_per_bit:
        CNPs generated per ECN-marked bit.  Calibrated against Fig. 11's
        operating point — a bonded port driving the DCQCN oscillation
        around a saturated spine tier receives ~15,000 CNP/s (senders
        spend only part of each oscillation above the marking threshold,
        hence the constant exceeds the naive 15e3/350e9).
    saturation_threshold:
        Fraction of capacity above which a link counts as saturated.
    throttle_decrease:
        Mean multiplicative decrease applied per tick to flows crossing
        a saturated link.
    throttle_recover:
        Additive recovery per tick for unthrottled flows.
    throttle_floor:
        Lower bound of the throttle multiplier.
    jitter:
        Standard deviation of the stochastic component of the decrease,
        modelling the feedback-delay-driven oscillation of DCQCN.
    tick_interval:
        Seconds between congestion-control updates.
    """

    cnp_per_bit: float = 1.0e-7
    saturation_threshold: float = 0.999
    throttle_decrease: float = 0.06
    throttle_recover: float = 0.02
    throttle_floor: float = 0.7
    jitter: float = 0.35
    tick_interval: float = 0.01


@dataclass
class CongestionModel:
    """Tracks CNP counters and per-flow throttle multipliers.

    ``link_filter`` restricts congestion management to the links where
    DCQCN actually runs: it should return True for Ethernet fabric links
    and False for virtual stages such as NVLink (which is lossless and
    credit-based, not ECN-marked).  The cluster layer wires this up.
    """

    config: CongestionConfig = field(default_factory=CongestionConfig)
    seed: int = 0
    link_filter: object = None  # Optional[Callable[[object], bool]]

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        #: CNPs received, keyed by whatever the caller uses to identify a
        #: sender port (flows carry it in ``metadata["cnp_key"]``).
        self.cnp_counts: dict[object, float] = {}
        self._throttle: dict[object, float] = {}

    def _managed(self, link_id: object) -> bool:
        if self.link_filter is None:
            return True
        return bool(self.link_filter(link_id))

    @staticmethod
    def _state_key(flow: Flow) -> object:
        """Congestion-control state lives on the QP, not the transfer.

        Flows are per-operation, but DCQCN's rate state belongs to the
        long-lived QP; the transport stamps ``metadata["cc_key"]`` with
        the QP number so throttles persist across back-to-back
        collectives.  Flows without the stamp fall back to per-flow
        state.
        """
        return flow.metadata.get("cc_key", flow.flow_id)

    def throttle_of(self, flow: Flow) -> float:
        """Current multiplicative throttle for a flow (1.0 = unthrottled)."""
        return self._throttle.get(self._state_key(flow), 1.0)

    def observe(
        self,
        flows: list[Flow],
        rates: dict[object, float],
        capacities: dict[object, float],
        dt: float,
    ) -> None:
        """Account CNPs for an interval of length ``dt``.

        ``rates`` maps flow id to current rate, ``capacities`` maps link
        id to capacity; both come from the network's rate computation.
        """
        saturated = self._saturated_links(flows, rates, capacities)
        if not saturated:
            return
        for flow in flows:
            rate = rates.get(flow.flow_id, 0.0)
            if rate <= 0:
                continue
            # ECN marks once: a packet's CE bit is set at the first
            # congested queue and stays set, so CNP volume does not
            # multiply with the number of congested hops.
            if not any(link_id in saturated for link_id in flow.path):
                continue
            cnps = rate * dt * self.config.cnp_per_bit
            key = flow.metadata.get("cnp_key", flow.flow_id)
            self.cnp_counts[key] = self.cnp_counts.get(key, 0.0) + cnps

    def tick(self, flows: list[Flow], rates: dict[object, float], capacities: dict[object, float]) -> None:
        """Update per-flow throttles once per ``tick_interval``."""
        saturated = self._saturated_links(flows, rates, capacities)
        congested_keys: dict[object, bool] = {}
        for flow in flows:
            key = self._state_key(flow)
            on_congested_path = any(link_id in saturated for link_id in flow.path)
            congested_keys[key] = congested_keys.get(key, False) or on_congested_path
        for key, congested in congested_keys.items():
            current = self._throttle.get(key, 1.0)
            if congested:
                noise = max(0.0, 1.0 + self.config.jitter * self._rng.standard_normal())
                current *= 1.0 - self.config.throttle_decrease * noise
            else:
                current += self.config.throttle_recover
            self._throttle[key] = float(
                np.clip(current, self.config.throttle_floor, 1.0)
            )

    def forget(self, flow: Flow) -> None:
        """Drop ephemeral (per-flow-keyed) state once a flow completes.

        QP-keyed state is deliberately retained: the QP outlives the
        transfer.
        """
        if self._state_key(flow) is flow.flow_id:
            self._throttle.pop(flow.flow_id, None)

    def _saturated_links(
        self,
        flows: list[Flow],
        rates: dict[object, float],
        capacities: dict[object, float],
    ) -> set[object]:
        link_load: dict[object, float] = {}
        for flow in flows:
            rate = rates.get(flow.flow_id, 0.0)
            for link_id in flow.path:
                if self._managed(link_id):
                    link_load[link_id] = link_load.get(link_id, 0.0) + rate
        return {
            link_id
            for link_id, load in link_load.items()
            if load >= self.config.saturation_threshold * capacities[link_id]
        }
