"""Directed network links with capacity, state and traffic counters.

A link is the unit of bandwidth contention.  Every hop a flow traverses
(NIC port to leaf, leaf to spine, spine to leaf, leaf to NIC port, or an
intra-node NVLink stage) is one :class:`Link`.  Links accumulate byte
counters so experiments such as Fig. 13 of the paper (per-switch-port
bandwidth) can be read directly off the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LinkState(enum.Enum):
    """Operational state of a link."""

    UP = "up"
    DOWN = "down"


@dataclass
class Link:
    """A directed, fixed-capacity link.

    Parameters
    ----------
    link_id:
        Unique hashable identifier, e.g. ``("up", "leaf0", "spine3")``.
    capacity:
        Capacity in bits/s.  Must be positive.
    description:
        Optional human-readable label used in reports.
    """

    link_id: object
    capacity: float
    description: str = ""
    state: LinkState = LinkState.UP
    bits_carried: float = field(default=0.0, init=False)
    #: Windowed counter, reset by :meth:`reset_window`.  Used to compute
    #: per-port bandwidth over a sampling interval (Fig. 13).
    window_bits: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id!r} needs positive capacity, got {self.capacity}")

    @property
    def is_up(self) -> bool:
        """True when the link is operational."""
        return self.state == LinkState.UP

    def fail(self) -> None:
        """Take the link down; flows crossing it must be rerouted or stall."""
        self.state = LinkState.DOWN

    def restore(self) -> None:
        """Bring the link back up."""
        self.state = LinkState.UP

    def account(self, bits: float) -> None:
        """Accumulate ``bits`` of carried traffic into both counters."""
        self.bits_carried += bits
        self.window_bits += bits

    def reset_window(self) -> None:
        """Zero the windowed counter (start of a new sampling interval)."""
        self.window_bits = 0.0

    def window_rate(self, window_seconds: float) -> float:
        """Average rate in bits/s over the current window."""
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        return self.window_bits / window_seconds
