"""Deterministic ECMP hashing.

Switches in the modelled fabric pick among equal-cost next hops by
hashing the flow's five-tuple.  Production switches use proprietary hash
functions; what matters for reproduction is that the choice is

* deterministic for a given five-tuple (flows do not flap),
* effectively uniform across tuples (so collisions follow the
  birthday-paradox statistics the paper's Fig. 3 exhibits), and
* sensitive to the UDP source port (so C4P can steer a flow onto a
  chosen path purely by picking the source port, exactly as the real
  system does for RoCEv2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class FiveTuple:
    """The fields an ECMP hash consumes for a RoCEv2 (UDP) flow."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = 17  # UDP, as used by RoCEv2


class EcmpHasher:
    """Hash five-tuples onto next-hop indices.

    Parameters
    ----------
    seed:
        Per-fabric salt.  Different seeds model different switch hash
        configurations; sweeping seeds gives the baseline variance of
        ECMP experiments.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The fabric-wide hash salt."""
        return self._seed

    def hash_value(self, five_tuple: FiveTuple, stage: str = "") -> int:
        """Raw 64-bit hash of a five-tuple.

        ``stage`` decorrelates decisions made at different switch tiers
        for the same flow (a real fabric hashes with different seeds per
        switch; without this, the spine and leaf stages would always
        agree).
        """
        payload = (
            f"{self._seed}|{stage}|{five_tuple.src_ip}|{five_tuple.dst_ip}"
            f"|{five_tuple.src_port}|{five_tuple.dst_port}|{five_tuple.protocol}"
        ).encode()
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "little")

    def choose(self, five_tuple: FiveTuple, num_choices: int, stage: str = "") -> int:
        """Pick an index in ``[0, num_choices)`` for this flow at this stage."""
        if num_choices <= 0:
            raise ValueError("num_choices must be positive")
        return self.hash_value(five_tuple, stage) % num_choices

    def find_port_for_choice(
        self,
        base: FiveTuple,
        num_choices: int,
        wanted: int,
        stage: str = "",
        port_range: range = range(49152, 65536),
    ) -> int:
        """Search for a UDP source port that hashes to ``wanted``.

        This is the path-probing primitive of C4P: the master probes
        source ports until it finds one that lands each stage's decision
        on the desired next hop.  Raises ``LookupError`` if no port in
        ``port_range`` works (practically impossible for sane fan-outs).
        """
        if not 0 <= wanted < num_choices:
            raise ValueError(f"wanted index {wanted} out of range for {num_choices} choices")
        for port in port_range:
            candidate = FiveTuple(
                src_ip=base.src_ip,
                dst_ip=base.dst_ip,
                src_port=port,
                dst_port=base.dst_port,
                protocol=base.protocol,
            )
            if self.choose(candidate, num_choices, stage) == wanted:
                return port
        raise LookupError(
            f"no source port in {port_range} hashes to choice {wanted}/{num_choices}"
        )
