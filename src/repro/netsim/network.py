"""The flow network: links + flows + event loop.

:class:`FlowNetwork` is the heart of the substrate.  Upper layers
(collective transport, training jobs) add links once at construction and
then add flows over time; the network advances simulated time from one
event to the next, recomputing weighted max-min fair rates between
events and invoking completion callbacks (which typically launch the
next round of flows, modelling back-to-back collective operations).

Link failures are first-class: :meth:`FlowNetwork.fail_link` stalls the
flows whose path crosses the dead link and hands them to an optional
``reroute_handler`` — the hook through which the routing layer (plain
ECMP reconvergence, or C4P's dynamic load balancer) reacts.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

from repro.netsim.congestion import CongestionModel
from repro.netsim.engine import EventQueue, TimerHandle
from repro.netsim.fairness import max_min_rates
from repro.netsim.flows import Flow, FlowState
from repro.netsim.links import Link
from repro.obs.metrics import MetricsRegistry, get_registry

#: Flows whose remaining share falls below this fraction of their size
#: are complete (absorbs float residue from repeated rate changes).
_COMPLETION_REL_EPS = 1e-9


class FlowNetwork:
    """A capacitated network shared by concurrent flows.

    Parameters
    ----------
    congestion:
        Optional :class:`CongestionModel`.  When present, saturated links
        generate CNPs and throttle senders; when absent the fabric is an
        ideal lossless max-min fair network.
    """

    def __init__(
        self,
        congestion: Optional[CongestionModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.now: float = 0.0
        self.links: dict[object, Link] = {}
        self.flows: dict[object, Flow] = {}
        self.completed_flows: list[Flow] = []
        self.congestion = congestion
        #: Optional :class:`~repro.netsim.trace.SimTracer` receiving
        #: flow/link lifecycle events.
        self.tracer = None
        #: Called as ``reroute_handler(link, affected_flows)`` when a link
        #: fails.  The handler may call ``flow.reroute(...)`` to keep a
        #: flow alive; flows left stalled transfer nothing.
        self.reroute_handler: Optional[Callable[[Link, list[Flow]], None]] = None
        self._queue = EventQueue()
        self._cc_timer: Optional[TimerHandle] = None
        self._flow_seq = 0
        self._running = False
        registry = get_registry(metrics)
        registry.gauge(
            "netsim_event_queue_depth", "Timer heap entries (incl. cancelled)"
        ).set_function(self._queue.depth)
        registry.gauge(
            "netsim_timers_scheduled", "Timers ever scheduled on the event loop"
        ).set_function(lambda: self._queue.timers_scheduled)
        registry.gauge(
            "netsim_timers_fired", "Timers the event loop has fired"
        ).set_function(lambda: self._queue.timers_fired)
        self._m_sim_seconds = registry.counter(
            "netsim_simulated_seconds_total", "Simulated time advanced by run()"
        )
        self._m_wall_seconds = registry.counter(
            "netsim_wall_seconds_total", "Wall-clock time spent inside run()"
        )

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_link(self, link_id: object, capacity: float, description: str = "") -> Link:
        """Register a directed link.  Fails on duplicate ids."""
        if link_id in self.links:
            raise ValueError(f"duplicate link id {link_id!r}")
        link = Link(link_id=link_id, capacity=capacity, description=description)
        self.links[link_id] = link
        return link

    def link(self, link_id: object) -> Link:
        """Look up a link by id."""
        return self.links[link_id]

    def fail_link(self, link_id: object) -> list[Flow]:
        """Take a link down; stall affected flows and invoke the reroute hook.

        Returns the list of flows that were crossing the link.
        """
        link = self.links[link_id]
        link.fail()
        if self.tracer is not None:
            self.tracer.link_changed(link_id, self.now, up=False)
        affected = [
            flow
            for flow in self.flows.values()
            if link_id in flow.path and flow.state == FlowState.ACTIVE
        ]
        for flow in affected:
            flow.state = FlowState.STALLED
            if self.tracer is not None:
                self.tracer.flow_stalled(flow, self.now, link_id)
        if self.reroute_handler is not None:
            self.reroute_handler(link, affected)
        return affected

    def restore_link(self, link_id: object) -> None:
        """Bring a previously failed link back up."""
        self.links[link_id].restore()
        if self.tracer is not None:
            self.tracer.link_changed(link_id, self.now, up=True)

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow) -> Flow:
        """Start a flow at the current simulated time."""
        if flow.flow_id in self.flows:
            raise ValueError(f"duplicate flow id {flow.flow_id!r}")
        for link_id in flow.path:
            if link_id not in self.links:
                raise KeyError(f"flow {flow.flow_id!r} references unknown link {link_id!r}")
        flow.start_time = self.now
        if any(not self.links[link_id].is_up for link_id in flow.path):
            flow.state = FlowState.STALLED
        self.flows[flow.flow_id] = flow
        if self.tracer is not None:
            self.tracer.flow_started(flow, self.now)
        self._ensure_cc_timer()
        return flow

    def new_flow_id(self, prefix: str = "flow") -> str:
        """Generate a unique flow id (handy for transient transfers)."""
        self._flow_seq += 1
        return f"{prefix}-{self._flow_seq}"

    @property
    def active_flows(self) -> list[Flow]:
        """Flows currently transferring (not stalled, not complete)."""
        return [
            flow
            for flow in self.flows.values()
            if flow.state == FlowState.ACTIVE
            and all(self.links[link_id].is_up for link_id in flow.path)
        ]

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._queue.schedule(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self._queue.schedule(time, callback)

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation.

        Runs until there are no more events, or until simulated time
        reaches ``until`` (when given, ``now`` ends exactly at ``until``).

        Re-entrant calls (an event callback calling ``run()`` again) are
        rejected: they would interleave two event loops over one heap
        and fire timers out of ``(time, seq)`` order — the runtime twin
        of lint rule SIM005.
        """
        if self._running:
            raise RuntimeError(
                "FlowNetwork.run() re-entered from an event callback; "
                "schedule follow-up work with schedule()/schedule_at() instead"
            )
        self._running = True
        try:
            self._run(until)
        finally:
            self._running = False

    def _run(self, until: Optional[float]) -> None:
        # Wall-clock reads feed the sim-vs-wall observability counters
        # only; simulated behaviour never depends on them.
        wall_start = time.perf_counter()  # repro: noqa[SIM001]
        sim_start = self.now
        while True:
            rates = self.compute_rates()
            next_completion = self._next_completion_time(rates)
            next_timer = self._queue.next_time()
            candidates = [t for t in (next_completion, next_timer) if t is not None]
            if until is not None:
                candidates = [t for t in candidates if t <= until]
            if not candidates:
                break
            target = min(candidates)
            self._advance(target - self.now, rates)
            self.now = target
            self._fire_completions()
            for callback in self._queue.pop_due(self.now):
                callback()
        if until is not None and self.now < until:
            rates = self.compute_rates()
            self._advance(until - self.now, rates)
            self.now = until
            self._fire_completions()
        self._m_sim_seconds.inc(self.now - sim_start)
        # Same waiver as above: wall time is observability-only here.
        self._m_wall_seconds.inc(time.perf_counter() - wall_start)  # repro: noqa[SIM001]

    def compute_rates(self) -> dict[object, float]:
        """Instantaneous max-min fair rates of the active flows."""
        active = self.active_flows
        capacities = {link_id: link.capacity for link_id, link in self.links.items()}
        overrides: dict[object, float] = {}
        if self.congestion is not None:
            for flow in active:
                throttle = self.congestion.throttle_of(flow)
                if throttle < 1.0:
                    base = flow.rate_cap
                    if base is None:
                        base = min(self.links[link_id].capacity for link_id in flow.path)
                    overrides[flow.flow_id] = throttle * base
        rates = max_min_rates(active, capacities, cap_overrides=overrides)
        for flow in self.flows.values():
            flow.rate = rates.get(flow.flow_id, 0.0)
        return rates

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_completion_time(self, rates: dict[object, float]) -> Optional[float]:
        best: Optional[float] = None
        for flow in self.flows.values():
            rate = rates.get(flow.flow_id, 0.0)
            if flow.state != FlowState.ACTIVE or rate <= 0:
                continue
            eta = self.now + flow.remaining / rate
            if best is None or eta < best:
                best = eta
        return best

    def _advance(self, dt: float, rates: dict[object, float]) -> None:
        if dt < 0:
            raise AssertionError(f"negative dt {dt}")
        if dt == 0:
            return
        active = self.active_flows
        for flow in active:
            rate = rates.get(flow.flow_id, 0.0)
            transferred = rate * dt
            flow.remaining = max(0.0, flow.remaining - transferred)
            for link_id in flow.path:
                self.links[link_id].account(transferred)
        if self.congestion is not None:
            capacities = {link_id: link.capacity for link_id, link in self.links.items()}
            self.congestion.observe(active, rates, capacities, dt)

    def _fire_completions(self) -> None:
        finished = [
            flow
            for flow in self.flows.values()
            if flow.state == FlowState.ACTIVE
            and flow.remaining <= _COMPLETION_REL_EPS * flow.size
        ]
        for flow in finished:
            flow.state = FlowState.COMPLETED
            flow.end_time = self.now
            # Credit the float residue so byte accounting is exact.
            if flow.remaining > 0:
                for link_id in flow.path:
                    self.links[link_id].account(flow.remaining)
            flow.remaining = 0.0
            del self.flows[flow.flow_id]
            self.completed_flows.append(flow)
            if self.tracer is not None:
                self.tracer.flow_completed(flow, self.now)
            if self.congestion is not None:
                self.congestion.forget(flow)
        # Callbacks run after bookkeeping so they can add flows freely.
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)

    def _ensure_cc_timer(self) -> None:
        if self.congestion is None:
            return
        if self._cc_timer is not None and not self._cc_timer.cancelled:
            if self._cc_timer.time > self.now:
                return
        interval = self.congestion.config.tick_interval
        self._cc_timer = self._queue.schedule(self.now + interval, self._cc_tick)

    def _cc_tick(self) -> None:
        assert self.congestion is not None
        active = self.active_flows
        if not active:
            self._cc_timer = None
            return
        rates = {flow.flow_id: flow.rate for flow in active}
        capacities = {link_id: link.capacity for link_id, link in self.links.items()}
        self.congestion.tick(active, rates, capacities)
        interval = self.congestion.config.tick_interval
        self._cc_timer = self._queue.schedule(self.now + interval, self._cc_tick)

    def reset_link_windows(self) -> None:
        """Zero every link's windowed byte counter (start a sample window)."""
        for link in self.links.values():
            link.reset_window()

    def link_window_rates(self, window_seconds: float) -> dict[object, float]:
        """Per-link average rate in bits/s over the current window."""
        return {
            link_id: link.window_rate(window_seconds)
            for link_id, link in self.links.items()
        }

    def stalled_flows(self) -> list[Flow]:
        """Flows currently stalled on a failed link."""
        return [f for f in self.flows.values() if f.state == FlowState.STALLED]

    def sanity_check(self) -> None:
        """Verify internal invariants; raises AssertionError on violation.

        Checks that no link is oversubscribed by the current rate
        allocation and that all flow bookkeeping is consistent.  Used by
        property-based tests.
        """
        rates = self.compute_rates()
        load: dict[object, float] = {}
        for flow in self.active_flows:
            for link_id in flow.path:
                load[link_id] = load.get(link_id, 0.0) + rates.get(flow.flow_id, 0.0)
        for link_id, total in load.items():
            capacity = self.links[link_id].capacity
            if total > capacity * (1 + 1e-9) + 1e-6:
                raise AssertionError(
                    f"link {link_id!r} oversubscribed: {total} > {capacity}"
                )
        for flow in self.flows.values():
            if flow.remaining < 0 or math.isnan(flow.remaining):
                raise AssertionError(f"flow {flow.flow_id!r} has bad remaining {flow.remaining}")
