"""Weighted max-min fair rate allocation (progressive filling).

Given links with capacities and flows with weights and optional rate
caps, compute the instantaneous rate of every flow.  This is the classic
water-filling algorithm: repeatedly find the most constrained link
(smallest capacity per unit of unfrozen weight), freeze every flow
crossing it at its fair share, remove the consumed capacity, repeat.

Rate caps are handled by giving each capped flow a private virtual link
of that capacity, which integrates caps into the fixed point instead of
clipping afterwards (clipping would fail to redistribute the freed
bandwidth to other flows).

The implementation is vectorized with numpy over a COO incidence list
(flow, link); each filling iteration is O(links + touched incidences),
which keeps 512-GPU collective operations (thousands of flows) fast.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.netsim.flows import Flow


def max_min_rates(
    flows: Sequence[Flow],
    capacities: Mapping[object, float],
    cap_overrides: Mapping[object, float] | None = None,
) -> dict[object, float]:
    """Compute weighted max-min fair rates.

    Parameters
    ----------
    flows:
        Active flows; each contributes ``flow.weight`` demand on every
        link of ``flow.path``.
    capacities:
        Mapping from link id to available capacity in bits/s.  Every
        link id referenced by a flow path must be present.
    cap_overrides:
        Optional mapping from flow id to an effective sender rate cap in
        bits/s, taking precedence over ``flow.rate_cap``.  Used by the
        congestion model to throttle senders without mutating flows.

    Returns
    -------
    dict
        Mapping from ``flow.flow_id`` to allocated rate in bits/s.
    """
    if not flows:
        return {}
    overrides = cap_overrides or {}

    num_flows = len(flows)
    link_index: dict[object, int] = {}
    link_caps: list[float] = []
    coo_flow: list[int] = []
    coo_link: list[int] = []
    weights = np.empty(num_flows)

    for f_idx, flow in enumerate(flows):
        weights[f_idx] = flow.weight
        for link_id in flow.path:
            l_idx = link_index.get(link_id)
            if l_idx is None:
                l_idx = len(link_caps)
                link_index[link_id] = l_idx
                link_caps.append(capacities[link_id])
            coo_flow.append(f_idx)
            coo_link.append(l_idx)
        cap = overrides.get(flow.flow_id, flow.rate_cap)
        if cap is not None:
            l_idx = len(link_caps)
            link_caps.append(float(cap))
            coo_flow.append(f_idx)
            coo_link.append(l_idx)

    residual = np.array(link_caps)
    num_links = len(link_caps)
    coo_flow_arr = np.asarray(coo_flow, dtype=np.intp)
    coo_link_arr = np.asarray(coo_link, dtype=np.intp)

    # Per-link member lists: sort incidences by link for cheap slicing.
    order = np.argsort(coo_link_arr, kind="stable")
    sorted_links = coo_link_arr[order]
    sorted_flows = coo_flow_arr[order]
    starts = np.searchsorted(sorted_links, np.arange(num_links), side="left")
    ends = np.searchsorted(sorted_links, np.arange(num_links), side="right")

    pending_weight = np.bincount(coo_link_arr, weights=weights[coo_flow_arr], minlength=num_links)
    rates = np.zeros(num_flows)
    frozen = np.zeros(num_flows, dtype=bool)
    remaining = num_flows

    while remaining > 0:
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(pending_weight > 1e-15, residual / pending_weight, np.inf)
        bottleneck = int(np.argmin(share))
        level = share[bottleneck]
        if not np.isfinite(level):
            break
        members = sorted_flows[starts[bottleneck] : ends[bottleneck]]
        newly = members[~frozen[members]]
        if newly.size == 0:
            pending_weight[bottleneck] = 0.0
            continue
        rates[newly] = weights[newly] * level
        frozen[newly] = True
        remaining -= int(newly.size)
        # Subtract the frozen flows' rates and weights from their links.
        newly_set = np.zeros(num_flows, dtype=bool)
        newly_set[newly] = True
        touched_mask = newly_set[coo_flow_arr]
        touched_links = coo_link_arr[touched_mask]
        touched_flows = coo_flow_arr[touched_mask]
        np.subtract.at(residual, touched_links, rates[touched_flows])
        np.subtract.at(pending_weight, touched_links, weights[touched_flows])
        np.maximum(residual, 0.0, out=residual)
        pending_weight[bottleneck] = 0.0

    return {flow.flow_id: float(rates[f_idx]) for f_idx, flow in enumerate(flows)}
