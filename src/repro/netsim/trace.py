"""Simulation tracing: a timeline of flow and link events.

Attach a :class:`SimTracer` to a :class:`~repro.netsim.network.FlowNetwork`
to record flow starts/completions/stalls and link failures/restores with
simulated timestamps.  Traces are the debugging surface for experiment
authors ("why did job3's op stall at t=0.42?") and export to JSON for
external timeline viewers.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path


class TraceEventType(enum.Enum):
    """Kinds of events the tracer records."""

    FLOW_START = "flow_start"
    FLOW_COMPLETE = "flow_complete"
    FLOW_STALLED = "flow_stalled"
    FLOW_REROUTED = "flow_rerouted"
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    event_type: TraceEventType
    subject: str
    detail: dict = field(default_factory=dict, compare=False, hash=False)


class SimTracer:
    """Bounded in-memory event timeline.

    Parameters
    ----------
    capacity:
        Maximum retained events; the oldest are dropped beyond it.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Hooks called by FlowNetwork
    # ------------------------------------------------------------------
    def flow_started(self, flow, now: float) -> None:
        """A flow entered the network."""
        self._record(
            TraceEvent(
                time=now,
                event_type=TraceEventType.FLOW_START,
                subject=str(flow.flow_id),
                detail={"size": flow.size, "hops": len(flow.path)},
            )
        )

    def flow_completed(self, flow, now: float) -> None:
        """A flow finished transferring."""
        self._record(
            TraceEvent(
                time=now,
                event_type=TraceEventType.FLOW_COMPLETE,
                subject=str(flow.flow_id),
                detail={"duration": flow.duration, "mean_rate": flow.mean_rate},
            )
        )

    def flow_stalled(self, flow, now: float, link_id) -> None:
        """A flow lost its path to a failed link."""
        self._record(
            TraceEvent(
                time=now,
                event_type=TraceEventType.FLOW_STALLED,
                subject=str(flow.flow_id),
                detail={"link": str(link_id)},
            )
        )

    def link_changed(self, link_id, now: float, up: bool) -> None:
        """A link failed or came back."""
        self._record(
            TraceEvent(
                time=now,
                event_type=TraceEventType.LINK_UP if up else TraceEventType.LINK_DOWN,
                subject=str(link_id),
            )
        )

    # ------------------------------------------------------------------
    # Queries / export
    # ------------------------------------------------------------------
    def of_type(self, event_type: TraceEventType) -> list[TraceEvent]:
        """Events of one kind, in time order."""
        return [e for e in self.events if e.event_type is event_type]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= time < end``."""
        return [e for e in self.events if start <= e.time < end]

    def summary(self) -> dict[str, int]:
        """Event counts per type."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.event_type.value] = counts.get(event.event_type.value, 0) + 1
        return counts

    def write_json(self, path: str | Path) -> Path:
        """Dump the timeline to a JSON file."""
        path = Path(path)
        payload = [
            {
                "time": event.time,
                "type": event.event_type.value,
                "subject": event.subject,
                **event.detail,
            }
            for event in self.events
        ]
        path.write_text(json.dumps(payload, indent=2))
        return path

    def _record(self, event: TraceEvent) -> None:
        self.events.append(event)
        if len(self.events) > self.capacity:
            self.events.pop(0)
            self.dropped += 1
