"""Unit conventions and conversion helpers for the simulator.

Conventions used across :mod:`repro.netsim` and everything built on it:

* time is in **seconds** (float),
* data sizes are in **bits** (float, to allow fluid fractions),
* bandwidth/rate is in **bits per second**.

The helpers below exist so call sites can speak in the units the paper
uses (Gbps for link speeds, MiB/GiB for collective message sizes).
"""

#: One gigabit per second, in bits/s.
GBPS = 1e9

#: One megabit per second, in bits/s.
MBPS = 1e6

#: One kibibyte, in bits.
KIB = 1024 * 8

#: One mebibyte, in bits.
MIB = 1024 * KIB

#: One gibibyte, in bits.
GIB = 1024 * MIB


def gbps_to_bits(gbps: float) -> float:
    """Convert a rate in Gbps to bits/s."""
    return gbps * GBPS


def bits_to_gbps(bits_per_second: float) -> float:
    """Convert a rate in bits/s to Gbps."""
    return bits_per_second / GBPS


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a size in bytes to bits."""
    return num_bytes * 8


def bits_to_bytes(num_bits: float) -> float:
    """Convert a size in bits to bytes."""
    return num_bits / 8
