"""Flows: finite transfers sharing link bandwidth.

A flow stands in for one RDMA QP's traffic during one collective step
(or, for long-running measurements, a back-to-back sequence of them).
Flows carry a ``weight`` so the dynamic load balancer of C4P can shift
load between paths without tearing connections down, and an optional
``rate_cap`` used by the DCQCN-style congestion model to throttle
senders.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


class FlowState(enum.Enum):
    """Lifecycle of a flow inside the simulator."""

    ACTIVE = "active"
    COMPLETED = "completed"
    STALLED = "stalled"  # path crosses a failed link and was not rerouted


@dataclass
class Flow:
    """A finite data transfer over a fixed path.

    Parameters
    ----------
    flow_id:
        Unique hashable identifier.
    path:
        Sequence of link ids the flow traverses, in order.
    size:
        Total bits to transfer.  Must be positive.
    weight:
        Max-min fairness weight (default 1.0).  A flow with weight 2
        receives twice the share of a weight-1 flow on a shared
        bottleneck.
    rate_cap:
        Optional sender-side rate limit in bits/s (congestion control).
    on_complete:
        Callback invoked by the network when the flow finishes; receives
        the flow.  May start new flows.
    metadata:
        Free-form dict for upper layers (source port, QP number, job id,
        …).  The simulator never reads it.
    """

    flow_id: object
    path: Sequence[object]
    size: float
    weight: float = 1.0
    rate_cap: Optional[float] = None
    on_complete: Optional[Callable[["Flow"], None]] = None
    metadata: dict = field(default_factory=dict)

    state: FlowState = field(default=FlowState.ACTIVE, init=False)
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    start_time: float = field(default=math.nan, init=False)
    end_time: float = field(default=math.nan, init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow {self.flow_id!r} needs positive size, got {self.size}")
        if self.weight <= 0:
            raise ValueError(f"flow {self.flow_id!r} needs positive weight, got {self.weight}")
        if not self.path:
            raise ValueError(f"flow {self.flow_id!r} needs a non-empty path")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"flow {self.flow_id!r} rate_cap must be positive")
        self.remaining = float(self.size)

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) duration; NaN until completed."""
        return self.end_time - self.start_time

    @property
    def mean_rate(self) -> float:
        """Average achieved rate in bits/s; NaN until completed."""
        return self.size / self.duration

    def reroute(self, new_path: Sequence[object]) -> None:
        """Replace the flow's path (e.g. after a link failure).

        The remaining bits are preserved; the network recomputes rates at
        the next event boundary.
        """
        if not new_path:
            raise ValueError("new_path must be non-empty")
        self.path = list(new_path)
        if self.state == FlowState.STALLED:
            self.state = FlowState.ACTIVE
