"""Flow-level network simulator.

This package is the substrate standing in for the paper's physical
RDMA-over-Converged-Ethernet fabric.  It models a network as a set of
directed :class:`~repro.netsim.links.Link` objects shared by concurrent
:class:`~repro.netsim.flows.Flow` objects, allocates instantaneous rates
with weighted max-min fairness, and advances simulated time from one
flow-completion/timer event to the next.

The fluid model reproduces exactly the phenomena C4 manipulates — ECMP
collisions, bonded-port imbalance, leaf-spine congestion and link
failures — without simulating individual packets, which keeps month-long
and 512-GPU experiments tractable.
"""

from repro.netsim.congestion import CongestionConfig, CongestionModel
from repro.netsim.engine import EventQueue, TimerHandle
from repro.netsim.fairness import max_min_rates
from repro.netsim.flows import Flow, FlowState
from repro.netsim.links import Link, LinkState
from repro.netsim.network import FlowNetwork
from repro.netsim.routing import EcmpHasher
from repro.netsim.trace import SimTracer, TraceEvent, TraceEventType
from repro.netsim.units import GBPS, GIB, KIB, MBPS, MIB, bits_to_gbps, gbps_to_bits

__all__ = [
    "EventQueue",
    "TimerHandle",
    "Link",
    "LinkState",
    "Flow",
    "FlowState",
    "max_min_rates",
    "FlowNetwork",
    "EcmpHasher",
    "CongestionModel",
    "CongestionConfig",
    "SimTracer",
    "TraceEvent",
    "TraceEventType",
    "GBPS",
    "MBPS",
    "KIB",
    "MIB",
    "GIB",
    "gbps_to_bits",
    "bits_to_gbps",
]
