"""The journaled, fenced, recoverable C4P traffic-engineering master.

:class:`ResilientC4PMaster` subclasses the plain
:class:`~repro.core.c4p.master.C4PMaster` and journals every mutating
entry point — allocations (with their assigned QP numbers, so recovered
allocations keep their identities), releases, out-of-band link
failures, C4D connection-anomaly strikes, and maintenance passes (with
their probe outcomes, so replay never touches the live fabric).

Compound operations journal **one** entry: a maintenance pass that
internally quarantines-and-drains journals only the pass plus its probe
outcomes, because replaying the pass re-derives the nested quarantines
deterministically.  Epoch fencing raises :class:`FencedOut` from a
stale master's mutating calls — a zombie C4P master can neither
allocate paths nor trigger migrations after a takeover.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest, QpAllocation
from repro.controlplane.journal import FencedOut, JournalStore
from repro.controlplane.journal import state_digest as _digest
from repro.core.c4p import master as c4p_master
from repro.core.c4p.master import C4PMaster, DrainReport, MaintenanceReport
from repro.obs.metrics import MetricsRegistry, get_registry


class ResilientC4PMaster(C4PMaster):
    """C4P master with a write-ahead journal and epoch fencing.

    Parameters mirror :class:`C4PMaster`, plus:

    store:
        Shared journal store (the fencing authority).  A recovery
        instance is constructed against the crashed master's store with
        ``active=False, refresh_on_init=False`` and then promoted via
        :meth:`recover`.
    active:
        True claims writership at construction; False builds an inert
        instance that only :meth:`recover` can activate.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        store: Optional[JournalStore] = None,
        active: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        **kwargs,
    ) -> None:
        self.store = store if store is not None else JournalStore(metrics=metrics)
        self.epoch = 0
        self.active = False
        self.stale_rejections = 0
        self.entries_replayed = 0
        self.replay_seconds = 0.0
        self.recoveries = 0
        self._replaying = False
        self._suppress_journal = False
        registry = get_registry(metrics)
        self._m_recoveries = registry.counter(
            "controlplane_recoveries_total",
            "Journal-replay recoveries completed by a control plane",
        )
        self._m_replayed = registry.counter(
            "controlplane_replayed_entries_total",
            "Journal entries replayed during recoveries",
        )
        self._m_replay_seconds = registry.histogram(
            "controlplane_replay_seconds", "Wall-clock time of one journal replay"
        )
        super().__init__(topology, metrics=metrics, **kwargs)
        if active:
            self.epoch = self.store.open_epoch()
            self.active = True

    # ------------------------------------------------------------------
    # Fencing
    # ------------------------------------------------------------------
    def _check_writer(self) -> None:
        if self.active and self.epoch == self.store.epoch:
            return
        self.active = False
        self.store.record_fence()
        self.stale_rejections += 1
        raise FencedOut(
            f"c4p master epoch {self.epoch} is stale "
            f"(store is at epoch {self.store.epoch})"
        )

    @property
    def _bypass(self) -> bool:
        """True when a call must not journal (replay or nested mutation)."""
        return self._replaying or self._suppress_journal

    # ------------------------------------------------------------------
    # Journaled mutating entry points
    # ------------------------------------------------------------------
    @staticmethod
    def _request_payload(request: PathRequest) -> dict:
        return {
            "comm_id": request.comm_id,
            "job_id": request.job_id,
            "src_node": request.src_node,
            "src_nic": request.src_nic,
            "dst_node": request.dst_node,
            "dst_nic": request.dst_nic,
            "num_qps": request.num_qps,
        }

    def allocate(self, request: PathRequest) -> list[QpAllocation]:
        if self._bypass:
            return super().allocate(request)
        self._check_writer()
        # Draw the QP numbers up front and journal them write-ahead:
        # replay feeds the same numbers through the override queue, so
        # recovered allocations keep their identities even though the
        # global counter has moved on.
        qp_nums = [next(c4p_master._qp_counter) for _ in range(request.num_qps)]
        self.store.append(
            "allocate",
            {"request": self._request_payload(request), "qp_nums": qp_nums},
            self.epoch,
        )
        self._qp_num_override.extend(qp_nums)
        try:
            return super().allocate(request)
        finally:
            self._qp_num_override.clear()

    def release(
        self, request: PathRequest, allocations: Sequence[QpAllocation]
    ) -> None:
        if self._bypass:
            return super().release(request, allocations)
        self._check_writer()
        self.store.append(
            "release", {"qp_nums": [a.qp_num for a in allocations]}, self.epoch
        )
        super().release(request, allocations)

    def notify_link_failure(
        self, link_id: tuple, now: Optional[float] = None, drain: bool = True
    ) -> DrainReport:
        if self._bypass:
            return super().notify_link_failure(link_id, now, drain)
        self._check_writer()
        if now is None:
            now = self.topology.network.now
        self.store.append(
            "link_failure",
            {"link": list(link_id), "now": now, "drain": drain},
            self.epoch,
        )
        return super().notify_link_failure(link_id, now, drain)

    def notify_connection_anomaly(
        self,
        src_worker: tuple[int, int],
        dst_worker: tuple[int, int],
        now: Optional[float] = None,
    ) -> tuple[tuple, ...]:
        if self._bypass:
            return super().notify_connection_anomaly(src_worker, dst_worker, now)
        self._check_writer()
        if now is None:
            now = self.topology.network.now
        self.store.append(
            "connection_anomaly",
            {"src": list(src_worker), "dst": list(dst_worker), "now": now},
            self.epoch,
        )
        # Nested quarantines are re-derived by replay; suppress their
        # own journaling so the journal stays one-entry-per-cause.
        self._suppress_journal = True
        try:
            return super().notify_connection_anomaly(src_worker, dst_worker, now)
        finally:
            self._suppress_journal = False

    def maintenance(
        self,
        now: Optional[float] = None,
        probe_results: Optional[dict[tuple, bool]] = None,
    ) -> MaintenanceReport:
        if self._bypass:
            return super().maintenance(now, probe_results)
        self._check_writer()
        if now is None:
            now = self.topology.network.now
        self._suppress_journal = True
        try:
            report = super().maintenance(now, probe_results)
        finally:
            self._suppress_journal = False
        self.store.append(
            "maintenance",
            {
                "now": now,
                "probes": sorted(
                    ([list(link), healthy] for link, healthy in self.last_probe_results.items()),
                    key=repr,
                ),
            },
            self.epoch,
        )
        return report

    # ------------------------------------------------------------------
    # Snapshots, digests, recovery
    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """Canonical digest of the full traffic-engineering state."""
        return _digest(self.snapshot_state())

    def snapshot(self) -> bool:
        """Record a full-state snapshot; raises when fenced out."""
        self._check_writer()
        self.store.snapshot(self.snapshot_state(), self.epoch)
        return True

    def recover(self, now: float = 0.0) -> dict:
        """Claim writership and rebuild state from the shared store."""
        # Wall clock is observability-only: replay timing for the
        # scorecard, never simulated time.
        started = time.perf_counter()  # repro: noqa[SIM001]
        self.epoch = self.store.open_epoch()
        saved_listener = self.migration_listener
        self.migration_listener = None
        self._replaying = True
        entries = []
        try:
            seq = 0
            snap = self.store.latest_snapshot()
            if snap is not None:
                self.restore_state(snap.state)
                seq = snap.seq
            entries = self.store.entries_after(seq)
            for entry in entries:
                self._replay_entry(entry)
        finally:
            self._replaying = False
            self.migration_listener = saved_listener
        self.entries_replayed += len(entries)
        self.replay_seconds = time.perf_counter() - started  # repro: noqa[SIM001]
        self.recoveries += 1
        self._m_recoveries.inc()
        self._m_replayed.inc(len(entries))
        self._m_replay_seconds.observe(self.replay_seconds)
        self.active = True
        return {
            "epoch": self.epoch,
            "entries_replayed": len(entries),
            "digest": self.state_digest(),
        }

    def _release_qps(self, qp_nums: Sequence[int]) -> None:
        for qp_num in qp_nums:
            record = self._allocated.pop(qp_num, None)
            if record is not None:
                self._deindex(record)
                self.registry.release(record.rail, record.alloc.choice)
                self._m_releases.inc()

    def _replay_entry(self, entry) -> None:
        kind = entry.kind
        payload = entry.payload
        if kind == "allocate":
            self._qp_num_override.extend(payload["qp_nums"])
            try:
                super().allocate(PathRequest(**payload["request"]))
            except c4p_master.PathPoolExhausted:
                # The live call failed the same way; partial state
                # mutations are re-derived identically.
                pass
            finally:
                self._qp_num_override.clear()
        elif kind == "release":
            self._release_qps(payload["qp_nums"])
        elif kind == "link_failure":
            super().notify_link_failure(
                tuple(payload["link"]), payload["now"], payload["drain"]
            )
        elif kind == "connection_anomaly":
            super().notify_connection_anomaly(
                tuple(payload["src"]), tuple(payload["dst"]), payload["now"]
            )
        elif kind == "maintenance":
            super().maintenance(
                payload["now"],
                probe_results={
                    tuple(link): healthy for link, healthy in payload["probes"]
                },
            )
        else:
            raise ValueError(f"unknown journal entry kind {kind!r}")


__all__ = ["ResilientC4PMaster"]
