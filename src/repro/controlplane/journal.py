"""Write-ahead journal + snapshots for the C4 control-plane masters.

The masters (C4D, C4P, the central collector) are long-lived singletons
whose in-memory state — delay-matrix windows, steering history, strike
counts, allocation books, link-health machines — is exactly what a crash
loses.  This module gives them a shared durability substrate:

* **journal entries** are written *ahead* of the mutation they describe
  (record ingestion) or immediately after an evaluation pass with its
  executed outcomes, in a single total order per store;
* **snapshots** capture the full serialized state at a journal position,
  bounding replay work;
* **fencing epochs** make the store single-writer: every append carries
  the writer's epoch, and an epoch older than the store's current one is
  rejected with :class:`FencedOut` — the mechanism that stops a stale or
  zombie master from mutating state (or issuing actions) after a standby
  took over.

Recovery = restore the latest snapshot, replay the entries after it, and
compare :func:`state_digest` against the pre-crash value.  Digests are
SHA-256 over canonical JSON (sorted keys, no whitespace), so "identical
state" is a checkable single string rather than a vibe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry


class FencedOut(RuntimeError):
    """A writer with a stale epoch tried to mutate the journal.

    Raised by :meth:`JournalStore.append` / :meth:`JournalStore.snapshot`
    when the caller's epoch is older than the store's current epoch —
    i.e. another master has since taken over.  The stale writer must
    demote itself; it may never retry the write.
    """


def jsonable(value):
    """Recursively convert tuples to lists (canonical JSON form)."""
    if isinstance(value, (tuple, list)):
        return [jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: jsonable(item) for key, item in value.items()}
    return value


def state_digest(state: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a state dict."""
    canonical = json.dumps(jsonable(state), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    """One journaled mutation."""

    seq: int
    epoch: int
    kind: str
    payload: dict

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "epoch": self.epoch,
            "kind": self.kind,
            "payload": jsonable(self.payload),
        }


@dataclass(frozen=True)
class Snapshot:
    """Full serialized state at one journal position."""

    #: Journal length when the snapshot was taken; replay starts at this
    #: entry index.
    seq: int
    epoch: int
    state: dict


class JournalStore:
    """In-memory journal + snapshot store with epoch fencing.

    One store backs one logical master.  A production deployment would
    put this on replicated disk; the simulation keeps it in memory — the
    point is the *protocol* (write-ahead ordering, fencing, replay), not
    the medium.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.entries: list[JournalEntry] = []
        self.snapshots: list[Snapshot] = []
        #: Current writer epoch; appends from older epochs are fenced.
        self.epoch = 0
        #: Next absolute sequence number (monotonic across compaction).
        self._next_seq = 0
        registry = get_registry(metrics)
        self._m_entries = registry.counter(
            "controlplane_journal_entries_total",
            "Mutations appended to a control-plane journal",
            labels=("kind",),
        )
        self._m_size = registry.gauge(
            "controlplane_journal_size",
            "Entries currently retained in a control-plane journal",
        )
        self._m_snapshots = registry.counter(
            "controlplane_snapshots_total", "Control-plane state snapshots taken"
        )
        self._m_fenced = registry.counter(
            "controlplane_fence_rejections_total",
            "Writes rejected because the writer's epoch was stale",
        )
        self._m_epoch = registry.gauge(
            "controlplane_epoch", "Current fencing epoch of the journal store"
        )

    # ------------------------------------------------------------------
    # Epoch management
    # ------------------------------------------------------------------
    def open_epoch(self) -> int:
        """Claim writership: bump and return the fencing epoch.

        Every master (initial start, restart, promoted standby) calls
        this exactly once before its first write; all earlier epochs are
        fenced from that moment on.
        """
        self.epoch += 1
        self._m_epoch.set(self.epoch)
        return self.epoch

    def check_epoch(self, epoch: int) -> None:
        """Raise :class:`FencedOut` when ``epoch`` is no longer current."""
        if epoch != self.epoch:
            raise FencedOut(
                f"writer epoch {epoch} is stale (store is at epoch {self.epoch})"
            )

    def record_fence(self) -> None:
        """Count one fenced-out write (called by the demoting writer)."""
        self._m_fenced.inc()

    # ------------------------------------------------------------------
    # Journal / snapshot
    # ------------------------------------------------------------------
    def append(self, kind: str, payload: dict, epoch: int) -> JournalEntry:
        """Append one mutation; the caller must hold the current epoch."""
        self.check_epoch(epoch)
        entry = JournalEntry(seq=self._next_seq, epoch=epoch, kind=kind, payload=payload)
        self._next_seq += 1
        self.entries.append(entry)
        self._m_entries.labels(kind=kind).inc()
        self._m_size.set(len(self.entries))
        return entry

    def snapshot(self, state: dict, epoch: int) -> Snapshot:
        """Record a full-state snapshot at the current journal position."""
        self.check_epoch(epoch)
        snap = Snapshot(seq=self._next_seq, epoch=epoch, state=jsonable(state))
        self.snapshots.append(snap)
        self._m_snapshots.inc()
        return snap

    def latest_snapshot(self) -> Optional[Snapshot]:
        """Most recent snapshot, or None before the first."""
        return self.snapshots[-1] if self.snapshots else None

    def entries_after(self, seq: int) -> list[JournalEntry]:
        """Journal suffix from sequence number ``seq`` (inclusive).

        Filtered by the entries' absolute sequence numbers, not list
        position, so it stays correct after :meth:`compact`.
        """
        return [entry for entry in self.entries if entry.seq >= seq]

    def compact(self) -> int:
        """Drop journal entries already covered by the latest snapshot.

        Entry indices are preserved by replacing the dropped prefix'
        storage only conceptually: the journal keeps absolute sequence
        numbers, so compaction just forgets the prefix.  Returns the
        number of entries dropped.
        """
        snap = self.latest_snapshot()
        if snap is None:
            return 0
        dropped = sum(1 for entry in self.entries if entry.seq < snap.seq)
        if dropped:
            self.entries = [entry for entry in self.entries if entry.seq >= snap.seq]
            self._m_size.set(len(self.entries))
        return dropped
