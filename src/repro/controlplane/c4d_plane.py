"""The journaled, fenced, recoverable C4D control plane.

Wraps the detection stack (central collector + C4D master + steering)
behind a single write path:

* every record ingestion is journaled **write-ahead** — the entry hits
  the :class:`~repro.controlplane.journal.JournalStore` before the
  collector mutates;
* every evaluation pass is journaled **with its outcomes** (executed
  steering actions, the coverage/blind-node inputs), because the
  physical side effects — node isolations — must never be re-executed
  by replay: a recovered master re-derives the *bookkeeping* of an
  action, not the action;
* every write carries the plane's fencing epoch.  A plane whose epoch
  is stale (a standby was promoted, a restarted instance took over)
  demotes itself on its next write attempt instead of corrupting state.

Recovery (:meth:`C4DControlPlane.recover`) claims a fresh epoch,
rebuilds the components, restores the latest snapshot and replays the
journal suffix.  Determinism of the stack makes the recovered state
digest bit-identical to the pre-crash one — which the chaos scorecard
checks.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.cluster.topology import ClusterTopology
from repro.collective.monitoring import (
    CommunicatorRecord,
    MessageRecord,
    OpLaunchRecord,
    OpRecord,
)
from repro.controlplane.journal import FencedOut, JournalStore, state_digest
from repro.controlplane.lease import LeaseTable
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.steering import (
    JobSteeringService,
    SteeringAction,
    SteeringConfig,
    SteeringFaultModel,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.telemetry.collector import CentralCollector


class C4DControlPlane:
    """Crash-recoverable owner of the collector, master and steering.

    Parameters
    ----------
    topology / backup_nodes:
        Forwarded to the steering service.
    store:
        The journal store.  A primary and its warm standby share one
        store — that shared store's epoch is the fencing authority.
    leases:
        Agent heartbeat leases; coverage and blind nodes derived from
        them feed the master's degraded-mode gate.
    active:
        True claims writership immediately (normal start-up).  False
        builds an inert instance that only :meth:`recover` activates —
        a cold restart, or (with ``standby=True``) a warm standby whose
        promotion counts as a failover.
    action_listener:
        Called with ``(action, coverage)`` for each steering action
        *physically executed* by this plane — the hook campaign runners
        use, since it survives component rebuilds across recoveries.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        backup_nodes: list[int],
        store: Optional[JournalStore] = None,
        leases: Optional[LeaseTable] = None,
        detector_config: Optional[DetectorConfig] = None,
        steering_config: Optional[SteeringConfig] = None,
        steering_faults: Optional[SteeringFaultModel] = None,
        dedup_window: float = 900.0,
        cooldown: float = 300.0,
        degraded_coverage_threshold: float = 0.6,
        rca=None,
        c4p=None,
        active: bool = True,
        standby: bool = False,
        action_listener: Optional[Callable[[SteeringAction, float], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.topology = topology
        self.backup_nodes = list(backup_nodes)
        self.store = store if store is not None else JournalStore(metrics=metrics)
        self.leases = leases if leases is not None else LeaseTable(metrics=metrics)
        self._detector_config = detector_config
        self._steering_config = steering_config
        self._steering_faults = steering_faults
        self._dedup_window = dedup_window
        self._cooldown = cooldown
        self._degraded_threshold = degraded_coverage_threshold
        self.rca = rca
        self.c4p = c4p
        self.action_listener = action_listener
        self._metrics = metrics
        self.tracer = tracer
        self.epoch = 0
        self.active = False
        #: Built as a warm standby — its promotion counts as a failover.
        self._standby = standby and not active
        #: Writes this instance attempted while fenced out.
        self.stale_rejections = 0
        self.entries_replayed = 0
        self.replay_seconds = 0.0
        self.recoveries = 0
        self.failovers = 0
        registry = get_registry(metrics)
        self._m_recoveries = registry.counter(
            "controlplane_recoveries_total",
            "Journal-replay recoveries completed by a control plane",
        )
        self._m_failovers = registry.counter(
            "controlplane_failovers_total", "Warm-standby promotions completed"
        )
        self._m_replayed = registry.counter(
            "controlplane_replayed_entries_total",
            "Journal entries replayed during recoveries",
        )
        self._m_replay_seconds = registry.histogram(
            "controlplane_replay_seconds", "Wall-clock time of one journal replay"
        )
        self._build()
        if active:
            self.epoch = self.store.open_epoch()
            self.master.epoch = self.epoch
            self.active = True

    def _build(self) -> None:
        """(Re)construct the collector/steering/master stack."""
        self.collector = CentralCollector(metrics=self._metrics)
        self.steering = JobSteeringService(
            self.topology,
            backup_nodes=self.backup_nodes,
            config=self._steering_config,
            faults=self._steering_faults,
            dedup_window=self._dedup_window,
            metrics=self._metrics,
        )
        self.master = C4DMaster(
            self.collector,
            config=self._detector_config,
            steering=self.steering,
            rca=self.rca,
            cooldown=self._cooldown,
            c4p=self.c4p,
            degraded_coverage_threshold=self._degraded_threshold,
            metrics=self._metrics,
            tracer=self.tracer,
        )
        self.master.epoch = self.epoch

    # ------------------------------------------------------------------
    # Fencing
    # ------------------------------------------------------------------
    def _guard(self) -> bool:
        """True when this plane still holds writership; demote otherwise."""
        if self.active and self.epoch == self.store.epoch:
            return True
        self.active = False
        self.store.record_fence()
        self.stale_rejections += 1
        return False

    # ------------------------------------------------------------------
    # Ingestion (duck-types the CentralCollector API, so agents can
    # point straight at the plane)
    # ------------------------------------------------------------------
    def ingest_communicator(self, record: CommunicatorRecord, now: float = 0.0) -> None:
        if not self._guard():
            return
        self.store.append(
            "communicator", {"record": record.to_payload(), "now": now}, self.epoch
        )
        self.collector.ingest_communicator(record, now=now)

    def ingest_launch(self, record: OpLaunchRecord) -> None:
        if not self._guard():
            return
        self.store.append("launch", {"record": record.to_payload()}, self.epoch)
        self.collector.ingest_launch(record)

    def ingest_op(self, record: OpRecord) -> None:
        if not self._guard():
            return
        self.store.append("op", {"record": record.to_payload()}, self.epoch)
        self.collector.ingest_op(record)

    def ingest_message(self, record: MessageRecord) -> None:
        if not self._guard():
            return
        self.store.append("message", {"record": record.to_payload()}, self.epoch)
        self.collector.ingest_message(record)

    def drop_communicator(self, comm_id: str) -> None:
        if not self._guard():
            return
        self.store.append("drop", {"comm_id": comm_id}, self.epoch)
        self.collector.drop_communicator(comm_id)

    # ------------------------------------------------------------------
    # Evaluation and snapshots
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> list:
        """One master evaluation pass under the current lease coverage.

        The journal entry is written *after* execution and carries the
        executed actions plus the exact coverage/blind inputs, so replay
        re-derives the pass deterministically without re-running the
        physical isolations.
        """
        if not self._guard():
            return []
        coverage = self.leases.coverage(now)
        blind = self.leases.blind_nodes(now)
        actions_before = len(self.steering.actions)
        executed_before = len(self.steering.executed_actions)
        fresh = self.master.evaluate(now, coverage=coverage, blind_nodes=blind)
        new_actions = self.steering.actions[actions_before:]
        self.store.append(
            "evaluate",
            {
                "now": now,
                "coverage": coverage,
                "blind": blind,
                "actions": [a.to_payload() for a in new_actions],
            },
            self.epoch,
        )
        if self.action_listener is not None:
            for action in self.steering.executed_actions[executed_before:]:
                self.action_listener(action, coverage)
        return fresh

    def state(self) -> dict:
        """Full serialized state of the managed components."""
        return {
            "collector": self.collector.snapshot_state(),
            "master": self.master.snapshot_state(),
            "steering": self.steering.snapshot_state(),
        }

    def state_digest(self) -> str:
        """Canonical digest of :meth:`state` (epoch excluded by design)."""
        return state_digest(self.state())

    def snapshot(self) -> bool:
        """Record a full-state snapshot; False when fenced out."""
        if not self._guard():
            return False
        self.store.snapshot(self.state(), self.epoch)
        return True

    def attach_snapshots(
        self, network, interval: float, until: Optional[float] = None
    ) -> None:
        """Arm periodic snapshots on the simulation event loop.

        The first snapshot fires at ``interval + 0.9`` — deliberately
        off the evaluation/feed grids so perturbed-schedule replays
        cannot reorder it against same-timestamp events.
        """

        def tick() -> None:
            self.snapshot()
            if until is None or network.now + interval <= until:
                network.schedule(interval, tick)

        network.schedule(interval + 0.9, tick)

    # ------------------------------------------------------------------
    # Recovery / failover
    # ------------------------------------------------------------------
    def recover(self, now: float = 0.0) -> dict:
        """Claim writership and rebuild state from the shared store.

        Works for both a restarted instance (crash recovery) and a warm
        standby (failover) — the promotion is the same protocol: bump
        the epoch (fencing out every earlier writer), restore the latest
        snapshot, replay the journal suffix with physical side effects
        suppressed, then start accepting writes.
        """
        was_standby = self._standby
        self._standby = False
        # Wall clock here is observability-only: it times the replay
        # itself for the recovery scorecard and never feeds simulated
        # time or any verdict.
        started = time.perf_counter()  # repro: noqa[SIM001]
        self.epoch = self.store.open_epoch()
        self._build()
        seq = 0
        snap = self.store.latest_snapshot()
        if snap is not None:
            self.collector.restore_state(snap.state["collector"])
            self.master.restore_state(snap.state["master"])
            self.steering.restore_state(snap.state["steering"])
            seq = snap.seq
        entries = self.store.entries_after(seq)
        # Replay must not re-emit detections to the tracer, re-submit to
        # RCA, or re-strike C4P links — those all happened pre-crash.
        self.master.tracer = None
        self.master.rca = None
        self.master.c4p = None
        try:
            for entry in entries:
                self._replay_entry(entry)
        finally:
            self.master.tracer = self.tracer
            self.master.rca = self.rca
            self.master.c4p = self.c4p
        self.master.epoch = self.epoch
        self.entries_replayed += len(entries)
        self.replay_seconds = time.perf_counter() - started  # repro: noqa[SIM001]
        self.recoveries += 1
        self._m_recoveries.inc()
        self._m_replayed.inc(len(entries))
        self._m_replay_seconds.observe(self.replay_seconds)
        if was_standby:
            self.failovers += 1
            self._m_failovers.inc()
        self.active = True
        return {
            "epoch": self.epoch,
            "entries_replayed": len(entries),
            "digest": self.state_digest(),
        }

    def _replay_entry(self, entry) -> None:
        kind = entry.kind
        payload = entry.payload
        if kind == "communicator":
            self.collector.ingest_communicator(
                CommunicatorRecord.from_payload(payload["record"]), now=payload["now"]
            )
        elif kind == "launch":
            self.collector.ingest_launch(OpLaunchRecord.from_payload(payload["record"]))
        elif kind == "op":
            self.collector.ingest_op(OpRecord.from_payload(payload["record"]))
        elif kind == "message":
            self.collector.ingest_message(MessageRecord.from_payload(payload["record"]))
        elif kind == "drop":
            self.collector.drop_communicator(payload["comm_id"])
        elif kind == "evaluate":
            actions = [SteeringAction.from_payload(p) for p in payload["actions"]]
            self.steering.begin_replay(actions)
            try:
                self.master.evaluate(
                    payload["now"],
                    coverage=payload["coverage"],
                    blind_nodes=payload["blind"],
                )
            finally:
                self.steering.end_replay()
        else:
            raise ValueError(f"unknown journal entry kind {kind!r}")


__all__ = ["C4DControlPlane", "FencedOut"]
