"""Agent heartbeat leases: who is the master actually hearing from?

Every C4 agent holds a time-bounded lease that its heartbeats renew.  An
expired lease means the master has heard nothing from that node for a
full lease period — the node's silence is now *uninformative*: it could
be a hung worker (C4D's business) or a dead agent/partitioned collector
(not a compute fault at all).  The coverage fraction and blind-node set
derived here are what puts the C4D master into degraded mode, turning
telemetry blackouts into missed-detection latency instead of
false-isolation storms.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry


class LeaseTable:
    """Per-node heartbeat leases with expiry-derived coverage."""

    def __init__(
        self,
        lease_seconds: float = 30.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.lease_seconds = lease_seconds
        #: node id -> lease expiry time.
        self._expiry: dict[int, float] = {}
        registry = get_registry(metrics)
        self._m_coverage = registry.gauge(
            "controlplane_agent_coverage",
            "Fraction of registered agents holding a live lease",
        )
        self._m_heartbeats = registry.counter(
            "controlplane_heartbeats_total", "Agent lease renewals received"
        )
        self._m_expired = registry.counter(
            "controlplane_lease_expiries_total",
            "Leases observed expired at a coverage query",
        )

    # ------------------------------------------------------------------
    # Registration / renewal
    # ------------------------------------------------------------------
    def register(self, node_id: int, now: float) -> None:
        """Open (or re-open) a node's lease starting now."""
        self._expiry[node_id] = now + self.lease_seconds

    def heartbeat(self, node_id: int, now: float) -> None:
        """Renew a lease; an unknown node auto re-registers.

        Auto re-registration is the recovery path after a master restart
        or failover: agents keep beating against the new incarnation and
        come back into coverage without an explicit handshake.
        """
        self._expiry[node_id] = now + self.lease_seconds
        self._m_heartbeats.inc()

    def deregister(self, node_id: int) -> None:
        """Drop a node's lease entirely (planned removal)."""
        self._expiry.pop(node_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def registered(self) -> list[int]:
        """All nodes holding a lease, live or expired."""
        return sorted(self._expiry)

    def live(self, now: float) -> list[int]:
        """Nodes whose lease has not expired."""
        return sorted(node for node, expiry in self._expiry.items() if now < expiry)

    def blind_nodes(self, now: float) -> list[int]:
        """Nodes whose lease expired — silence from them means nothing."""
        expired = sorted(node for node, expiry in self._expiry.items() if now >= expiry)
        self._m_expired.inc(len(expired))
        return expired

    def coverage(self, now: float) -> float:
        """Live fraction of registered agents (1.0 with none registered)."""
        if not self._expiry:
            self._m_coverage.set(1.0)
            return 1.0
        live = sum(1 for expiry in self._expiry.values() if now < expiry)
        fraction = live / len(self._expiry)
        self._m_coverage.set(fraction)
        return fraction
