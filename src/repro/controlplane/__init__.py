"""Control-plane self-resilience: journaled state, fencing, leases.

The C4 masters are singletons; this package is what lets them die.  It
provides the write-ahead :class:`JournalStore` (+ snapshots + fencing
epochs), agent heartbeat :class:`LeaseTable` coverage, and the two
recoverable planes — :class:`C4DControlPlane` wrapping the detection
stack and :class:`ResilientC4PMaster` wrapping traffic engineering —
whose crash recovery replays the journal back to a bit-identical
:func:`state_digest`.
"""

from repro.controlplane.c4d_plane import C4DControlPlane
from repro.controlplane.c4p_plane import ResilientC4PMaster
from repro.controlplane.journal import (
    FencedOut,
    JournalEntry,
    JournalStore,
    Snapshot,
    jsonable,
    state_digest,
)
from repro.controlplane.lease import LeaseTable

__all__ = [
    "C4DControlPlane",
    "FencedOut",
    "JournalEntry",
    "JournalStore",
    "LeaseTable",
    "ResilientC4PMaster",
    "Snapshot",
    "jsonable",
    "state_digest",
]
