"""Dynamic load balancing: shift QP load toward faster paths.

"The ACCL constantly evaluates message completion times on various
paths and prioritizes the fastest for data transfer" (§III-B).  The
balancer periodically compares the achieved per-QP rates of every
connection (an EWMA over the rates the transport observed) and raises
the load share of fast QPs / lowers that of slow ones, with hysteresis
so a balanced connection is left alone.

Two situations benefit:

* **link failures** — displaced QPs land on already-loaded routes; the
  balancer drains load from the now-congested paths (Fig. 12b), and
* **congestion from other tenants** — persistent rate asymmetry between
  a connection's QPs shifts traffic away from the contended spine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collective.context import CollectiveContext
from repro.collective.transport import Connection


@dataclass(frozen=True)
class LoadBalancerConfig:
    """Tunables of the dynamic balancer.

    Attributes
    ----------
    interval:
        Seconds between balancing passes.
    trigger_ratio:
        Minimum fastest/slowest QP rate ratio before weights change.
    min_weight / max_weight:
        Clamp on per-QP load shares (a QP never fully drains, so its
        path keeps being measured — losing the measurement would blind
        the balancer to recovery).
    gain:
        Exponent applied to relative rates when computing new weights;
        1.0 sets shares proportional to measured rates.
    """

    interval: float = 0.05
    trigger_ratio: float = 1.15
    min_weight: float = 0.1
    max_weight: float = 4.0
    gain: float = 1.0


class DynamicLoadBalancer:
    """Periodic per-connection QP-weight adjustment for one or more jobs."""

    def __init__(
        self,
        contexts: list[CollectiveContext],
        config: LoadBalancerConfig | None = None,
    ) -> None:
        if not contexts:
            raise ValueError("need at least one context to balance")
        self.contexts = contexts
        self.config = config or LoadBalancerConfig()
        self.network = contexts[0].network
        self.adjustments = 0
        self._armed = False

    def start(self) -> None:
        """Arm the periodic balancing timer on the event loop."""
        if self._armed:
            return
        self._armed = True
        self.network.schedule(self.config.interval, self._tick)

    def stop(self) -> None:
        """Disarm after the current tick."""
        self._armed = False

    def _tick(self) -> None:
        if not self._armed:
            return
        for context in self.contexts:
            for connection in context.connections:
                self.rebalance_connection(connection)
        self.network.schedule(self.config.interval, self._tick)

    def rebalance_connection(self, connection: Connection) -> bool:
        """Adjust one connection's QP weights from measured rates.

        Returns True when weights changed.  Connections without rate
        measurements on every QP are skipped (nothing to compare yet).
        """
        rates = []
        for alloc in connection.allocations:
            rate = connection_rate(connection, alloc.qp_num)
            if rate is None or rate <= 0:
                return False
            rates.append(rate)
        fastest = max(rates)
        slowest = min(rates)
        if fastest / slowest < self.config.trigger_ratio:
            return False
        cfg = self.config
        mean_rate = sum(rates) / len(rates)
        for alloc, rate in zip(connection.allocations, rates, strict=True):
            weight = (rate / mean_rate) ** cfg.gain
            weight = min(max(weight, cfg.min_weight), cfg.max_weight)
            connection.set_qp_weight(alloc, weight)
        self.adjustments += 1
        return True


def connection_rate(connection: Connection, qp_num: int) -> float | None:
    """Latest measured rate of one QP, if any (bits/s)."""
    return connection.qp_rate_ewma.get(qp_num)
