"""Path registry: the C4P master's bookkeeping of fabric resources.

"The C4P master records the numbers of allocated connections on each
path, and allocates paths for new connections considering the occupied
network resources" (§III-B).  The registry tracks per-link QP counts on
the leaf→spine and spine→leaf tiers and hands out the least-loaded
route, restricted to healthy links and (by default) to the requesting
port's physical plane.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.topology import ClusterTopology, PathChoice
from repro.obs.metrics import MetricsRegistry, get_registry


class PathPoolExhausted(RuntimeError):
    """No healthy route satisfies an acquisition (every candidate dead).

    Typed so callers — the master's drain path, the per-job selector —
    can distinguish "this plane has no capacity right now" from a
    programming error and degrade gracefully (leave the QP stranded,
    retry after the next re-probe) instead of crashing the job.
    """


class PathRegistry:
    """Allocation counts and least-loaded route selection."""

    def __init__(
        self, topology: ClusterTopology, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.topology = topology
        #: Allocated QP count per fabric link id.
        self.link_load: dict[tuple, int] = {}
        #: Links the prober (or failure notifications) declared dead.
        self.dead_links: set[tuple] = set()
        #: Round-robin tie-break offset; a plain int (not itertools.count)
        #: so control-plane snapshots can capture and restore it.
        self._rr = 0
        registry = get_registry(metrics)
        self._m_acquired = registry.counter(
            "c4p_routes_acquired_total", "Routes handed out by the path registry"
        )
        self._m_exhausted = registry.counter(
            "c4p_pool_exhaustions_total",
            "Acquisitions that found no healthy route on the requested plane",
        )
        self._m_dead = registry.gauge(
            "c4p_dead_links", "Links currently excluded from allocation"
        )
        self._m_link_load = registry.gauge(
            "c4p_link_load", "Allocated QP count per fabric link", labels=("link",)
        )

    # ------------------------------------------------------------------
    # Health bookkeeping
    # ------------------------------------------------------------------
    def mark_dead(self, link_id: tuple) -> None:
        """Exclude a link from future allocations."""
        self.dead_links.add(link_id)
        self._m_dead.set(len(self.dead_links))

    def mark_alive(self, link_id: tuple) -> None:
        """Return a link to service."""
        self.dead_links.discard(link_id)
        self._m_dead.set(len(self.dead_links))

    def is_usable(self, link_id: tuple) -> bool:
        """Healthy from the master's point of view (catalog, not ground truth)."""
        return link_id not in self.dead_links

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def acquire(self, rail: int, src_side: int, dst_side: int | None = None) -> PathChoice:
        """Reserve the least-loaded healthy route on a rail.

        ``dst_side`` defaults to ``src_side`` — the plane-preserving rule
        that keeps traffic from a left port on left leaves end-to-end,
        preventing receive-side bonded-port imbalance (Fig. 9).

        Selection is greedy two-stage: the least-loaded (spine, uplink
        port) *among spines that still have a healthy downlink to the
        destination side*, then the least-loaded such downlink — which
        keeps both tiers balanced at O(fanout²) cost.  Restricting the
        uplink stage to completable spines is what makes the greedy
        correct under failures: a spine whose last downlink to
        ``dst_side`` died would otherwise win the uplink stage (its
        links are idle precisely because it is unusable) and strand the
        acquisition even though other spines have healthy routes.
        Equal-load ties are broken by rotating the scan start with a
        round-robin counter, so the first wave of allocations (all loads
        zero) spreads across spines instead of piling onto index 0.
        """
        if dst_side is None:
            dst_side = src_side
        spec = self.topology.spec
        topo = self.topology
        offset = self._rr
        self._rr += 1

        ups = [
            (spine, k)
            for spine in topo.enabled_spines(rail)
            for k in range(spec.uplink_ports_per_spine)
        ]
        downs = list(range(spec.uplink_ports_per_spine))

        def best_down_of(spine: int) -> tuple[int, int] | None:
            """Least-loaded healthy downlink of one spine: (port, load)."""
            best = None
            best_load = None
            for j in range(len(downs)):
                k = downs[(offset + j) % len(downs)]
                link = topo.spine_down(rail, spine, dst_side, k)
                if not self.is_usable(link):
                    continue
                load = self.link_load.get(link, 0)
                if best_load is None or load < best_load:
                    best_load = load
                    best = k
            return None if best is None else (best, best_load)

        best_up = None
        best_up_load = None
        best_down = None
        for i in range(len(ups)):
            spine, k = ups[(offset + i) % len(ups)]
            link = topo.leaf_up(rail, src_side, spine, k)
            if not self.is_usable(link):
                continue
            load = self.link_load.get(link, 0)
            if best_up_load is not None and load >= best_up_load:
                continue
            down = best_down_of(spine)
            if down is None:
                continue
            best_up_load = load
            best_up = (spine, k)
            best_down = down[0]
        if best_up is None:
            self._m_exhausted.inc()
            raise PathPoolExhausted(
                f"no healthy route on rail {rail} from side {src_side} "
                f"to side {dst_side}"
            )
        spine, up_port = best_up

        choice = PathChoice(
            src_side=src_side,
            spine=spine,
            up_port=up_port,
            dst_side=dst_side,
            down_port=best_down,
        )
        self._count(rail, choice, +1)
        self._m_acquired.inc()
        return choice

    def release(self, rail: int, choice: PathChoice) -> None:
        """Return a previously acquired route's load."""
        self._count(rail, choice, -1)

    def reinstate(self, rail: int, choice: PathChoice) -> None:
        """Re-count a released route (rollback of a failed reallocation).

        Unlike :meth:`acquire` this never selects — it restores the load
        of a specific, previously held route so a failed migration
        leaves the books exactly as they were.
        """
        self._count(rail, choice, +1)

    def load_of(self, link_id: tuple) -> int:
        """Current allocated QP count on one link."""
        return self.link_load.get(link_id, 0)

    def links_of(self, rail: int, choice: PathChoice) -> tuple[tuple, tuple]:
        """The (uplink, downlink) fabric link ids a route occupies."""
        return (
            self.topology.leaf_up(rail, choice.src_side, choice.spine, choice.up_port),
            self.topology.spine_down(rail, choice.spine, choice.dst_side, choice.down_port),
        )

    # ------------------------------------------------------------------
    # Snapshot / restore (control-plane journaling)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-safe snapshot: link-id tuples become nested lists."""
        return {
            "link_load": sorted(
                ([list(link), load] for link, load in self.link_load.items()),
                key=repr,
            ),
            "dead_links": sorted([list(link) for link in self.dead_links], key=repr),
            "rr": self._rr,
        }

    def restore_state(self, state: dict) -> None:
        """Replace bookkeeping with a :meth:`snapshot_state` dict."""
        self.link_load = {tuple(link): load for link, load in state["link_load"]}
        self.dead_links = {tuple(link) for link in state["dead_links"]}
        self._rr = state["rr"]
        self._m_dead.set(len(self.dead_links))
        for link, load in self.link_load.items():
            self._m_link_load.labels(link=link).set(load)

    def _count(self, rail: int, choice: PathChoice, delta: int) -> None:
        for link in self.links_of(rail, choice):
            self.link_load[link] = self.link_load.get(link, 0) + delta
            if self.link_load[link] < 0:
                raise AssertionError(f"negative load on {link!r}")
            self._m_link_load.labels(link=link).set(self.link_load[link])
