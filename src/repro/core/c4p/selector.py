"""Per-job C4P client: the PathSelector that asks the master.

Each job's enhanced ACCL "submits path allocation requests to the C4P
master, which replies with the source ports of RDMA connections"
(§III-B).  The selector is that client stub.  Its link-failure behaviour
is the Fig. 12 experiment's knob:

* ``dynamic=False`` — *static traffic engineering*: planned paths at
  start-up only; when a link dies the fabric's own ECMP reconvergence
  moves the displaced flows (clumping onto a few surviving ports,
  Fig. 13a);
* ``dynamic=True`` — the master is notified, displaced QPs are
  re-allocated onto the least-loaded healthy routes, and in-flight
  traffic follows (Fig. 13b's even spread).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import EcmpPathSelector, PathRequest, QpAllocation
from repro.core.c4p.master import C4PMaster
from repro.core.c4p.registry import PathPoolExhausted
from repro.netsim.flows import Flow
from repro.netsim.links import Link


class C4PSelector:
    """PathSelector backed by the shared C4P master."""

    def __init__(
        self,
        master: C4PMaster,
        dynamic: bool = True,
    ) -> None:
        self.master = master
        self.dynamic = dynamic
        self.topology: ClusterTopology = master.topology
        # Static mode falls back to fabric ECMP reconvergence on failure.
        self._ecmp_fallback = EcmpPathSelector(self.topology)

    def allocate(self, request: PathRequest) -> list[QpAllocation]:
        """Request balanced routes from the master."""
        return self.master.allocate(request)

    def release(self, request: PathRequest, allocations: Sequence[QpAllocation]) -> None:
        """Return routes to the master."""
        self.master.release(request, allocations)

    def on_link_down(self, link: Link, flows: Sequence[Flow]) -> None:
        """React to a failed link according to the configured mode."""
        if not self.dynamic:
            # Static traffic engineering: the master blacklists the link
            # for *future* allocations but does not touch placed QPs —
            # the fabric reroutes on its own.
            self.master.notify_link_failure(link.link_id, drain=False)
            self._ecmp_fallback.on_link_down(link, flows)
            return
        report = self.master.notify_link_failure(link.link_id)
        migrated = {alloc.qp_num for alloc in report.migrated}
        stranded = set(report.stranded)
        touched_connections = []
        for flow in flows:
            request: PathRequest | None = flow.metadata.get("request")
            alloc: QpAllocation | None = flow.metadata.get("qp")
            if request is None or alloc is None:
                continue
            if alloc.qp_num in stranded:
                # No healthy route on this plane right now; the QP keeps
                # its books and retries after the next re-probe pass.
                continue
            if alloc.qp_num not in migrated:
                # A flow the drain did not know about (e.g. allocated
                # outside the master); migrate it best-effort.
                try:
                    self.master.reallocate(request, alloc)
                except PathPoolExhausted:
                    continue
            flow.reroute(alloc.path)
            conn = flow.metadata.get("connection")
            if conn is not None and conn not in touched_connections:
                touched_connections.append(conn)
        # Reset affected connections' weights so the dynamic balancer
        # re-converges from even shares on the new routes (Fig. 12b).
        for conn in touched_connections:
            for qp in conn.allocations:
                conn.set_qp_weight(qp, 1.0)
