"""Path probing: catalog healthy paths and the ports that reach them.

"In line with previous art, we utilize path-probing to support global
traffic engineering.  Using this method, we can identify the source
ports that will direct traffic along specific paths and verify the
integrity of those paths" (§III-B).  At start-up the C4P master performs
full-mesh probing via representative servers per leaf, eliminating
faulty leaf-spine links before any job traffic is placed.

The probe mechanics are faithful: for every candidate route the prober
*searches the ephemeral source-port space* for a port whose ECMP hashes
(at the leaf stage and at the spine stage) land on exactly that route,
then checks the route end-to-end.  The discovered port is what the
master later hands to ACCL so the fabric's own hashing reproduces the
planned path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology, PathChoice
from repro.netsim.routing import FiveTuple

#: RoCEv2 destination UDP port used in probe five-tuples.
ROCE_DST_PORT = 4791


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of probing one route on one rail."""

    rail: int
    choice: PathChoice
    src_port: int
    healthy: bool


class PathProber:
    """Full-mesh leaf-spine path verification for one topology."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology

    def find_source_port(
        self,
        src_ip: str,
        dst_ip: str,
        rail: int,
        choice: PathChoice,
        port_range: range = range(49152, 65536),
    ) -> int:
        """Search for a source port steering traffic onto ``choice``.

        The returned port makes the leaf's hash pick (spine, up_port)
        and the spine's hash pick (dst_side, down_port), so unmodified
        switches route the flow along the planned path.  Raises
        ``LookupError`` when no port works (practically impossible for
        real fan-outs; reachable in tests with tiny port ranges).
        """
        spec = self.topology.spec
        up_fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
        down_fanout = 2 * spec.uplink_ports_per_spine
        wanted_up = choice.spine * spec.uplink_ports_per_spine + choice.up_port
        wanted_down = choice.dst_side * spec.uplink_ports_per_spine + choice.down_port
        hasher = self.topology.ecmp
        for port in port_range:
            five_tuple = FiveTuple(
                src_ip=src_ip, dst_ip=dst_ip, src_port=port, dst_port=ROCE_DST_PORT
            )
            up = hasher.choose(five_tuple, up_fanout, stage=f"up:{rail}:{choice.src_side}")
            if up != wanted_up:
                continue
            down = hasher.choose(five_tuple, down_fanout, stage=f"down:{rail}:{choice.spine}")
            if down == wanted_down:
                return port
        raise LookupError(
            f"no source port in {port_range} steers onto {choice} (rail {rail})"
        )

    def reprobe(self, links) -> dict[tuple, bool]:
        """Incrementally verify specific fabric links.

        Re-running :meth:`full_mesh` costs O(routes); runtime fault
        handling only needs the health of the handful of links that are
        quarantined or currently carrying allocations.  Each probe sends
        (in production) a packet over a route pinned to the link; in the
        simulation the verdict is the link's operational state.  Returns
        ``{link_id: healthy}``.
        """
        return {
            link_id: self.topology.network.link(link_id).is_up for link_id in links
        }

    def probe_route(self, rail: int, choice: PathChoice) -> bool:
        """Verify a route's links end-to-end (fabric tier only)."""
        topo = self.topology
        links = [
            topo.leaf_up(rail, choice.src_side, choice.spine, choice.up_port),
            topo.spine_down(rail, choice.spine, choice.dst_side, choice.down_port),
        ]
        return all(topo.network.link(link_id).is_up for link_id in links)

    def full_mesh(self, rail: int, find_ports: bool = False) -> list[ProbeResult]:
        """Probe every route of a rail via representative endpoints.

        One randomly chosen server per leaf suffices in production; the
        simulation uses node 0's NIC addresses, which exercise the same
        links because the fabric tier is shared by all servers of the
        rail.  All routes are probed — including those through
        administratively disabled spines — so the master's catalog
        reflects actual reachability.

        ``find_ports=True`` additionally runs the source-port search for
        every healthy route (slower; the master normally defers the
        search to allocation time).
        """
        spec = self.topology.spec
        nic = rail  # a NIC on this rail
        src_ip = self.topology.node(0).nics[nic].ip_address
        dst_node = min(1, spec.num_nodes - 1)
        dst_ip = self.topology.node(dst_node).nics[nic].ip_address
        results: list[ProbeResult] = []
        for src_side in (0, 1):
            for spine in range(spec.spines_per_rail):
                for up_port in range(spec.uplink_ports_per_spine):
                    for dst_side in (0, 1):
                        for down_port in range(spec.uplink_ports_per_spine):
                            choice = PathChoice(src_side, spine, up_port, dst_side, down_port)
                            healthy = self.probe_route(rail, choice)
                            src_port = -1
                            if healthy and find_ports:
                                src_port = self.find_source_port(src_ip, dst_ip, rail, choice)
                            results.append(
                                ProbeResult(
                                    rail=rail,
                                    choice=choice,
                                    src_port=src_port,
                                    healthy=healthy,
                                )
                            )
        return results
