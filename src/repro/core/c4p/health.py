"""Link health state machine with flap damping for the C4P master.

The paper's C4P evaluation is dominated by *runtime* fabric faults:
Fig. 12 reroutes flows off a leaf-spine link that dies mid-job, and
Fig. 13 shows tolerance to a link that *flaps* — fails, recovers, and
fails again.  A master that re-admits a link the moment a probe succeeds
would chase the flap: every recovery would pull QPs back onto the link
just in time for the next failure.

The tracker below gives each fabric link a three-state lifecycle::

    HEALTHY ──failure──▶ QUARANTINED ──hold-down expires,──▶ PROBATION
       ▲                     ▲          probe succeeds           │
       │                     │                                   │
       │                     └───────────any probe fails─────────┤
       └────────── N consecutive successful probes ──────────────┘

* a failure quarantines the link under an **exponential hold-down**:
  the k-th failure inside ``flap_window`` holds the link out for
  ``hold_down_base * 2**(k-1)`` seconds (capped at ``hold_down_max``),
  so a flapping link stays quarantined longer each time it misbehaves;
* probe results during the hold-down are ignored entirely — a flap's
  "up" half must not count toward recovery;
* once the hold-down expires, the link enters **probation** and must
  pass ``probation_probes`` consecutive incremental probes before the
  master re-admits it; a single failed probe re-quarantines it with an
  escalated hold-down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry


class LinkHealthState(enum.Enum):
    """Where a link stands in the recovery lifecycle."""

    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


@dataclass(frozen=True)
class LinkHealthConfig:
    """Flap-damping tunables.

    Attributes
    ----------
    hold_down_base:
        Quarantine seconds after the first failure in a window.
    hold_down_max:
        Cap on the exponential hold-down.
    flap_window:
        Seconds over which failures count toward hold-down escalation;
        older failures age out.
    probation_probes:
        Consecutive successful probes (after the hold-down) required
        before a link returns to service.
    """

    hold_down_base: float = 30.0
    hold_down_max: float = 480.0
    flap_window: float = 900.0
    probation_probes: int = 3

    def __post_init__(self) -> None:
        if self.hold_down_base <= 0 or self.hold_down_max < self.hold_down_base:
            raise ValueError("need 0 < hold_down_base <= hold_down_max")
        if self.flap_window <= 0:
            raise ValueError("flap_window must be positive")
        if self.probation_probes < 1:
            raise ValueError("probation_probes must be >= 1")


class LinkHealthTracker:
    """Per-link failure history, hold-down timers and probation streaks."""

    def __init__(
        self,
        config: LinkHealthConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or LinkHealthConfig()
        self._state: dict[tuple, LinkHealthState] = {}
        #: Failure timestamps inside the flap window, per link.
        self._failures: dict[tuple, list[float]] = {}
        self._quarantined_until: dict[tuple, float] = {}
        self._streak: dict[tuple, int] = {}
        registry = get_registry(metrics)
        transitions = registry.counter(
            "c4p_link_health_transitions_total",
            "Link health state machine entries per state",
            labels=("state",),
        )
        self._m_transitions = {
            state: transitions.labels(state=state.value) for state in LinkHealthState
        }
        self._m_holddown = registry.histogram(
            "c4p_holddown_seconds", "Hold-down applied per quarantine"
        )

    def _enter(self, link_id: tuple, state: LinkHealthState) -> None:
        """Record a state entry (transitions only, not self-loops)."""
        if self._state.get(link_id, LinkHealthState.HEALTHY) is not state:
            self._m_transitions[state].inc()
        self._state[link_id] = state

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state_of(self, link_id: tuple) -> LinkHealthState:
        """Current lifecycle state (HEALTHY when never seen)."""
        return self._state.get(link_id, LinkHealthState.HEALTHY)

    def quarantined_until(self, link_id: tuple) -> float:
        """End of the current hold-down (``-inf`` when not quarantined)."""
        return self._quarantined_until.get(link_id, float("-inf"))

    def failures_in_window(self, link_id: tuple, now: float) -> int:
        """Failures recorded within the trailing flap window."""
        cutoff = now - self.config.flap_window
        return sum(1 for t in self._failures.get(link_id, ()) if t > cutoff)

    def tracked_links(self) -> list[tuple]:
        """Links currently quarantined or on probation."""
        return [
            link
            for link, state in self._state.items()
            if state is not LinkHealthState.HEALTHY
        ]

    # ------------------------------------------------------------------
    # Snapshot / restore (control-plane journaling)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-safe snapshot: link-id tuples become nested lists."""
        return {
            "state": sorted(
                ([list(link), state.value] for link, state in self._state.items()),
                key=repr,
            ),
            "failures": sorted(
                ([list(link), list(times)] for link, times in self._failures.items()),
                key=repr,
            ),
            "quarantined_until": sorted(
                ([list(link), t] for link, t in self._quarantined_until.items()),
                key=repr,
            ),
            "streak": sorted(
                ([list(link), n] for link, n in self._streak.items()), key=repr
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Replace the state machine with a :meth:`snapshot_state` dict."""
        self._state = {
            tuple(link): LinkHealthState(value) for link, value in state["state"]
        }
        self._failures = {tuple(link): list(times) for link, times in state["failures"]}
        self._quarantined_until = {
            tuple(link): t for link, t in state["quarantined_until"]
        }
        self._streak = {tuple(link): n for link, n in state["streak"]}

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def record_failure(self, link_id: tuple, now: float) -> float:
        """Quarantine a link; returns the hold-down applied (seconds).

        Repeated failures inside the flap window escalate the hold-down
        exponentially — the damping that keeps a flapping link out of
        service instead of letting it oscillate back in.
        """
        cutoff = now - self.config.flap_window
        history = [t for t in self._failures.get(link_id, []) if t > cutoff]
        history.append(now)
        self._failures[link_id] = history
        hold = min(
            self.config.hold_down_base * 2 ** (len(history) - 1),
            self.config.hold_down_max,
        )
        self._enter(link_id, LinkHealthState.QUARANTINED)
        self._quarantined_until[link_id] = now + hold
        self._streak[link_id] = 0
        self._m_holddown.observe(hold)
        return hold

    def record_probe(self, link_id: tuple, now: float, healthy: bool) -> LinkHealthState:
        """Fold one incremental probe result into the state machine."""
        state = self.state_of(link_id)
        if (
            state is LinkHealthState.QUARANTINED
            and now < self._quarantined_until.get(link_id, float("-inf"))
        ):
            # Hold-down: probe results are ignored in both directions, so
            # a flap's transient "up" half cannot start a recovery and a
            # steadily dead link does not escalate once per probe.
            return state
        if not healthy:
            self.record_failure(link_id, now)
            return LinkHealthState.QUARANTINED
        if state is LinkHealthState.QUARANTINED:
            self._enter(link_id, LinkHealthState.PROBATION)
            self._streak[link_id] = 1
        elif state is LinkHealthState.PROBATION:
            self._streak[link_id] = self._streak.get(link_id, 0) + 1
        else:
            return LinkHealthState.HEALTHY
        if self._streak[link_id] >= self.config.probation_probes:
            self._enter(link_id, LinkHealthState.HEALTHY)
            self._quarantined_until.pop(link_id, None)
            self._streak.pop(link_id, None)
            # Failure history is retained: a relapse inside the flap
            # window resumes the escalated hold-down schedule.
            return LinkHealthState.HEALTHY
        return self._state[link_id]
