"""C4P — the C4 Performance subsystem (paper §III-B).

Cluster-scale traffic engineering for collective communication:

1. **path probing** at start-up identifies faulty leaf-spine links and
   catalogues the source ports that steer traffic onto each path,
2. **balanced allocation** spreads RDMA QPs across healthy paths — same
   physical plane end-to-end (left ports never cross to right) and even
   load over all spines,
3. **dynamic load balancing** shifts QP load toward faster paths when
   links fail or congest, using the message completion times ACCL
   continuously measures.
"""

from repro.core.c4p.health import LinkHealthConfig, LinkHealthState, LinkHealthTracker
from repro.core.c4p.load_balance import DynamicLoadBalancer, LoadBalancerConfig
from repro.core.c4p.master import AllocationRecord, C4PMaster, DrainReport, MaintenanceReport
from repro.core.c4p.probing import PathProber, ProbeResult
from repro.core.c4p.registry import PathPoolExhausted, PathRegistry
from repro.core.c4p.selector import C4PSelector

__all__ = [
    "PathRegistry",
    "PathPoolExhausted",
    "PathProber",
    "ProbeResult",
    "LinkHealthConfig",
    "LinkHealthState",
    "LinkHealthTracker",
    "AllocationRecord",
    "C4PMaster",
    "DrainReport",
    "MaintenanceReport",
    "C4PSelector",
    "DynamicLoadBalancer",
    "LoadBalancerConfig",
]
