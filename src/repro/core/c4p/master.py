"""The C4P master: multi-tenant path allocation.

Unlike the single-job C4D master, the C4P master is the control center
for every job in the cluster (Fig. 8): it probes the fabric at start-up,
excludes faulty links, and answers path-allocation requests from every
tenant's ACCL so that

* traffic from a bonded NIC stays in its physical plane (left→left,
  right→right — "forbidding the paths from left ports to right, and
  vice versa"),
* QPs from servers under one leaf spread over all spines, and
* allocation counts stay balanced across every fabric link, across
  jobs.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.cluster.topology import ClusterTopology, PathChoice
from repro.collective.selectors import PathRequest, QpAllocation, ROCE_DST_PORT
from repro.core.c4p.probing import PathProber
from repro.core.c4p.registry import PathRegistry
from repro.netsim.routing import FiveTuple

_qp_counter = itertools.count(500000)


class C4PMaster:
    """Cluster-wide traffic-engineering control plane.

    Parameters
    ----------
    topology:
        The shared cluster.
    enforce_plane:
        Apply the left/right plane-preservation rule (ablation knob;
        disabling it reintroduces the Fig. 9 bonded-port imbalance).
    search_ports:
        When True, each allocation runs the authentic source-port search
        so the returned port would steer an unmodified fabric onto the
        planned route.  When False a synthetic port is stamped (the
        resolved path is identical).  The default (None) enables the
        search only when the fabric's joint hash fan-out is small enough
        that every route is reachable from the 16k-port ephemeral range;
        on larger pods a route's exact (uplink, downlink) pair may have
        no matching port, which is why the production system probes and
        catalogs ports rather than solving for them on demand.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        enforce_plane: bool = True,
        search_ports: bool | None = None,
    ) -> None:
        self.topology = topology
        self.registry = PathRegistry(topology)
        self.prober = PathProber(topology)
        self.enforce_plane = enforce_plane
        if search_ports is None:
            spec = topology.spec
            up_fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
            down_fanout = 2 * spec.uplink_ports_per_spine
            # ~16k ephemeral ports must cover the joint choice space with
            # good probability; keep an 8x margin.
            search_ports = up_fanout * down_fanout <= 2048
        self.search_ports = search_ports
        #: (request key, qp index) bookkeeping for release.
        self._allocated: dict[int, tuple[int, PathChoice]] = {}
        self._synthetic_port = itertools.count(49152)
        self.refresh_catalog()

    # ------------------------------------------------------------------
    # Start-up / maintenance probing
    # ------------------------------------------------------------------
    def refresh_catalog(self) -> None:
        """Probe every rail and rebuild the dead-link catalog."""
        self.registry.dead_links.clear()
        for rail in range(self.topology.spec.rails):
            for result in self.prober.full_mesh(rail):
                if result.healthy:
                    continue
                choice = result.choice
                up = self.topology.leaf_up(rail, choice.src_side, choice.spine, choice.up_port)
                down = self.topology.spine_down(
                    rail, choice.spine, choice.dst_side, choice.down_port
                )
                if not self.topology.network.link(up).is_up:
                    self.registry.mark_dead(up)
                if not self.topology.network.link(down).is_up:
                    self.registry.mark_dead(down)

    def notify_link_failure(self, link_id: tuple) -> None:
        """Out-of-band failure notification (faster than a re-probe)."""
        self.registry.mark_dead(link_id)

    # ------------------------------------------------------------------
    # Allocation API (called by per-job selectors)
    # ------------------------------------------------------------------
    def allocate(self, request: PathRequest) -> list[QpAllocation]:
        """Allocate balanced, plane-preserving routes for a connection."""
        rail = self.topology.rail_of(request.src_nic)
        src_nic_obj = self.topology.node(request.src_node).nics[request.src_nic]
        dst_nic_obj = self.topology.node(request.dst_node).nics[request.dst_nic]
        allocations: list[QpAllocation] = []
        for q in range(request.num_qps):
            side = q % 2
            dst_side = side if self.enforce_plane else (q // 2) % 2
            choice = self.registry.acquire(rail, side, dst_side=dst_side)
            src_port = self._source_port(src_nic_obj.ip_address, dst_nic_obj.ip_address, rail, choice)
            five_tuple = FiveTuple(
                src_ip=src_nic_obj.ip_address,
                dst_ip=dst_nic_obj.ip_address,
                src_port=src_port,
                dst_port=ROCE_DST_PORT,
            )
            path = self.topology.resolve_path(
                request.src_node, request.src_nic, request.dst_node, request.dst_nic, choice
            )
            alloc = QpAllocation(
                qp_num=next(_qp_counter),
                src_port=src_port,
                five_tuple=five_tuple,
                choice=choice,
                path=path,
            )
            self._allocated[alloc.qp_num] = (rail, choice)
            allocations.append(alloc)
        return allocations

    def release(self, request: PathRequest, allocations: Sequence[QpAllocation]) -> None:
        """Return a connection's routes to the pool."""
        for alloc in allocations:
            entry = self._allocated.pop(alloc.qp_num, None)
            if entry is not None:
                rail, choice = entry
                self.registry.release(rail, choice)

    def reallocate(self, request: PathRequest, alloc: QpAllocation) -> QpAllocation:
        """Move one QP onto a fresh healthy route (load-balancer action).

        The QP identity and source plane are preserved; only the fabric
        route (and hence source port) changes.  The old route's load is
        released first so the new acquisition sees accurate counts.
        """
        rail = self.topology.rail_of(request.src_nic)
        entry = self._allocated.pop(alloc.qp_num, None)
        if entry is not None:
            self.registry.release(*entry)
        side = alloc.choice.src_side
        dst_side = side if self.enforce_plane else alloc.choice.dst_side
        choice = self.registry.acquire(rail, side, dst_side=dst_side)
        src_nic_obj = self.topology.node(request.src_node).nics[request.src_nic]
        dst_nic_obj = self.topology.node(request.dst_node).nics[request.dst_nic]
        src_port = self._source_port(
            src_nic_obj.ip_address, dst_nic_obj.ip_address, rail, choice
        )
        alloc.src_port = src_port
        alloc.five_tuple = FiveTuple(
            src_ip=src_nic_obj.ip_address,
            dst_ip=dst_nic_obj.ip_address,
            src_port=src_port,
            dst_port=ROCE_DST_PORT,
        )
        alloc.choice = choice
        alloc.path = self.topology.resolve_path(
            request.src_node, request.src_nic, request.dst_node, request.dst_nic, choice
        )
        self._allocated[alloc.qp_num] = (rail, choice)
        return alloc

    def _source_port(self, src_ip: str, dst_ip: str, rail: int, choice: PathChoice) -> int:
        if not self.search_ports:
            return 49152 + next(self._synthetic_port) % 16384
        try:
            return self.prober.find_source_port(src_ip, dst_ip, rail, choice)
        except LookupError:
            # Rare on small fabrics: this exact (uplink, downlink) pair
            # is unreachable from the ephemeral range for this IP pair.
            # Production would pick the nearest catalogued route; the
            # simulation keeps the planned route and stamps a synthetic
            # port.
            return 49152 + next(self._synthetic_port) % 16384
