"""The C4P master: multi-tenant path allocation and fabric fault tolerance.

Unlike the single-job C4D master, the C4P master is the control center
for every job in the cluster (Fig. 8): it probes the fabric at start-up,
excludes faulty links, and answers path-allocation requests from every
tenant's ACCL so that

* traffic from a bonded NIC stays in its physical plane (left→left,
  right→right — "forbidding the paths from left ports to right, and
  vice versa"),
* QPs from servers under one leaf spread over all spines, and
* allocation counts stay balanced across every fabric link, across
  jobs.

Runtime fault tolerance (the Fig. 12/13 behaviours) is built from three
pieces:

* a **reverse index** (fabric link → allocated QPs) kept alongside the
  allocation table, so a failure can name its victims in O(1);
* **drain-and-migrate** — :meth:`notify_link_failure` and failed
  periodic re-probes move every QP off a dead link onto the
  least-loaded healthy routes (crash-safe: a migration that finds no
  healthy route rolls back and leaves the QP stranded-but-consistent);
* a **link health state machine** with flap damping
  (:mod:`repro.core.c4p.health`): failed links sit out an exponential
  hold-down and must pass consecutive incremental probes before
  :meth:`maintenance` re-admits them — ``registry.dead_links`` is no
  longer a roach motel that only a full catalog rebuild empties.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cluster.topology import ClusterTopology, PathChoice
from repro.collective.selectors import ROCE_DST_PORT, PathRequest, QpAllocation
from repro.core.c4p.health import LinkHealthConfig, LinkHealthState, LinkHealthTracker
from repro.core.c4p.probing import PathProber
from repro.core.c4p.registry import PathPoolExhausted, PathRegistry
from repro.netsim.routing import FiveTuple
from repro.obs.metrics import MetricsRegistry, get_registry

_qp_counter = itertools.count(500000)


@dataclass
class AllocationRecord:
    """Everything needed to migrate one live QP without its owner."""

    rail: int
    request: PathRequest
    alloc: QpAllocation


@dataclass(frozen=True)
class DrainReport:
    """Outcome of draining one dead link."""

    link_id: tuple
    #: Allocations moved onto healthy routes (updated in place).
    migrated: tuple[QpAllocation, ...]
    #: QP numbers left on the dead link (no healthy route existed).
    stranded: tuple[int, ...]


@dataclass(frozen=True)
class MaintenanceReport:
    """Outcome of one periodic incremental re-probe pass."""

    probed: int
    #: Links that failed re-probe this pass (silent failures caught).
    newly_dead: tuple[tuple, ...]
    #: Links re-admitted after hold-down + probation.
    recovered: tuple[tuple, ...]
    migrated_qps: int
    stranded_qps: int
    drains: tuple[DrainReport, ...] = field(default=())


class C4PMaster:
    """Cluster-wide traffic-engineering control plane.

    Parameters
    ----------
    topology:
        The shared cluster.
    enforce_plane:
        Apply the left/right plane-preservation rule (ablation knob;
        disabling it reintroduces the Fig. 9 bonded-port imbalance).
    search_ports:
        When True, each allocation runs the authentic source-port search
        so the returned port would steer an unmodified fabric onto the
        planned route.  When False a synthetic port is stamped (the
        resolved path is identical).  The default (None) enables the
        search only when the fabric's joint hash fan-out is small enough
        that every route is reachable from the 16k-port ephemeral range;
        on larger pods a route's exact (uplink, downlink) pair may have
        no matching port, which is why the production system probes and
        catalogs ports rather than solving for them on demand.
    health_config:
        Flap-damping tunables for the link health state machine.
    link_strike_threshold:
        Distinct connection anomalies (C4D single-cell findings) that
        must implicate a link before the master quarantines it.
    refresh_on_init:
        Probe the fabric and rebuild the dead-link catalog during
        construction (the normal start-up).  Control-plane recovery
        passes False: the catalog is restored from a snapshot instead,
        and a live probe would observe the *current* fabric rather than
        the journaled one.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        enforce_plane: bool = True,
        search_ports: bool | None = None,
        health_config: Optional[LinkHealthConfig] = None,
        link_strike_threshold: int = 2,
        refresh_on_init: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.topology = topology
        obs_registry = get_registry(metrics)
        self.registry = PathRegistry(topology, metrics=obs_registry)
        self.prober = PathProber(topology)
        self.health = LinkHealthTracker(health_config, metrics=obs_registry)
        self.enforce_plane = enforce_plane
        if search_ports is None:
            spec = topology.spec
            up_fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
            down_fanout = 2 * spec.uplink_ports_per_spine
            # ~16k ephemeral ports must cover the joint choice space with
            # good probability; keep an 8x margin.
            search_ports = up_fanout * down_fanout <= 2048
        self.search_ports = search_ports
        if link_strike_threshold < 1:
            raise ValueError("link_strike_threshold must be >= 1")
        self.link_strike_threshold = link_strike_threshold
        #: QP number -> live allocation record.
        self._allocated: dict[int, AllocationRecord] = {}
        #: Reverse index: fabric link id -> QP numbers routed over it.
        self._link_qps: dict[tuple, set[int]] = {}
        #: Link id -> connection keys whose anomalies implicated it.
        self._link_strikes: dict[tuple, set[tuple]] = {}
        #: Called with (request, alloc) after each drain migration, so
        #: transports can reroute in-flight traffic onto the new path.
        self.migration_listener: Optional[
            Callable[[PathRequest, QpAllocation], None]
        ] = None
        #: Synthetic-port counter; a plain int so snapshots capture it.
        self._synthetic_port = 0
        #: QP numbers to hand out before consulting the global counter —
        #: loaded by control-plane replay so recovered allocations keep
        #: their journaled identities.
        self._qp_num_override: deque[int] = deque()
        #: Probe outcomes of the most recent maintenance pass (link id →
        #: healthy), for control-plane journaling.
        self.last_probe_results: dict[tuple, bool] = {}
        self._m_allocations = obs_registry.counter(
            "c4p_allocations_total", "QP routes allocated for tenant connections"
        )
        self._m_releases = obs_registry.counter(
            "c4p_releases_total", "QP routes returned to the pool"
        )
        self._m_reallocations = obs_registry.counter(
            "c4p_reallocations_total", "QPs moved onto a fresh route (drain/balancer)"
        )
        self._m_drains = obs_registry.counter(
            "c4p_drains_total", "Dead links drained of their QPs"
        )
        self._m_migrated = obs_registry.counter(
            "c4p_drained_qps_total", "QPs migrated off dead links", labels=("outcome",)
        )
        self._m_migrated_ok = self._m_migrated.labels(outcome="migrated")
        self._m_migrated_stranded = self._m_migrated.labels(outcome="stranded")
        self._m_quarantines = obs_registry.counter(
            "c4p_link_quarantines_total", "Links excluded and put under hold-down"
        )
        self._m_maintenance = obs_registry.counter(
            "c4p_maintenance_passes_total", "Periodic incremental re-probe passes"
        )
        self._m_probes = obs_registry.counter(
            "c4p_maintenance_probes_total", "Links re-probed by maintenance passes"
        )
        self._m_strikes = obs_registry.counter(
            "c4p_connection_strikes_total",
            "C4D connection anomalies folded into link strike counts",
        )
        if refresh_on_init:
            self.refresh_catalog()

    # ------------------------------------------------------------------
    # Start-up / maintenance probing
    # ------------------------------------------------------------------
    def refresh_catalog(self) -> None:
        """Probe every rail and rebuild the dead-link catalog."""
        now = self.topology.network.now
        self.registry.dead_links.clear()
        for rail in range(self.topology.spec.rails):
            for result in self.prober.full_mesh(rail):
                if result.healthy:
                    continue
                choice = result.choice
                up, down = self.registry.links_of(rail, choice)
                for link in (up, down):
                    if not self.topology.network.link(link).is_up:
                        self._quarantine(link, now)

    def _quarantine(self, link_id: tuple, now: float) -> None:
        """Exclude a link and start (or escalate) its hold-down."""
        self.registry.mark_dead(link_id)
        self._m_quarantines.inc()
        if self.health.state_of(link_id) is not LinkHealthState.QUARANTINED:
            self.health.record_failure(link_id, now)

    def notify_link_failure(
        self, link_id: tuple, now: Optional[float] = None, drain: bool = True
    ) -> DrainReport:
        """Out-of-band failure notification (faster than a re-probe).

        Quarantines the link under the flap-damping hold-down and — when
        ``drain`` is set — immediately migrates every QP routed over it
        (``drain=False`` is the static-traffic-engineering mode, where
        the fabric's own ECMP reconvergence moves displaced flows).
        """
        if now is None:
            now = self.topology.network.now
        self.registry.mark_dead(link_id)
        self._m_quarantines.inc()
        self.health.record_failure(link_id, now)
        if not drain:
            return DrainReport(link_id=link_id, migrated=(), stranded=())
        return self.drain_link(link_id)

    def drain_link(self, link_id: tuple) -> DrainReport:
        """Migrate every QP allocated over a dead link to healthy routes.

        Each victim is reallocated through the crash-safe
        :meth:`reallocate`; QPs for which the plane has no healthy route
        left stay stranded (books untouched) until capacity returns.
        Migrated allocations get their load-balancer weight reset so the
        dynamic balancer re-converges from even shares (Fig. 12b).
        """
        migrated: list[QpAllocation] = []
        stranded: list[int] = []
        for qp_num in sorted(self._link_qps.get(link_id, ())):
            record = self._allocated.get(qp_num)
            if record is None:
                continue
            try:
                self.reallocate(record.request, record.alloc)
            except PathPoolExhausted:
                stranded.append(qp_num)
                continue
            record.alloc.weight = 1.0
            migrated.append(record.alloc)
            if self.migration_listener is not None:
                self.migration_listener(record.request, record.alloc)
        self._m_drains.inc()
        self._m_migrated_ok.inc(len(migrated))
        self._m_migrated_stranded.inc(len(stranded))
        return DrainReport(
            link_id=link_id, migrated=tuple(migrated), stranded=tuple(stranded)
        )

    def maintenance(
        self,
        now: Optional[float] = None,
        probe_results: Optional[dict[tuple, bool]] = None,
    ) -> MaintenanceReport:
        """One incremental re-probe pass: catch silent failures, readmit healed links.

        * every link currently carrying allocations is re-probed; a
          failed probe is treated exactly like an out-of-band failure
          notification (quarantine + drain);
        * every dead link is re-probed through the health state machine;
          links that pass probation are returned to the allocation pool.

        ``probe_results`` (link id → healthy) overrides the live probes;
        control-plane replay passes the journaled outcomes so recovery
        re-derives the pass without touching the current fabric.
        """
        if now is None:
            now = self.topology.network.now
        newly_dead: list[tuple] = []
        recovered: list[tuple] = []
        drains: list[DrainReport] = []

        def probe(links: list[tuple]) -> dict[tuple, bool]:
            if probe_results is not None:
                return {link: probe_results.get(link, True) for link in links}
            return self.prober.reprobe(links)

        active = sorted(
            link
            for link, qps in self._link_qps.items()
            if qps and self.registry.is_usable(link)
        )
        self.last_probe_results = dict(probe(active))
        for link, healthy in self.last_probe_results.items():
            if healthy:
                continue
            newly_dead.append(link)
            drains.append(self.notify_link_failure(link, now))

        dead = sorted(self.registry.dead_links)
        dead_results = probe(dead)
        self.last_probe_results.update(dead_results)
        for link, healthy in dead_results.items():
            state = self.health.record_probe(link, now, healthy)
            if state is LinkHealthState.HEALTHY:
                self.registry.mark_alive(link)
                self._link_strikes.pop(link, None)
                recovered.append(link)
        self._m_maintenance.inc()
        self._m_probes.inc(len(active) + len(dead))
        return MaintenanceReport(
            probed=len(active) + len(dead),
            newly_dead=tuple(newly_dead),
            recovered=tuple(recovered),
            migrated_qps=sum(len(d.migrated) for d in drains),
            stranded_qps=sum(len(d.stranded) for d in drains),
            drains=tuple(drains),
        )

    def attach_to(
        self, network, interval: float = 30.0, until: Optional[float] = None
    ) -> None:
        """Arm periodic :meth:`maintenance` on a simulation event loop."""

        def tick() -> None:
            self.maintenance(network.now)
            if until is None or network.now + interval <= until:
                network.schedule(interval, tick)

        network.schedule(interval, tick)

    # ------------------------------------------------------------------
    # C4D -> C4P: delay-matrix link localization
    # ------------------------------------------------------------------
    def notify_connection_anomaly(
        self,
        src_worker: tuple[int, int],
        dst_worker: tuple[int, int],
        now: Optional[float] = None,
    ) -> tuple[tuple, ...]:
        """Fold a C4D single-cell (connection) anomaly into link health.

        A single hot cell in the delay matrix accuses one connection;
        its QPs cross a handful of fabric links.  One accusation cannot
        disambiguate which of them is sick, so the master counts
        *strikes*: each distinct accused connection adds one strike to
        every fabric link it occupies, and a link implicated by
        ``link_strike_threshold`` distinct connections is quarantined
        and drained — so other tenants stop placing traffic on it.  If
        the accusation was wrong, the periodic re-probe walks the link
        back in through hold-down + probation.

        Returns the links quarantined by this notification.
        """
        if now is None:
            now = self.topology.network.now
        src = tuple(src_worker)
        dst = tuple(dst_worker)
        conn_key = (src, dst)
        links: set[tuple] = set()
        for record in self._allocated.values():
            req = record.request
            if (req.src_node, req.src_nic) != src or (req.dst_node, req.dst_nic) != dst:
                continue
            links.update(self.registry.links_of(record.rail, record.alloc.choice))
        self._m_strikes.inc()
        quarantined: list[tuple] = []
        for link in sorted(links):
            if link in self.registry.dead_links:
                continue
            strikes = self._link_strikes.setdefault(link, set())
            strikes.add(conn_key)
            if len(strikes) >= self.link_strike_threshold:
                self.notify_link_failure(link, now)
                self._link_strikes.pop(link, None)
                quarantined.append(link)
        return tuple(quarantined)

    # ------------------------------------------------------------------
    # Allocation API (called by per-job selectors)
    # ------------------------------------------------------------------
    def allocate(self, request: PathRequest) -> list[QpAllocation]:
        """Allocate balanced, plane-preserving routes for a connection."""
        rail = self.topology.rail_of(request.src_nic)
        src_nic_obj = self.topology.node(request.src_node).nics[request.src_nic]
        dst_nic_obj = self.topology.node(request.dst_node).nics[request.dst_nic]
        allocations: list[QpAllocation] = []
        for q in range(request.num_qps):
            side = q % 2
            dst_side = side if self.enforce_plane else (q // 2) % 2
            choice = self.registry.acquire(rail, side, dst_side=dst_side)
            src_port = self._source_port(src_nic_obj.ip_address, dst_nic_obj.ip_address, rail, choice)
            five_tuple = FiveTuple(
                src_ip=src_nic_obj.ip_address,
                dst_ip=dst_nic_obj.ip_address,
                src_port=src_port,
                dst_port=ROCE_DST_PORT,
            )
            path = self.topology.resolve_path(
                request.src_node, request.src_nic, request.dst_node, request.dst_nic, choice
            )
            alloc = QpAllocation(
                qp_num=self._next_qp_num(),
                src_port=src_port,
                five_tuple=five_tuple,
                choice=choice,
                path=path,
            )
            record = AllocationRecord(rail=rail, request=request, alloc=alloc)
            self._allocated[alloc.qp_num] = record
            self._index(record)
            allocations.append(alloc)
        self._m_allocations.inc(len(allocations))
        return allocations

    def release(self, request: PathRequest, allocations: Sequence[QpAllocation]) -> None:
        """Return a connection's routes to the pool."""
        for alloc in allocations:
            record = self._allocated.pop(alloc.qp_num, None)
            if record is not None:
                self._deindex(record)
                self.registry.release(record.rail, record.alloc.choice)
                self._m_releases.inc()

    def reallocate(self, request: PathRequest, alloc: QpAllocation) -> QpAllocation:
        """Move one QP onto a fresh healthy route (drain / balancer action).

        The QP identity and source plane are preserved; only the fabric
        route (and hence source port) changes.  The old route's load is
        released first so the new acquisition sees accurate counts.

        Crash-safe: when no healthy route exists the old entry is rolled
        back — allocation table, reverse index and link loads all read
        exactly as before the attempt — and :class:`PathPoolExhausted`
        propagates for the caller to handle.
        """
        rail = self.topology.rail_of(request.src_nic)
        record = self._allocated.get(alloc.qp_num)
        if record is not None:
            self._deindex(record)
            self.registry.release(record.rail, record.alloc.choice)
        side = alloc.choice.src_side
        dst_side = side if self.enforce_plane else alloc.choice.dst_side
        try:
            choice = self.registry.acquire(rail, side, dst_side=dst_side)
        except PathPoolExhausted:
            if record is not None:
                self.registry.reinstate(record.rail, record.alloc.choice)
                self._index(record)
            raise
        src_nic_obj = self.topology.node(request.src_node).nics[request.src_nic]
        dst_nic_obj = self.topology.node(request.dst_node).nics[request.dst_nic]
        src_port = self._source_port(
            src_nic_obj.ip_address, dst_nic_obj.ip_address, rail, choice
        )
        alloc.src_port = src_port
        alloc.five_tuple = FiveTuple(
            src_ip=src_nic_obj.ip_address,
            dst_ip=dst_nic_obj.ip_address,
            src_port=src_port,
            dst_port=ROCE_DST_PORT,
        )
        alloc.choice = choice
        alloc.path = self.topology.resolve_path(
            request.src_node, request.src_nic, request.dst_node, request.dst_nic, choice
        )
        if record is None:
            record = AllocationRecord(rail=rail, request=request, alloc=alloc)
        record.rail = rail
        record.request = request
        self._allocated[alloc.qp_num] = record
        self._index(record)
        self._m_reallocations.inc()
        return alloc

    # ------------------------------------------------------------------
    # Reverse-index bookkeeping and introspection
    # ------------------------------------------------------------------
    def _index(self, record: AllocationRecord) -> None:
        for link in self.registry.links_of(record.rail, record.alloc.choice):
            self._link_qps.setdefault(link, set()).add(record.alloc.qp_num)

    def _deindex(self, record: AllocationRecord) -> None:
        for link in self.registry.links_of(record.rail, record.alloc.choice):
            qps = self._link_qps.get(link)
            if qps is not None:
                qps.discard(record.alloc.qp_num)
                if not qps:
                    del self._link_qps[link]

    # ------------------------------------------------------------------
    # Snapshot / restore (control-plane journaling)
    # ------------------------------------------------------------------
    @staticmethod
    def _record_payload(record: AllocationRecord) -> dict:
        req = record.request
        alloc = record.alloc
        ft = alloc.five_tuple
        return {
            "rail": record.rail,
            "request": {
                "comm_id": req.comm_id,
                "job_id": req.job_id,
                "src_node": req.src_node,
                "src_nic": req.src_nic,
                "dst_node": req.dst_node,
                "dst_nic": req.dst_nic,
                "num_qps": req.num_qps,
            },
            "alloc": {
                "qp_num": alloc.qp_num,
                "src_port": alloc.src_port,
                "five_tuple": [ft.src_ip, ft.dst_ip, ft.src_port, ft.dst_port, ft.protocol],
                "choice": [
                    alloc.choice.src_side,
                    alloc.choice.spine,
                    alloc.choice.up_port,
                    alloc.choice.dst_side,
                    alloc.choice.down_port,
                ],
                "path": [list(link) for link in alloc.path],
                "weight": alloc.weight,
            },
        }

    @staticmethod
    def _record_from_payload(payload: dict) -> AllocationRecord:
        alloc = payload["alloc"]
        src_ip, dst_ip, src_port, dst_port, protocol = alloc["five_tuple"]
        return AllocationRecord(
            rail=payload["rail"],
            request=PathRequest(**payload["request"]),
            alloc=QpAllocation(
                qp_num=alloc["qp_num"],
                src_port=alloc["src_port"],
                five_tuple=FiveTuple(
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=src_port,
                    dst_port=dst_port,
                    protocol=protocol,
                ),
                choice=PathChoice(*alloc["choice"]),
                path=[tuple(link) for link in alloc["path"]],
                weight=alloc["weight"],
            ),
        )

    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of all mutable traffic-engineering state."""
        return {
            "registry": self.registry.snapshot_state(),
            "health": self.health.snapshot_state(),
            "allocated": [
                self._record_payload(record)
                for _qp, record in sorted(self._allocated.items())
            ],
            "link_strikes": sorted(
                (
                    [
                        list(link),
                        sorted([[list(src), list(dst)] for src, dst in conns], key=repr),
                    ]
                    for link, conns in self._link_strikes.items()
                ),
                key=repr,
            ),
            "synthetic_port": self._synthetic_port,
        }

    def restore_state(self, state: dict) -> None:
        """Replace mutable state with a :meth:`snapshot_state` dict.

        The reverse index (link → QPs) is derived state and is rebuilt
        from the restored allocation table.
        """
        self.registry.restore_state(state["registry"])
        self.health.restore_state(state["health"])
        self._allocated = {}
        self._link_qps = {}
        for payload in state["allocated"]:
            record = self._record_from_payload(payload)
            self._allocated[record.alloc.qp_num] = record
            self._index(record)
        self._link_strikes = {
            tuple(link): {(tuple(src), tuple(dst)) for src, dst in conns}
            for link, conns in state["link_strikes"]
        }
        self._synthetic_port = state["synthetic_port"]

    def qps_on_link(self, link_id: tuple) -> tuple[int, ...]:
        """QP numbers currently routed over one fabric link."""
        return tuple(sorted(self._link_qps.get(link_id, ())))

    def residual_qps_on_dead_links(self) -> tuple[int, ...]:
        """QPs the master still has placed on links it knows are dead."""
        residual: set[int] = set()
        for link in self.registry.dead_links:
            residual.update(self._link_qps.get(link, ()))
        return tuple(sorted(residual))

    def allocation_count(self) -> int:
        """Live allocations in the table (for invariant checks)."""
        return len(self._allocated)

    def _next_synthetic_port(self) -> int:
        port = 49152 + self._synthetic_port % 16384
        self._synthetic_port += 1
        return port

    def _next_qp_num(self) -> int:
        if self._qp_num_override:
            return self._qp_num_override.popleft()
        return next(_qp_counter)

    def _source_port(self, src_ip: str, dst_ip: str, rail: int, choice: PathChoice) -> int:
        if not self.search_ports:
            return self._next_synthetic_port()
        try:
            return self.prober.find_source_port(src_ip, dst_ip, rail, choice)
        except LookupError:
            # Rare on small fabrics: this exact (uplink, downlink) pair
            # is unreachable from the ephemeral range for this IP pair.
            # Production would pick the nearest catalogued route; the
            # simulation keeps the planned route and stamps a synthetic
            # port.
            return self._next_synthetic_port()
