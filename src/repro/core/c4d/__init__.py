"""C4D — the C4 Diagnose subsystem (paper §III-A).

Detects the four error syndromes that dominate operational AI clusters —
communication hang, non-communication hang, communication slow and
non-communication slow — from the monitoring records of the enhanced
communication library, localizes the faulty component, and drives the
job steering service (isolate, pull in a backup node, restart from the
last checkpoint) while queueing the event for offline root-cause
analysis.
"""

from repro.core.c4d.classifier import CauseBucket, classify_fault
from repro.core.c4d.delay_matrix import (
    DelayMatrix,
    MatrixFinding,
    analyze_delay_matrix,
    build_delay_matrix,
)
from repro.core.c4d.detectors import (
    CommSlowDetector,
    DetectorConfig,
    HangDetector,
    NonCommSlowDetector,
)
from repro.core.c4d.events import Anomaly, AnomalyType, Suspect, SuspectKind
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.rca import RcaReport, RootCauseAnalyzer
from repro.core.c4d.steering import JobSteeringService, SteeringAction, SteeringConfig
from repro.core.c4d.wait_chain import (
    WaitChainFinding,
    analyze_wait_chain,
    analyze_wait_chain_smoothed,
)

__all__ = [
    "Anomaly",
    "AnomalyType",
    "Suspect",
    "SuspectKind",
    "DelayMatrix",
    "MatrixFinding",
    "analyze_delay_matrix",
    "build_delay_matrix",
    "WaitChainFinding",
    "analyze_wait_chain",
    "analyze_wait_chain_smoothed",
    "DetectorConfig",
    "HangDetector",
    "CommSlowDetector",
    "NonCommSlowDetector",
    "C4DMaster",
    "JobSteeringService",
    "SteeringAction",
    "SteeringConfig",
    "RootCauseAnalyzer",
    "RcaReport",
    "classify_fault",
    "CauseBucket",
]
