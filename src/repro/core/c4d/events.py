"""Anomaly events produced by C4D's detectors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class AnomalyType(enum.Enum):
    """The four syndromes C4D distinguishes (paper §III-A)."""

    COMM_HANG = "communication_hang"
    NONCOMM_HANG = "non_communication_hang"
    COMM_SLOW = "communication_slow"
    NONCOMM_SLOW = "non_communication_slow"


class SuspectKind(enum.Enum):
    """Granularity of a localized suspect."""

    NODE = "node"
    WORKER = "worker"  # a (node, gpu/nic) pair
    CONNECTION = "connection"  # a specific worker pair
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Suspect:
    """A localized faulty component.

    ``node`` is always set for NODE/WORKER suspects; ``device`` narrows
    a WORKER suspect to a GPU/NIC index; CONNECTION suspects carry both
    endpoints.
    """

    kind: SuspectKind
    node: Optional[int] = None
    device: Optional[int] = None
    peer_node: Optional[int] = None
    peer_device: Optional[int] = None

    def __str__(self) -> str:
        if self.kind is SuspectKind.NODE:
            return f"node{self.node}"
        if self.kind is SuspectKind.WORKER:
            return f"node{self.node}/dev{self.device}"
        if self.kind is SuspectKind.CONNECTION:
            return (
                f"node{self.node}/dev{self.device} -> "
                f"node{self.peer_node}/dev{self.peer_device}"
            )
        return "unknown"

    def to_payload(self) -> list:
        """JSON-safe form for journaling/snapshotting."""
        return [self.kind.value, self.node, self.device, self.peer_node, self.peer_device]

    @classmethod
    def from_payload(cls, payload: list) -> "Suspect":
        """Rebuild a suspect from its :meth:`to_payload` form."""
        kind, node, device, peer_node, peer_device = payload
        return cls(
            kind=SuspectKind(kind),
            node=node,
            device=device,
            peer_node=peer_node,
            peer_device=peer_device,
        )


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly, ready for steering and offline RCA."""

    anomaly_type: AnomalyType
    comm_id: str
    detected_at: float
    suspects: tuple[Suspect, ...]
    #: Detector-specific quantitative evidence (ratios, wait times, ...).
    evidence: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def suspect_nodes(self) -> list[int]:
        """Distinct nodes implicated by the suspects."""
        nodes = []
        for suspect in self.suspects:
            if suspect.node is not None and suspect.node not in nodes:
                nodes.append(suspect.node)
        return nodes

    def to_payload(self) -> dict:
        """JSON-safe form for journaling/snapshotting.

        ``evidence`` values may contain tuples; they come back as lists,
        which is fine — evidence is excluded from equality (and digests
        canonicalize tuples to lists anyway).
        """
        return {
            "anomaly_type": self.anomaly_type.value,
            "comm_id": self.comm_id,
            "detected_at": self.detected_at,
            "suspects": [s.to_payload() for s in self.suspects],
            "evidence": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.evidence.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Anomaly":
        """Rebuild an anomaly from its :meth:`to_payload` form."""
        return cls(
            anomaly_type=AnomalyType(payload["anomaly_type"]),
            comm_id=payload["comm_id"],
            detected_at=payload["detected_at"],
            suspects=tuple(Suspect.from_payload(s) for s in payload["suspects"]),
            evidence=dict(payload["evidence"]),
        )
