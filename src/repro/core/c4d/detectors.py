"""The four syndrome detectors, reading the central collector.

Each detector implements ``evaluate(now) -> list[Anomaly]``; the C4D
master runs them periodically.  Detectors are pure consumers of
monitoring records — they never look at simulator ground truth, so their
localization accuracy in tests measures the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.c4d.delay_matrix import analyze_delay_matrix, build_delay_matrix
from repro.core.c4d.events import Anomaly, AnomalyType, Suspect, SuspectKind
from repro.core.c4d.wait_chain import analyze_wait_chain, analyze_wait_chain_smoothed
from repro.telemetry.collector import CentralCollector


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds shared by the detectors.

    Attributes
    ----------
    hang_timeout:
        Seconds without collective progress before a hang is declared.
        The paper contrasts its tens-of-seconds reaction with PyTorch's
        up-to-30-minute elastic-agent timeout.
    slow_window:
        Seconds of transport records analyzed per communication-slow
        evaluation.
    slow_threshold:
        Delay-matrix flagging ratio (pair median vs cluster median).
    row_fraction:
        Fraction of a worker's pairs that must be flagged to promote it
        to a worker suspect.
    wait_min_lateness:
        Absolute straggler lateness floor in seconds.
    wait_relative_threshold:
        Robust multiple of launch-time MAD for straggler flagging.
    min_ops_for_slow:
        Minimum completed operations inside the window before slow
        analysis runs (avoids judging from a cold start).
    smooth_window_ops:
        When > 0, the non-communication-slow detector averages per-rank
        lateness over this many recent operations instead of requiring a
        persistent per-operation straggler.  This is the paper's §V
        mitigation for expert-parallel load imbalance: random variation
        averages out, systemic slowness does not.
    debounce_evaluations:
        Consecutive master evaluations an identical anomaly must survive
        before it is reported/acted on.  1 (default) acts immediately;
        higher values filter transients caused by late telemetry — a
        record delayed past one evaluation arrives before the next, the
        suspect set changes, and the debounce counter resets.
    node_action_cooldown:
        Hysteresis on steering: after the master acts on a node, further
        anomalies implicating that node are suppressed for this many
        seconds.  Prevents isolation storms when a flapping fault keeps
        re-crossing the detection threshold.
    slow_hysteresis:
        Communication-slow threshold hysteresis in (0, 1].  Once a
        communicator is flagged slow, it stays flagged until its worst
        ratio drops below ``slow_threshold * slow_hysteresis`` — a
        flapping link hovering at the threshold cannot toggle the
        detector every window.  1.0 disables hysteresis.
    """

    hang_timeout: float = 30.0
    slow_window: float = 60.0
    slow_threshold: float = 1.8
    row_fraction: float = 0.6
    wait_min_lateness: float = 0.05
    wait_relative_threshold: float = 3.0
    min_ops_for_slow: int = 2
    smooth_window_ops: int = 0
    debounce_evaluations: int = 1
    node_action_cooldown: float = 0.0
    slow_hysteresis: float = 1.0


class HangDetector:
    """Detects communication and non-communication hangs.

    ``name`` labels this detector's observability series
    (``c4d_detector_eval_seconds{detector=...}`` etc.).

    A communicator whose launches have stopped producing completions for
    longer than ``hang_timeout``:

    * ranks whose startup record for the stuck sequence is missing never
      reached the collective → **non-communication hang**, localized to
      exactly those workers;
    * all ranks launched but none completed → **communication hang**
      (network-level), reported at communicator scope.
    """

    name = "hang"

    def __init__(self, collector: CentralCollector, config: DetectorConfig) -> None:
        self.collector = collector
        self.config = config

    def evaluate(self, now: float) -> list[Anomaly]:
        """Check every communicator for stalled progress."""
        anomalies: list[Anomaly] = []
        for comm_id in self.collector.comm_ids():
            progress = self.collector.progress[comm_id]
            launched = progress.max_launch_seq
            completed = progress.min_seq
            if launched <= completed:
                continue  # no op outstanding
            stall_reference = max(progress.last_completion_time, progress.created_at)
            stalled_for = now - stall_reference
            if stalled_for < self.config.hang_timeout:
                continue
            stuck_seq = launched
            launch_records = self.collector.launches_for_seq(comm_id, stuck_seq)
            launched_ranks = {r.rank for r in launch_records}
            all_ranks = set(range(progress.record.size))
            missing = sorted(all_ranks - launched_ranks)
            if missing:
                suspects = tuple(
                    Suspect(
                        kind=SuspectKind.WORKER,
                        node=progress.record.ranks[rank].node,
                        device=progress.record.ranks[rank].gpu,
                    )
                    for rank in missing
                )
                anomaly_type = AnomalyType.NONCOMM_HANG
            else:
                suspects = (Suspect(kind=SuspectKind.UNKNOWN),)
                anomaly_type = AnomalyType.COMM_HANG
            anomalies.append(
                Anomaly(
                    anomaly_type=anomaly_type,
                    comm_id=comm_id,
                    detected_at=now,
                    suspects=suspects,
                    evidence={"stalled_for": stalled_for, "stuck_seq": stuck_seq},
                )
            )
        return anomalies


class CommSlowDetector:
    """Detects communication slowdowns via the delay matrix (Fig. 7).

    With ``slow_hysteresis`` < 1 the detector is stateful: a flagged
    communicator keeps being analyzed against the lowered threshold
    until it genuinely clears, so a ratio hovering right at the
    threshold cannot produce an on/off anomaly stream.
    """

    name = "comm_slow"

    def __init__(self, collector: CentralCollector, config: DetectorConfig) -> None:
        self.collector = collector
        self.config = config
        #: Communicators currently inside a slow episode (hysteresis).
        self._active: set[str] = set()

    def _threshold_for(self, comm_id: str) -> float:
        threshold = self.config.slow_threshold
        if comm_id in self._active:
            threshold *= self.config.slow_hysteresis
        return threshold

    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of the hysteresis state."""
        return {"active": sorted(self._active)}

    def restore_state(self, state: dict) -> None:
        """Replace hysteresis state with a :meth:`snapshot_state` dict."""
        self._active = set(state["active"])

    def evaluate(self, now: float) -> list[Anomaly]:
        """Analyze each communicator's recent transport records."""
        anomalies: list[Anomaly] = []
        since = now - self.config.slow_window
        for comm_id in self.collector.comm_ids():
            records = self.collector.messages(comm_id, since=since)
            if not records:
                continue
            seqs = {r.seq for r in records}
            if len(seqs) < self.config.min_ops_for_slow:
                continue
            matrix = build_delay_matrix(records)
            finding = analyze_delay_matrix(
                matrix,
                threshold=self._threshold_for(comm_id),
                row_fraction=self.config.row_fraction,
            )
            if not finding.is_anomalous or not finding.suspects:
                self._active.discard(comm_id)
                continue
            self._active.add(comm_id)
            anomalies.append(
                Anomaly(
                    anomaly_type=AnomalyType.COMM_SLOW,
                    comm_id=comm_id,
                    detected_at=now,
                    suspects=finding.suspects,
                    evidence={
                        "baseline": finding.baseline,
                        "max_ratio": finding.max_ratio,
                        "flagged_pairs": finding.flagged_pairs,
                    },
                )
            )
        return anomalies


class NonCommSlowDetector:
    """Detects compute/data-loading stragglers via wait chains."""

    name = "noncomm_slow"

    def __init__(self, collector: CentralCollector, config: DetectorConfig) -> None:
        self.collector = collector
        self.config = config

    def evaluate(self, now: float) -> list[Anomaly]:
        """Analyze the most recent completed operations per communicator."""
        anomalies: list[Anomaly] = []
        for comm_id in self.collector.comm_ids():
            if self.config.smooth_window_ops > 0:
                anomaly = self._evaluate_smoothed(comm_id, now)
            else:
                anomaly = self._evaluate_persistent(comm_id, now)
            if anomaly is not None:
                anomalies.append(anomaly)
        return anomalies

    def _evaluate_persistent(self, comm_id: str, now: float) -> Optional[Anomaly]:
        """Default mode: the same straggler in every recent operation."""
        recent_seqs = self.collector.latest_seqs(comm_id, self.config.min_ops_for_slow)
        if len(recent_seqs) < self.config.min_ops_for_slow:
            return None
        # Require the straggler to persist over all examined ops so a
        # single benign hiccup is not escalated.
        per_seq_suspects: list[set[Suspect]] = []
        lateness = 0.0
        for seq in recent_seqs:
            records = self.collector.ops_for_seq(comm_id, seq)
            finding = analyze_wait_chain(
                records,
                min_lateness=self.config.wait_min_lateness,
                relative_threshold=self.config.wait_relative_threshold,
            )
            per_seq_suspects.append(set(finding.suspects))
            lateness = max(lateness, finding.lateness)
        persistent = set.intersection(*per_seq_suspects) if per_seq_suspects else set()
        if not persistent:
            return None
        return Anomaly(
            anomaly_type=AnomalyType.NONCOMM_SLOW,
            comm_id=comm_id,
            detected_at=now,
            suspects=tuple(sorted(persistent, key=str)),
            evidence={"lateness": lateness, "seqs": tuple(recent_seqs)},
        )

    def _evaluate_smoothed(self, comm_id: str, now: float) -> Optional[Anomaly]:
        """Smoothed mode: averaged lateness over the window (EP-friendly)."""
        recent_seqs = self.collector.latest_seqs(comm_id, self.config.smooth_window_ops)
        if len(recent_seqs) < self.config.smooth_window_ops:
            return None
        groups = [self.collector.ops_for_seq(comm_id, seq) for seq in recent_seqs]
        finding = analyze_wait_chain_smoothed(
            groups,
            min_lateness=self.config.wait_min_lateness,
            relative_threshold=self.config.wait_relative_threshold,
        )
        if not finding.is_anomalous:
            return None
        return Anomaly(
            anomaly_type=AnomalyType.NONCOMM_SLOW,
            comm_id=comm_id,
            detected_at=now,
            suspects=finding.suspects,
            evidence={
                "lateness": finding.lateness,
                "seqs": tuple(recent_seqs),
                "smoothed": True,
            },
        )
