"""The C4D master: periodic evaluation, dedup, steering and RCA hand-off.

Wires the detectors over the central collector (Fig. 5's architecture):
``evaluate(now)`` runs all detectors, suppresses repeats of anomalies it
has already acted on, forwards fresh ones to the steering service
(isolate + restart) and to the offline root-cause analyzer.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.c4d.detectors import (
    CommSlowDetector,
    DetectorConfig,
    HangDetector,
    NonCommSlowDetector,
)
from repro.core.c4d.events import Anomaly, AnomalyType, Suspect, SuspectKind
from repro.core.c4d.rca import RootCauseAnalyzer
from repro.core.c4d.steering import JobSteeringService, SteeringAction
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.telemetry.collector import CentralCollector


class C4DMaster:
    """Central anomaly-detection master for one job.

    Parameters
    ----------
    collector:
        The telemetry store fed by the C4 agents.
    config:
        Detector thresholds.
    steering:
        Optional steering service; when present, fresh anomalies trigger
        isolate-and-restart automatically.
    rca:
        Optional offline analyzer receiving every fresh anomaly.
    cooldown:
        Seconds during which an identical (type, comm, suspects) anomaly
        is not re-reported — detection is continuous, action is not.
    c4p:
        Optional C4P master (any object with
        ``notify_connection_anomaly(src, dst, now)``).  When the delay
        matrix localizes a *connection* (a single hot cell implicating
        one worker pair rather than a whole row/column), the fault is a
        fabric property, not a compute one — so the C4D master forwards
        it to the traffic-engineering plane, which strike-counts the
        links under that connection and quarantines the implicated one
        so other tenants stop placing traffic on it.

    Two robustness gates (configured via :class:`DetectorConfig`) sit in
    front of reporting:

    * **debounce** — an anomaly must be observed in
      ``debounce_evaluations`` *consecutive* evaluations before it
      passes.  Late telemetry produces one-evaluation ghosts (a launch
      record in flight looks like a missing rank); genuine faults
      persist.
    * **node-action hysteresis** — after steering acts on a node,
      anomalies implicating it are suppressed for
      ``node_action_cooldown`` seconds, so a flapping fault cannot
      drive repeated isolations of the same episode.
    """

    def __init__(
        self,
        collector: CentralCollector,
        config: Optional[DetectorConfig] = None,
        steering: Optional[JobSteeringService] = None,
        rca: Optional[RootCauseAnalyzer] = None,
        cooldown: float = 300.0,
        c4p=None,
        degraded_coverage_threshold: float = 0.6,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self.collector = collector
        self.config = config or DetectorConfig()
        self.steering = steering
        self.rca = rca
        self.c4p = c4p
        self.cooldown = cooldown
        #: Below this telemetry coverage fraction the master is in
        #: degraded mode: verdicts are recorded with scaled-down
        #: confidence but not acted on (a blackout must cost detection
        #: latency, not a false-isolation storm).
        self.degraded_coverage_threshold = degraded_coverage_threshold
        #: Fencing epoch stamped onto steering dispatches; bumped by the
        #: control plane on every recovery/failover.
        self.epoch = 0
        #: Optional :class:`~repro.obs.trace.FaultTracer`; fresh
        #: anomalies and steering actions are reported to it so fault
        #: spans get their ``detect``/``steer``/``recover`` stages.
        self.tracer = tracer
        self.detectors = [
            HangDetector(collector, self.config),
            CommSlowDetector(collector, self.config),
            NonCommSlowDetector(collector, self.config),
        ]
        self.anomalies: list[Anomaly] = []
        self.actions: list[SteeringAction] = []
        #: Verdicts withheld because the master was in degraded mode.
        self.degraded_anomalies: list[Anomaly] = []
        self._last_reported: dict[tuple, float] = {}
        #: Debounce state: anomaly key -> (consecutive count, eval index
        #: of the last sighting).
        self._pending: dict[tuple, tuple[int, int]] = {}
        self._eval_index = 0
        #: Node -> time of the last steering action implicating it.
        self._node_last_action: dict[int, float] = {}
        registry = get_registry(metrics)
        self._m_evals = registry.counter(
            "c4d_evaluations_total", "Master evaluation passes"
        )
        self._m_eval_seconds = registry.histogram(
            "c4d_detector_eval_seconds",
            "Wall-clock time of one detector's evaluate()",
            labels=("detector",),
        )
        self._m_verdicts = registry.counter(
            "c4d_detector_verdicts_total",
            "Raw anomalies emitted by detectors (before gates)",
            labels=("detector",),
        )
        suppressed = registry.counter(
            "c4d_suppressions_total",
            "Anomalies swallowed by a robustness gate",
            labels=("gate",),
        )
        self._m_suppressed = {
            gate: suppressed.labels(gate=gate)
            for gate in ("debounce", "cooldown", "node_cooldown", "degraded")
        }
        self._m_anomalies = registry.counter(
            "c4d_anomalies_total", "Fresh anomalies acted on", labels=("type",)
        )
        self._m_actions = registry.counter(
            "c4d_steering_dispatch_total", "Anomalies handed to the steering service"
        )

    def _debounced(self, key: tuple) -> bool:
        """Count a sighting; True once it persisted long enough."""
        required = self.config.debounce_evaluations
        if required <= 1:
            return True
        count, last_eval = self._pending.get(key, (0, -2))
        count = count + 1 if last_eval == self._eval_index - 1 else 1
        self._pending[key] = (count, self._eval_index)
        return count >= required

    def _node_in_cooldown(self, anomaly: Anomaly, now: float) -> bool:
        """Hysteresis: every implicated node was recently acted on."""
        if self.config.node_action_cooldown <= 0:
            return False
        nodes = anomaly.suspect_nodes
        if not nodes:
            return False
        return all(
            now - self._node_last_action.get(node, float("-inf"))
            < self.config.node_action_cooldown
            for node in nodes
        )

    def evaluate(
        self,
        now: float,
        coverage: Optional[float] = None,
        blind_nodes=None,
    ) -> list[Anomaly]:
        """Run all detectors; act on and return fresh anomalies.

        ``coverage`` (fraction of registered agents with live leases)
        and ``blind_nodes`` (nodes whose leases expired) put the master
        in degraded mode: when coverage drops below
        ``degraded_coverage_threshold``, or every suspect of a verdict
        is a blind node, the verdict is recorded in
        ``degraded_anomalies`` with its confidence scaled to the
        coverage but never dispatched to steering — silence from dead
        agents is indistinguishable from a hang, and acting on it would
        be a false-isolation storm.
        """
        self._eval_index += 1
        self._m_evals.inc()
        fresh: list[Anomaly] = []
        for detector in self.detectors:
            # Stub/custom detectors need not declare a metric label name.
            label = getattr(detector, "name", type(detector).__name__)
            # Wall clock is observability-only here: it times the
            # detector's own compute for the eval-latency histogram and
            # never feeds simulated time or verdict logic.
            started = time.perf_counter()  # repro: noqa[SIM001]
            verdicts = detector.evaluate(now)
            self._m_eval_seconds.labels(detector=label).observe(
                time.perf_counter() - started  # repro: noqa[SIM001]
            )
            if verdicts:
                self._m_verdicts.labels(detector=label).inc(len(verdicts))
            for anomaly in verdicts:
                key = (anomaly.anomaly_type, anomaly.comm_id, anomaly.suspects)
                if not self._debounced(key):
                    self._m_suppressed["debounce"].inc()
                    continue
                last = self._last_reported.get(key)
                if last is not None and now - last < self.cooldown:
                    self._m_suppressed["cooldown"].inc()
                    continue
                self._last_reported[key] = now
                fresh.append(anomaly)
        fresh = self._aggregate_by_node(fresh, now)
        gated = [a for a in fresh if not self._node_in_cooldown(a, now)]
        self._m_suppressed["node_cooldown"].inc(len(fresh) - len(gated))
        fresh = gated
        if coverage is not None or blind_nodes:
            blind = set(blind_nodes or ())
            low_coverage = (
                coverage is not None and coverage < self.degraded_coverage_threshold
            )
            confident: list[Anomaly] = []
            for anomaly in fresh:
                nodes = anomaly.suspect_nodes
                all_blind = bool(nodes) and bool(blind) and all(
                    node in blind for node in nodes
                )
                if low_coverage or all_blind:
                    # evidence is compare/hash-excluded, so annotating
                    # in place is safe on the frozen dataclass.
                    anomaly.evidence["confidence"] = (
                        coverage if coverage is not None else 0.0
                    )
                    anomaly.evidence["degraded"] = True
                    self.degraded_anomalies.append(anomaly)
                    self._m_suppressed["degraded"].inc()
                    continue
                confident.append(anomaly)
            fresh = confident
        for anomaly in fresh:
            self.anomalies.append(anomaly)
            self._m_anomalies.labels(type=anomaly.anomaly_type.value).inc()
            if self.tracer is not None:
                self.tracer.detection(
                    now, anomaly.suspect_nodes, kind=anomaly.anomaly_type.value
                )
            if self.rca is not None:
                self.rca.submit(anomaly)
            if self.c4p is not None:
                self._forward_connection_suspects(anomaly, now)
            if self.steering is not None and anomaly.anomaly_type in (
                AnomalyType.COMM_HANG,
                AnomalyType.NONCOMM_HANG,
                AnomalyType.COMM_SLOW,
                AnomalyType.NONCOMM_SLOW,
            ):
                for node in anomaly.suspect_nodes:
                    self._node_last_action[node] = now
                self._m_actions.inc()
                action = self.steering.handle(anomaly, now, epoch=self.epoch)
                if action is None:
                    # Duplicate verdict (same fault key inside the
                    # dedup window) — already executed, nothing to do.
                    continue
                self.actions.append(action)
                if self.tracer is not None:
                    targets = set(action.isolated_nodes) | set(anomaly.suspect_nodes)
                    self.tracer.action(now, tuple(targets), ready_at=action.ready_at)
        return fresh

    def _forward_connection_suspects(self, anomaly: Anomaly, now: float) -> None:
        """C4D → C4P: hand single-cell (connection) findings to traffic engineering."""
        if anomaly.anomaly_type is not AnomalyType.COMM_SLOW:
            return
        for suspect in anomaly.suspects:
            if suspect.kind is not SuspectKind.CONNECTION:
                continue
            if suspect.node is None or suspect.peer_node is None:
                continue
            self.c4p.notify_connection_anomaly(
                (suspect.node, suspect.device or 0),
                (suspect.peer_node, suspect.peer_device or 0),
                now,
            )

    @staticmethod
    def _aggregate_by_node(fresh: list[Anomaly], now: float) -> list[Anomaly]:
        """Fuse same-type anomalies implicating one node across comms.

        A faulty node hosts ranks of many communicators (e.g. one per DP
        group), so a single hardware problem surfaces as several
        per-communicator anomalies in the same evaluation.  The master
        holds the cluster-wide view, so it promotes such clusters to one
        NODE-scoped anomaly — the unit the steering service acts on.
        """
        groups: dict[tuple, list[Anomaly]] = {}
        passthrough: list[Anomaly] = []
        for anomaly in fresh:
            nodes = anomaly.suspect_nodes
            if len(nodes) == 1:
                groups.setdefault((anomaly.anomaly_type, nodes[0]), []).append(anomaly)
            else:
                passthrough.append(anomaly)
        result = list(passthrough)
        for (anomaly_type, node), members in groups.items():
            if len(members) < 2:
                result.extend(members)
                continue
            result.append(
                Anomaly(
                    anomaly_type=anomaly_type,
                    comm_id="<multiple>",
                    detected_at=now,
                    suspects=(Suspect(kind=SuspectKind.NODE, node=node),),
                    evidence={
                        "comm_ids": tuple(m.comm_id for m in members),
                        "member_suspects": tuple(
                            str(s) for m in members for s in m.suspects
                        ),
                    },
                )
            )
        return result

    # ------------------------------------------------------------------
    # Snapshot / restore (control-plane journaling)
    # ------------------------------------------------------------------
    @staticmethod
    def _key_payload(key: tuple) -> list:
        anomaly_type, comm_id, suspects = key
        return [anomaly_type.value, comm_id, [s.to_payload() for s in suspects]]

    @staticmethod
    def _key_from_payload(payload: list) -> tuple:
        type_value, comm_id, suspects = payload
        return (
            AnomalyType(type_value),
            comm_id,
            tuple(Suspect.from_payload(s) for s in suspects),
        )

    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of the master's mutable detection state.

        The fencing ``epoch`` is deliberately excluded: it identifies
        *which incarnation* holds the state, not the state itself, so a
        recovered master with a bumped epoch still digests identically.
        """
        return {
            "anomalies": [a.to_payload() for a in self.anomalies],
            "actions": [a.to_payload() for a in self.actions],
            "degraded_anomalies": [a.to_payload() for a in self.degraded_anomalies],
            "last_reported": sorted(
                ([self._key_payload(key), t] for key, t in self._last_reported.items()),
                key=repr,
            ),
            "pending": sorted(
                (
                    [self._key_payload(key), [count, last_eval]]
                    for key, (count, last_eval) in self._pending.items()
                ),
                key=repr,
            ),
            "eval_index": self._eval_index,
            "node_last_action": sorted(self._node_last_action.items()),
            "detectors": {
                detector.name: detector.snapshot_state()
                for detector in self.detectors
                if hasattr(detector, "snapshot_state")
            },
        }

    def restore_state(self, state: dict) -> None:
        """Replace mutable state with a :meth:`snapshot_state` dict."""
        self.anomalies = [Anomaly.from_payload(p) for p in state["anomalies"]]
        self.actions = [SteeringAction.from_payload(p) for p in state["actions"]]
        self.degraded_anomalies = [
            Anomaly.from_payload(p) for p in state["degraded_anomalies"]
        ]
        self._last_reported = {
            self._key_from_payload(key): t for key, t in state["last_reported"]
        }
        self._pending = {
            self._key_from_payload(key): (count, last_eval)
            for key, (count, last_eval) in state["pending"]
        }
        self._eval_index = state["eval_index"]
        self._node_last_action = {node: t for node, t in state["node_last_action"]}
        for detector in self.detectors:
            snapshot = state["detectors"].get(getattr(detector, "name", ""))
            if snapshot is not None and hasattr(detector, "restore_state"):
                detector.restore_state(snapshot)

    def attach_to(self, network, interval: float = 10.0, until: Optional[float] = None) -> None:
        """Schedule periodic evaluation on a simulation event loop.

        ``network`` is a :class:`~repro.netsim.network.FlowNetwork`; the
        master re-arms itself every ``interval`` simulated seconds until
        ``until`` (or indefinitely while other events keep the loop
        alive).
        """

        def tick() -> None:
            self.evaluate(network.now)
            if until is None or network.now + interval <= until:
                network.schedule(interval, tick)

        network.schedule(interval, tick)
