"""Job steering: isolate faulty nodes, pull in backups, restart.

Reproduces the paper's recovery loop (Fig. 4): once the master localizes
an anomaly, the steering service isolates the implicated nodes, draws
replacements from the backup pool (the paper provisions 64 backup GPUs
per 1,024 — 8 spare servers per 128), and restarts the job from the most
recent valid checkpoint.  The action latencies are explicit parameters
because they are exactly the downtime components Table III accounts:
detection is C4D's tens of seconds, isolation and restart are the
steering service's minutes.

The hardened service (chaos harness) additionally survives the steering
actions themselves misbehaving: an isolation RPC can time out and is
retried with capped exponential backoff, a replacement drawn from the
backup pool can be dead on arrival (the next spare is drawn and the
waste is recorded), and backup-pool exhaustion is surfaced as a
structured field on the action instead of the silent
replacements-shorter-than-isolations convention.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.core.c4d.events import Anomaly
from repro.obs.metrics import MetricsRegistry, get_registry

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SteeringConfig:
    """Latencies and retry policy of the automated recovery pipeline.

    Defaults follow §IV-B: C4D cuts detection+localization "to mere tens
    of seconds", while "additional minutes are still required by the
    steering service to isolate the affected nodes and restart the job".

    Attributes
    ----------
    isolation_seconds / restart_seconds:
        Happy-path action latencies.
    max_isolation_attempts:
        Tries per node before the isolation is abandoned (the node stays
        in the job; the operator is paged via ``failed_isolations``).
    backoff_base_seconds / backoff_cap_seconds:
        Capped exponential backoff between isolation retries: attempt
        ``k`` waits ``min(base * 2**k, cap)`` seconds.
    """

    isolation_seconds: float = 120.0
    restart_seconds: float = 180.0
    max_isolation_attempts: int = 3
    backoff_base_seconds: float = 15.0
    backoff_cap_seconds: float = 120.0

    def retry_backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        return min(
            self.backoff_base_seconds * (2.0 ** attempt), self.backoff_cap_seconds
        )


@dataclass(frozen=True)
class SteeringFaultModel:
    """Failure injection for the steering actions themselves.

    Attributes
    ----------
    isolation_failure_rate:
        Probability one isolation attempt times out.
    replacement_doa_rate:
        Probability a backup node is dead on arrival (fails its health
        check when pulled from the pool).
    seed:
        Seed for the model's private RNG.
    """

    isolation_failure_rate: float = 0.0
    replacement_doa_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.isolation_failure_rate < 1.0:
            raise ValueError("isolation_failure_rate must be in [0, 1)")
        if not 0.0 <= self.replacement_doa_rate < 1.0:
            raise ValueError("replacement_doa_rate must be in [0, 1)")
        # Frozen dataclass: stash the RNG via object.__setattr__.
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    def isolation_fails(self) -> bool:
        """Sample one isolation attempt's outcome."""
        return bool(self._rng.random() < self.isolation_failure_rate)

    def replacement_dead(self) -> bool:
        """Sample one replacement's arrival health."""
        return bool(self._rng.random() < self.replacement_doa_rate)


@dataclass(frozen=True)
class SteeringAction:
    """The outcome of handling one anomaly."""

    anomaly: Anomaly
    isolated_nodes: tuple[int, ...]
    replacement_nodes: tuple[int, ...]
    #: When the job is running again (isolation + retries + restart done).
    ready_at: float
    #: True when the backup pool could not cover every isolation — the
    #: job must restart on a shrunk world.
    pool_exhausted: bool = False
    #: Total isolation attempts across all nodes (1 per node when no
    #: injected steering faults fire).
    attempts: int = 0
    #: Extra delay paid to isolation retries, included in ``ready_at``.
    backoff_seconds: float = 0.0
    #: Backups drawn but dead on arrival (wasted spares).
    doa_replacements: tuple[int, ...] = ()
    #: Nodes whose isolation failed every attempt (still in the job).
    failed_isolations: tuple[int, ...] = ()

    def to_payload(self) -> dict:
        """JSON-safe form for journaling/snapshotting."""
        return {
            "anomaly": self.anomaly.to_payload(),
            "isolated_nodes": list(self.isolated_nodes),
            "replacement_nodes": list(self.replacement_nodes),
            "ready_at": self.ready_at,
            "pool_exhausted": self.pool_exhausted,
            "attempts": self.attempts,
            "backoff_seconds": self.backoff_seconds,
            "doa_replacements": list(self.doa_replacements),
            "failed_isolations": list(self.failed_isolations),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SteeringAction":
        """Rebuild an action from its :meth:`to_payload` form."""
        return cls(
            anomaly=Anomaly.from_payload(payload["anomaly"]),
            isolated_nodes=tuple(payload["isolated_nodes"]),
            replacement_nodes=tuple(payload["replacement_nodes"]),
            ready_at=payload["ready_at"],
            pool_exhausted=payload["pool_exhausted"],
            attempts=payload["attempts"],
            backoff_seconds=payload["backoff_seconds"],
            doa_replacements=tuple(payload["doa_replacements"]),
            failed_isolations=tuple(payload["failed_isolations"]),
        )


def fault_key(anomaly: Anomaly) -> tuple:
    """Stable identity of the physical fault behind an anomaly.

    Two verdicts implicating the same node set (or, node-less, the same
    communicator) describe the same fault — a restarted or replayed
    master re-deriving the verdict must not re-execute it.
    """
    nodes = tuple(sorted(anomaly.suspect_nodes))
    if nodes:
        return (anomaly.anomaly_type.value, nodes)
    return ("comm", anomaly.comm_id)


class JobSteeringService:
    """Automated isolate-and-restart driven by C4D anomalies.

    Parameters
    ----------
    topology:
        The cluster whose nodes are isolated/replaced.
    backup_nodes:
        Node ids reserved as spares (not used by running jobs).
    config:
        Action latencies and retry policy.
    faults:
        Optional failure injection for the steering actions themselves
        (chaos campaigns); ``None`` gives the happy path.
    dedup_window:
        Seconds during which a second verdict for the same fault key is
        treated as a duplicate and suppressed, whatever its epoch — a
        restarted master re-deriving an already-executed verdict must
        not re-isolate.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        backup_nodes: list[int],
        config: Optional[SteeringConfig] = None,
        faults: Optional[SteeringFaultModel] = None,
        dedup_window: float = 900.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.topology = topology
        self.backup_pool: list[int] = list(backup_nodes)
        self.config = config or SteeringConfig()
        self.faults = faults
        self.dedup_window = dedup_window
        #: Logical action history: every action this service decided,
        #: including ones reconstructed from a journal during replay.
        #: Part of the recovery state digest.
        self.actions: list[SteeringAction] = []
        #: Actions physically executed by *this process* (topology
        #: mutations actually performed).  Never rebuilt by replay;
        #: excluded from the digest — this is what campaign runners
        #: score and react to.
        self.executed_actions: list[SteeringAction] = []
        #: ``(fault_key, epoch)`` per executed action, for duplicate
        #: accounting across restarts.
        self.executed_log: list[tuple[tuple, int]] = []
        #: fault_key -> (epoch, executed_at, action) for executed
        #: verdicts still inside the dedup window.
        self._executed: dict[tuple, tuple[int, float, SteeringAction]] = {}
        #: Verdicts suppressed as duplicates.
        self.dedup_hits: int = 0
        #: Replay mode: queued reconstructed actions applied as pure
        #: bookkeeping (no topology/RNG side effects).
        self._replay_queue: Optional[list[SteeringAction]] = None
        #: Every node this service ever isolated (for return_to_pool
        #: validation and idempotency).
        self._isolated: set[int] = set()
        registry = get_registry(metrics)
        self._m_actions = registry.counter(
            "steering_actions_total", "Isolate-and-restart actions taken"
        )
        self._m_isolated = registry.counter(
            "steering_nodes_isolated_total", "Nodes successfully isolated"
        )
        self._m_retries = registry.counter(
            "steering_isolation_retries_total", "Isolation attempts beyond the first"
        )
        self._m_failed = registry.counter(
            "steering_isolation_failures_total",
            "Nodes whose isolation failed every attempt",
        )
        self._m_doa = registry.counter(
            "steering_doa_replacements_total", "Backups drawn but dead on arrival"
        )
        self._m_pool_exhausted = registry.counter(
            "steering_pool_exhaustions_total", "Actions that found the backup pool empty"
        )
        self._m_backoff = registry.histogram(
            "steering_backoff_seconds", "Retry backoff paid per action"
        )
        self._m_pool = registry.gauge(
            "steering_backup_pool_size", "Spare nodes currently in the backup pool"
        )
        self._m_pool.set(len(self.backup_pool))

    # ------------------------------------------------------------------
    # Isolation with retries
    # ------------------------------------------------------------------
    def _isolate_with_retries(self, node_id: int) -> tuple[bool, int, float]:
        """Try to isolate one node.

        Returns ``(succeeded, attempts, backoff_paid)``.
        """
        attempts = 0
        backoff = 0.0
        while attempts < self.config.max_isolation_attempts:
            attempts += 1
            if self.faults is None or not self.faults.isolation_fails():
                self.topology.node(node_id).isolate()
                self._isolated.add(node_id)
                return True, attempts, backoff
            if attempts < self.config.max_isolation_attempts:
                backoff += self.config.retry_backoff(attempts - 1)
        logger.warning(
            "isolation of node %d failed after %d attempts; node stays in job",
            node_id,
            attempts,
        )
        return False, attempts, backoff

    def _draw_replacement(self) -> tuple[Optional[int], list[int]]:
        """Pop spares until one passes its arrival health check."""
        doa: list[int] = []
        while self.backup_pool:
            candidate = self.backup_pool.pop(0)
            if self.faults is not None and self.faults.replacement_dead():
                logger.warning("backup node %d dead on arrival; drawing next", candidate)
                self.topology.node(candidate).isolate()
                self._isolated.add(candidate)
                doa.append(candidate)
                continue
            return candidate, doa
        return None, doa

    # ------------------------------------------------------------------
    # Journal replay (control-plane recovery)
    # ------------------------------------------------------------------
    def begin_replay(self, actions: list[SteeringAction]) -> None:
        """Enter replay mode with the journaled actions still to re-apply.

        While replaying, :meth:`handle` pops the next queued action and
        applies *bookkeeping only* — pool/idempotency state — without
        touching the topology or any RNG: the physical side effects
        already happened before the crash.
        """
        self._replay_queue = list(actions)

    def end_replay(self) -> None:
        """Leave replay mode (queue must be fully consumed)."""
        leftover = self._replay_queue
        self._replay_queue = None
        if leftover:
            raise RuntimeError(
                f"{len(leftover)} journaled steering action(s) were never "
                "re-derived during replay; journal and detector state disagree"
            )

    def _apply_replayed(
        self, action: SteeringAction, now: float, epoch: int
    ) -> SteeringAction:
        """Bookkeeping for a journaled action: no topology/RNG effects."""
        drawn = set(action.replacement_nodes) | set(action.doa_replacements)
        self.backup_pool = [n for n in self.backup_pool if n not in drawn]
        self._isolated.update(action.isolated_nodes)
        self._isolated.update(action.doa_replacements)
        self.actions.append(action)
        self._executed[fault_key(action.anomaly)] = (epoch, now, action)
        self._m_pool.set(len(self.backup_pool))
        return action

    def handle(
        self, anomaly: Anomaly, now: float, epoch: int = 0
    ) -> Optional[SteeringAction]:
        """Isolate the anomaly's suspect nodes and schedule the restart.

        Returns ``None`` when the verdict is a duplicate: a verdict for
        the same fault key already executed inside ``dedup_window``
        seconds is suppressed *regardless of epoch*, so a restarted
        (higher-epoch) or replayed master cannot re-issue it.

        Nodes already isolated are skipped (idempotent under repeated
        detections).  Isolation attempts may fail and are retried with
        capped exponential backoff; replacements may be dead on arrival
        and are replaced in turn.  If the backup pool runs dry the
        action carries ``pool_exhausted=True`` and the job restarts on
        its remaining healthy nodes (shrunk world size).
        """
        key = fault_key(anomaly)
        executed = self._executed.get(key)
        if executed is not None:
            _epoch, executed_at, _action = executed
            if now - executed_at < self.dedup_window:
                self.dedup_hits += 1
                logger.info(
                    "suppressing duplicate verdict for fault %s "
                    "(executed at t=%.1f, epoch %d)",
                    key,
                    executed_at,
                    _epoch,
                )
                return None
            del self._executed[key]
        if self._replay_queue is not None:
            if not self._replay_queue:
                return None
            return self._apply_replayed(self._replay_queue.pop(0), now, epoch)
        to_isolate = [
            node_id
            for node_id in anomaly.suspect_nodes
            if self.topology.node(node_id).is_schedulable
        ]
        isolated: list[int] = []
        failed: list[int] = []
        replacements: list[int] = []
        doa: list[int] = []
        total_attempts = 0
        total_backoff = 0.0
        for node_id in to_isolate:
            ok, attempts, backoff = self._isolate_with_retries(node_id)
            total_attempts += attempts
            total_backoff += backoff
            if not ok:
                failed.append(node_id)
                continue
            isolated.append(node_id)
            replacement, dead = self._draw_replacement()
            doa.extend(dead)
            if replacement is not None:
                replacements.append(replacement)
        pool_exhausted = len(replacements) < len(isolated)
        if pool_exhausted:
            logger.warning(
                "backup pool exhausted: %d node(s) isolated, %d replacement(s) "
                "available; job restarts on a shrunk world",
                len(isolated),
                len(replacements),
            )
        ready_at = (
            now
            + self.config.isolation_seconds
            + total_backoff
            + self.config.restart_seconds
        )
        action = SteeringAction(
            anomaly=anomaly,
            isolated_nodes=tuple(isolated),
            replacement_nodes=tuple(replacements),
            ready_at=ready_at,
            pool_exhausted=pool_exhausted,
            attempts=total_attempts,
            backoff_seconds=total_backoff,
            doa_replacements=tuple(doa),
            failed_isolations=tuple(failed),
        )
        self.actions.append(action)
        self.executed_actions.append(action)
        self.executed_log.append((key, epoch))
        self._executed[key] = (epoch, now, action)
        self._m_actions.inc()
        self._m_isolated.inc(len(isolated))
        self._m_retries.inc(max(0, total_attempts - len(to_isolate)))
        self._m_failed.inc(len(failed))
        self._m_doa.inc(len(doa))
        self._m_pool_exhausted.inc(int(pool_exhausted))
        self._m_backoff.observe(total_backoff)
        self._m_pool.set(len(self.backup_pool))
        return action

    # ------------------------------------------------------------------
    # Snapshot / restore (control-plane journaling)
    # ------------------------------------------------------------------
    @staticmethod
    def _key_payload(key: tuple) -> list:
        kind, detail = key
        return [kind, list(detail) if isinstance(detail, tuple) else detail]

    @staticmethod
    def _key_from_payload(payload: list) -> tuple:
        kind, detail = payload
        return (kind, tuple(detail) if isinstance(detail, list) else detail)

    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of the service's logical state.

        ``executed_actions``/``executed_log`` are deliberately absent:
        they describe what *this process* physically did and must not be
        resurrected into a recovered instance.
        """
        return {
            "backup_pool": list(self.backup_pool),
            "isolated": sorted(self._isolated),
            "actions": [a.to_payload() for a in self.actions],
            "executed": [
                [self._key_payload(key), epoch, executed_at, action.to_payload()]
                for key, (epoch, executed_at, action) in sorted(
                    self._executed.items(), key=lambda item: repr(item[0])
                )
            ],
            "dedup_window": self.dedup_window,
            "dedup_hits": self.dedup_hits,
        }

    def restore_state(self, state: dict) -> None:
        """Replace logical state with a :meth:`snapshot_state` dict."""
        self.backup_pool = list(state["backup_pool"])
        self._isolated = set(state["isolated"])
        self.actions = [SteeringAction.from_payload(p) for p in state["actions"]]
        self._executed = {
            self._key_from_payload(key): (
                epoch,
                executed_at,
                SteeringAction.from_payload(action),
            )
            for key, epoch, executed_at, action in state["executed"]
        }
        self.dedup_window = state["dedup_window"]
        self.dedup_hits = state["dedup_hits"]
        self._m_pool.set(len(self.backup_pool))

    def return_to_pool(self, node_id: int) -> bool:
        """Return a repaired node to the backup pool.

        Idempotent: a node already back in the pool is left alone
        (returns False).  A node this service never isolated is
        rejected — returning an arbitrary node would let duplicate ids
        into the pool.
        """
        if node_id not in self._isolated:
            raise ValueError(
                f"node {node_id} was never isolated by this steering service"
            )
        if node_id in self.backup_pool:
            return False
        self.topology.node(node_id).restore()
        self.backup_pool.append(node_id)
        self._m_pool.set(len(self.backup_pool))
        return True
