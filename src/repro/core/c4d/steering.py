"""Job steering: isolate faulty nodes, pull in backups, restart.

Reproduces the paper's recovery loop (Fig. 4): once the master localizes
an anomaly, the steering service isolates the implicated nodes, draws
replacements from the backup pool (the paper provisions 64 backup GPUs
per 1,024 — 8 spare servers per 128), and restarts the job from the most
recent valid checkpoint.  The action latencies are explicit parameters
because they are exactly the downtime components Table III accounts:
detection is C4D's tens of seconds, isolation and restart are the
steering service's minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import ClusterTopology
from repro.core.c4d.events import Anomaly


@dataclass(frozen=True)
class SteeringConfig:
    """Latencies of the automated recovery pipeline, in seconds.

    Defaults follow §IV-B: C4D cuts detection+localization "to mere tens
    of seconds", while "additional minutes are still required by the
    steering service to isolate the affected nodes and restart the job".
    """

    isolation_seconds: float = 120.0
    restart_seconds: float = 180.0


@dataclass(frozen=True)
class SteeringAction:
    """The outcome of handling one anomaly."""

    anomaly: Anomaly
    isolated_nodes: tuple[int, ...]
    replacement_nodes: tuple[int, ...]
    #: When the job is running again (isolation + restart done).
    ready_at: float


class JobSteeringService:
    """Automated isolate-and-restart driven by C4D anomalies.

    Parameters
    ----------
    topology:
        The cluster whose nodes are isolated/replaced.
    backup_nodes:
        Node ids reserved as spares (not used by running jobs).
    config:
        Action latencies.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        backup_nodes: list[int],
        config: Optional[SteeringConfig] = None,
    ) -> None:
        self.topology = topology
        self.backup_pool: list[int] = list(backup_nodes)
        self.config = config or SteeringConfig()
        self.actions: list[SteeringAction] = []

    def handle(self, anomaly: Anomaly, now: float) -> SteeringAction:
        """Isolate the anomaly's suspect nodes and schedule the restart.

        Nodes already isolated are skipped (idempotent under repeated
        detections).  If the backup pool runs dry, the job restarts on
        its remaining healthy nodes (shrunk world size is the operator's
        problem; the simulation surfaces it via fewer replacements than
        isolations).
        """
        to_isolate = [
            node_id
            for node_id in anomaly.suspect_nodes
            if self.topology.node(node_id).is_schedulable
        ]
        replacements: list[int] = []
        for node_id in to_isolate:
            self.topology.node(node_id).isolate()
            if self.backup_pool:
                replacements.append(self.backup_pool.pop(0))
        ready_at = now + self.config.isolation_seconds + self.config.restart_seconds
        action = SteeringAction(
            anomaly=anomaly,
            isolated_nodes=tuple(to_isolate),
            replacement_nodes=tuple(replacements),
            ready_at=ready_at,
        )
        self.actions.append(action)
        return action

    def return_to_pool(self, node_id: int) -> None:
        """Return a repaired node to the backup pool."""
        self.topology.node(node_id).restore()
        self.backup_pool.append(node_id)
