"""Root-cause classification: from opaque symptoms to Table I buckets.

From the user's perspective almost every crash is an undifferentiated
"NCCL Error" (Table I); C4D's value is mapping the observed syndrome
plus device telemetry onto the actual cause bucket so the steering
service isolates the right component and offline RCA gets a labeled
event.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cluster.faults import FaultEvent, FaultType
from repro.core.c4d.events import Anomaly, AnomalyType, SuspectKind


class CauseBucket(enum.Enum):
    """Root-cause buckets used in Tables I and III."""

    CUDA_ERROR = "CUDA Error"
    ECC_NVLINK = "ECC/NVLink Error"
    CCL_TIMEOUT = "CCL Timeout"
    ACK_TIMEOUT = "ACK Timeout"
    UNKNOWN = "Unknown"


#: Ground-truth fault type -> bucket (used when tabulating campaigns).
FAULT_TO_BUCKET = {
    FaultType.CUDA_ERROR: CauseBucket.CUDA_ERROR,
    FaultType.ECC_NVLINK_ERROR: CauseBucket.ECC_NVLINK,
    FaultType.CCL_TIMEOUT: CauseBucket.CCL_TIMEOUT,
    FaultType.ACK_TIMEOUT: CauseBucket.ACK_TIMEOUT,
    FaultType.NETWORK_OTHER: CauseBucket.UNKNOWN,
}


def classify_fault(event: FaultEvent) -> CauseBucket:
    """Bucket a ground-truth fault event (campaign tabulation)."""
    return FAULT_TO_BUCKET.get(event.fault_type, CauseBucket.UNKNOWN)


def classify_anomaly(anomaly: Anomaly, device_error_hint: Optional[FaultType] = None) -> CauseBucket:
    """Bucket a detected anomaly from its syndrome and suspects.

    ``device_error_hint`` carries out-of-band device telemetry (XID /
    ECC counters the agents also scrape); when present it dominates.
    Without it, the classification falls back on the syndrome shape:

    * a non-communication hang localized to a worker whose process died
      is characteristically a CUDA-level error;
    * communication hangs with no localized worker look like transport
      ACK timeouts;
    * slow syndromes map to CCL timeouts when they eventually kill the
      job.
    """
    if device_error_hint is not None:
        return FAULT_TO_BUCKET.get(device_error_hint, CauseBucket.UNKNOWN)
    localized = any(
        s.kind in (SuspectKind.WORKER, SuspectKind.NODE) for s in anomaly.suspects
    )
    if anomaly.anomaly_type is AnomalyType.NONCOMM_HANG:
        return CauseBucket.CUDA_ERROR if localized else CauseBucket.UNKNOWN
    if anomaly.anomaly_type is AnomalyType.COMM_HANG:
        return CauseBucket.ACK_TIMEOUT
    if anomaly.anomaly_type in (AnomalyType.COMM_SLOW, AnomalyType.NONCOMM_SLOW):
        return CauseBucket.CCL_TIMEOUT
    return CauseBucket.UNKNOWN
