"""Offline root-cause analysis (the background system in Fig. 4).

The master defers in-depth diagnosis: it ships every anomaly (plus any
ground-truth device hints available after the fact) to this offline
queue, which accumulates labeled events and produces the cause
distributions that operations teams — and Table I — consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.faults import FaultEvent
from repro.core.c4d.classifier import CauseBucket, classify_anomaly, classify_fault
from repro.core.c4d.events import Anomaly


@dataclass(frozen=True)
class RcaCase:
    """One queued case: the anomaly and optional ground-truth context."""

    anomaly: Anomaly
    fault_context: Optional[FaultEvent] = None

    @property
    def bucket(self) -> CauseBucket:
        """Resolved cause bucket (ground truth wins when available)."""
        if self.fault_context is not None:
            return classify_fault(self.fault_context)
        return classify_anomaly(self.anomaly)


@dataclass
class RcaReport:
    """Aggregated cause distribution over analyzed cases."""

    total_cases: int
    bucket_counts: dict[CauseBucket, int]

    def proportion(self, bucket: CauseBucket) -> float:
        """Fraction of cases attributed to one bucket."""
        if self.total_cases == 0:
            return 0.0
        return self.bucket_counts.get(bucket, 0) / self.total_cases


class RootCauseAnalyzer:
    """Accumulates cases and reports cause distributions."""

    def __init__(self) -> None:
        self.cases: list[RcaCase] = []

    def submit(self, anomaly: Anomaly, fault_context: Optional[FaultEvent] = None) -> None:
        """Queue an anomaly for offline analysis."""
        self.cases.append(RcaCase(anomaly=anomaly, fault_context=fault_context))

    def report(self) -> RcaReport:
        """Tabulate the cause distribution of all queued cases."""
        counts: dict[CauseBucket, int] = {}
        for case in self.cases:
            bucket = case.bucket
            counts[bucket] = counts.get(bucket, 0) + 1
        return RcaReport(total_cases=len(self.cases), bucket_counts=counts)
