"""Non-communication-slow localization via receiver wait chains.

In ring algorithms, data transmission is receiver-driven: a receiver
must post its buffer before the sender can transmit, so a rank that is
late to the collective (extra computation or data-loading cost) creates
a chain of peers waiting on it (paper §III-A).  C4D compares per-rank
wait times at the BSP barrier: the straggler launches *latest* and waits
*least*, while everyone else shows inflated waits.

The analysis reads only operation-layer records (launch / transfer-start
timestamps logged by the patched kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.collective.monitoring import OpRecord
from repro.core.c4d.events import Suspect, SuspectKind


@dataclass(frozen=True)
class WaitChainFinding:
    """Result of one wait-chain analysis."""

    suspects: tuple[Suspect, ...]
    #: Straggler lateness relative to the median launch, in seconds.
    lateness: float
    #: Median launch-to-start wait across ranks, in seconds.
    median_wait: float

    @property
    def is_anomalous(self) -> bool:
        """True when a straggler was identified."""
        return bool(self.suspects)


def analyze_wait_chain(
    records: Sequence[OpRecord],
    min_lateness: float = 0.0,
    relative_threshold: float = 3.0,
) -> WaitChainFinding:
    """Identify stragglers from one operation's per-rank records.

    Parameters
    ----------
    records:
        Per-rank op records of a single (comm_id, seq).
    min_lateness:
        Absolute floor (seconds) below which lateness is ignored.
    relative_threshold:
        A rank is a straggler when its lateness exceeds
        ``relative_threshold`` x the median absolute deviation of launch
        times (robust against benign jitter).
    """
    if len(records) < 3:
        return WaitChainFinding(suspects=(), lateness=0.0, median_wait=0.0)
    launches = np.array([r.launch_time for r in records])
    waits = np.array([r.wait_time for r in records])
    median_launch = float(np.median(launches))
    median_wait = float(np.median(waits))
    mad = float(np.median(np.abs(launches - median_launch)))
    lateness = launches - median_launch
    max_lateness = float(lateness.max())

    # Robust cutoff: benign jitter scales with the MAD; a true straggler
    # stands far outside it.
    cutoff = max(min_lateness, relative_threshold * max(mad, 1e-9))
    straggler_idx = [i for i, late in enumerate(lateness) if late > cutoff]
    if not straggler_idx:
        return WaitChainFinding(suspects=(), lateness=max_lateness, median_wait=median_wait)

    suspects = tuple(
        Suspect(
            kind=SuspectKind.WORKER,
            node=records[i].location.node,
            device=records[i].location.gpu,
        )
        for i in straggler_idx
    )
    return WaitChainFinding(suspects=suspects, lateness=max_lateness, median_wait=median_wait)


def analyze_wait_chain_smoothed(
    op_groups: Sequence[Sequence[OpRecord]],
    min_lateness: float = 0.0,
    relative_threshold: float = 3.0,
) -> WaitChainFinding:
    """Straggler detection on *averaged* lateness over several operations.

    Expert-parallel workloads have legitimate per-operation load
    imbalance — a different rank is late every step because tokens route
    to different experts.  The paper's mitigation (§V): "averaging
    collected data over a predefined period to smooth out random
    variations and highlight systemic issues".  This variant computes
    each rank's mean lateness across the window and applies the robust
    cutoff to the means: random imbalance averages out, a systematically
    slow rank does not.

    ``op_groups`` is a list of per-operation record lists (all ranks of
    one (comm, seq) each).  Ranks must appear in every group.
    """
    groups = [list(g) for g in op_groups if len(g) >= 3]
    if not groups:
        return WaitChainFinding(suspects=(), lateness=0.0, median_wait=0.0)
    rank_lateness: dict[int, list[float]] = {}
    locations: dict[int, object] = {}
    median_waits = []
    for group in groups:
        launches = np.array([r.launch_time for r in group])
        median_launch = float(np.median(launches))
        median_waits.append(float(np.median([r.wait_time for r in group])))
        for record in group:
            rank_lateness.setdefault(record.rank, []).append(
                record.launch_time - median_launch
            )
            locations[record.rank] = record.location
    ranks = sorted(rank_lateness)
    means = np.array([float(np.mean(rank_lateness[rank])) for rank in ranks])
    median_mean = float(np.median(means))
    mad = float(np.median(np.abs(means - median_mean)))
    lateness = means - median_mean
    cutoff = max(min_lateness, relative_threshold * max(mad, 1e-9))
    straggler_ranks = [
        rank for rank, late in zip(ranks, lateness, strict=True) if late > cutoff
    ]
    max_lateness = float(lateness.max()) if len(lateness) else 0.0
    if not straggler_ranks:
        return WaitChainFinding(
            suspects=(), lateness=max_lateness, median_wait=float(np.median(median_waits))
        )
    suspects = tuple(
        Suspect(
            kind=SuspectKind.WORKER,
            node=locations[rank].node,
            device=locations[rank].gpu,
        )
        for rank in straggler_ranks
    )
    return WaitChainFinding(
        suspects=suspects,
        lateness=max_lateness,
        median_wait=float(np.median(median_waits)),
    )
