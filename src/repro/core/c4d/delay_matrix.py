"""Communication-slow localization via the pairwise delay matrix.

Implements the paper's Fig. 7 analysis: transport-layer message
durations are mapped into a matrix indexed by (source worker,
destination worker).  Because ACCL posts identically sized messages on
every worker (the frameworks' deterministic chunking), a healthy matrix
is uniform; outliers localize the fault:

* one large cell      → a specific connection bottleneck,
* a row of large cells    → the source worker,
* a column of large cells → the destination worker,
* row *and* column through the same worker → that worker's NIC/host.

Workers are identified by (node, nic) pairs — one worker per GPU in the
reference design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.collective.monitoring import MessageRecord
from repro.core.c4d.events import Suspect, SuspectKind

Worker = tuple[int, int]  # (node, nic)


@dataclass
class DelayMatrix:
    """Normalized per-pair delay scores.

    ``scores[(src, dst)]`` is the median seconds-per-bit of messages on
    that directed worker pair — size-normalized so different message
    sizes are comparable, exactly why the paper monitors at the
    transport layer where sizes are deterministic.
    """

    scores: dict[tuple[Worker, Worker], float] = field(default_factory=dict)

    @property
    def workers(self) -> list[Worker]:
        """All workers appearing as a source or destination."""
        seen: dict[Worker, None] = {}
        for src, dst in self.scores:
            seen.setdefault(src, None)
            seen.setdefault(dst, None)
        return list(seen)

    def baseline(self) -> float:
        """Cluster-wide median delay score (the healthy reference)."""
        if not self.scores:
            raise ValueError("empty delay matrix")
        return float(np.median(list(self.scores.values())))

    def ratio(self, src: Worker, dst: Worker) -> float:
        """A pair's score relative to the baseline."""
        return self.scores[(src, dst)] / self.baseline()


@dataclass(frozen=True)
class MatrixFinding:
    """Result of analyzing a delay matrix."""

    suspects: tuple[Suspect, ...]
    flagged_pairs: tuple[tuple[Worker, Worker], ...]
    baseline: float
    max_ratio: float

    @property
    def is_anomalous(self) -> bool:
        """True when at least one pair exceeded the threshold."""
        return bool(self.flagged_pairs)


def build_delay_matrix(records: Iterable[MessageRecord]) -> DelayMatrix:
    """Aggregate transport records into a delay matrix.

    Messages with non-positive size or duration are skipped (defensive:
    they carry no rate information).
    """
    samples: dict[tuple[Worker, Worker], list[float]] = {}
    for record in records:
        if record.size_bits <= 0 or record.duration <= 0:
            continue
        key = ((record.src_node, record.src_nic), (record.dst_node, record.dst_nic))
        samples.setdefault(key, []).append(record.duration / record.size_bits)
    matrix = DelayMatrix()
    for key, values in samples.items():
        matrix.scores[key] = float(np.median(values))
    return matrix


def analyze_delay_matrix(
    matrix: DelayMatrix,
    threshold: float = 1.8,
    row_fraction: float = 0.6,
) -> MatrixFinding:
    """Localize slow components from a delay matrix.

    Parameters
    ----------
    matrix:
        The aggregated delay matrix.
    threshold:
        A pair is flagged when its score exceeds ``threshold`` x the
        cluster median.
    row_fraction:
        A worker is promoted from "flagged pairs" to a WORKER suspect
        when at least this fraction of its observed row+column pairs are
        flagged.

    Notes
    -----
    Ring communicators observe only one pair per (row, column), so a
    degraded worker shows up as its outgoing *and* incoming pair both
    flagged — the intersection logic below promotes exactly that worker,
    matching the paper's row/column reading of Fig. 7.
    """
    if not matrix.scores:
        return MatrixFinding(suspects=(), flagged_pairs=(), baseline=float("nan"), max_ratio=0.0)
    baseline = matrix.baseline()
    if baseline <= 0:
        return MatrixFinding(suspects=(), flagged_pairs=(), baseline=baseline, max_ratio=0.0)

    flagged = [
        pair for pair, score in matrix.scores.items() if score / baseline > threshold
    ]
    max_ratio = max(score / baseline for score in matrix.scores.values())
    if not flagged:
        return MatrixFinding(suspects=(), flagged_pairs=(), baseline=baseline, max_ratio=max_ratio)

    # Per-worker flagged/observed tallies over rows (as src) and columns
    # (as dst).
    observed: dict[Worker, int] = {}
    hit: dict[Worker, int] = {}
    for (src, dst), _score in matrix.scores.items():
        observed[src] = observed.get(src, 0) + 1
        observed[dst] = observed.get(dst, 0) + 1
    for src, dst in flagged:
        hit[src] = hit.get(src, 0) + 1
        hit[dst] = hit.get(dst, 0) + 1

    worker_suspects = [
        worker
        for worker, hits in hit.items()
        if hits / observed[worker] >= row_fraction and hits >= 2
    ]

    suspects: list[Suspect] = [
        Suspect(kind=SuspectKind.WORKER, node=node, device=nic)
        for node, nic in worker_suspects
    ]
    # Whole-node promotion: if several workers of one node are suspect,
    # report the node (host-level fault such as PCIe degradation).
    by_node: dict[int, int] = {}
    for node, _nic in worker_suspects:
        by_node[node] = by_node.get(node, 0) + 1
    node_suspects = {node for node, count in by_node.items() if count >= 2}
    if node_suspects:
        suspects = [
            s for s in suspects if s.node not in node_suspects
        ] + [Suspect(kind=SuspectKind.NODE, node=node) for node in sorted(node_suspects)]

    # Remaining flagged pairs not explained by a worker/node suspect are
    # connection suspects.
    explained = set(worker_suspects) | {
        (node, nic) for node, nic in worker_suspects
    }
    for src, dst in flagged:
        if src in explained or dst in explained or src[0] in node_suspects or dst[0] in node_suspects:
            continue
        suspects.append(
            Suspect(
                kind=SuspectKind.CONNECTION,
                node=src[0],
                device=src[1],
                peer_node=dst[0],
                peer_device=dst[1],
            )
        )

    return MatrixFinding(
        suspects=tuple(suspects),
        flagged_pairs=tuple(flagged),
        baseline=baseline,
        max_ratio=max_ratio,
    )
