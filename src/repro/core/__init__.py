"""The paper's contribution: C4D (diagnose) and C4P (performance).

* :mod:`repro.core.c4d` — real-time anomaly detection, fault
  localization and automated steering (isolate + restart),
* :mod:`repro.core.c4p` — cluster-scale traffic engineering: path
  probing, balanced QP/path allocation and dynamic load balancing.
"""
