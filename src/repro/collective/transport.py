"""Connections and QPs mapped onto simulator flows.

A :class:`Connection` is the long-lived transport relationship between a
(src node, NIC) and a (dst node, NIC) inside one communicator — the
"small number of long-lived flows" whose predictability makes C4P's
global traffic engineering feasible (§III-B).  Each connection holds the
QP allocations handed out by the path selector; every collective
operation sends its per-edge traffic as one simulator flow per QP,
weighted by the QP's load share (the knob C4P's dynamic load balancer
turns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collective.selectors import PathRequest, QpAllocation
from repro.netsim.flows import Flow, FlowState


@dataclass
class Connection:
    """A live transport connection with its QP allocations."""

    request: PathRequest
    allocations: list[QpAllocation]
    src_ip: str
    dst_ip: str
    #: Flows currently in flight for this connection (one per QP per op).
    active_flows: list[Flow] = field(default_factory=list)
    #: EWMA of achieved per-QP rate in bits/s, keyed by QP number — the
    #: message-completion-time signal C4P's dynamic load balancer reads.
    qp_rate_ewma: dict[int, float] = field(default_factory=dict)

    @property
    def key(self) -> tuple[int, int, int, int]:
        """(src_node, src_nic, dst_node, dst_nic)."""
        req = self.request
        return (req.src_node, req.src_nic, req.dst_node, req.dst_nic)

    @property
    def total_weight(self) -> float:
        """Sum of QP weights (load shares are weight / total)."""
        return sum(alloc.weight for alloc in self.allocations)

    def qp_share(self, alloc: QpAllocation) -> float:
        """Fraction of the connection's traffic carried by one QP."""
        return alloc.weight / self.total_weight

    def observe_rate(self, qp_num: int, rate: float, alpha: float = 0.5) -> None:
        """Fold one completed transfer's achieved rate into the EWMA."""
        if rate <= 0:
            return
        previous = self.qp_rate_ewma.get(qp_num)
        if previous is None:
            self.qp_rate_ewma[qp_num] = rate
        else:
            self.qp_rate_ewma[qp_num] = alpha * rate + (1 - alpha) * previous

    def prune_finished(self) -> None:
        """Drop completed/stalled-forever flows from the active list."""
        self.active_flows = [
            flow for flow in self.active_flows if flow.state == FlowState.ACTIVE
        ]

    def set_qp_weight(self, alloc: QpAllocation, weight: float) -> None:
        """Change a QP's load share, also updating its in-flight flows.

        This is the dynamic-load-balance primitive: shifting weight
        between QPs redistributes both future and in-flight traffic
        (max-min fairness honours flow weights immediately).
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        alloc.weight = weight
        for flow in self.active_flows:
            if flow.metadata.get("qp") is alloc:
                flow.weight = weight

    def move_remaining(
        self,
        source: QpAllocation,
        target: QpAllocation,
        fraction: float = 1.0,
    ) -> float:
        """Shift remaining in-flight bits from one QP's flow to another's.

        Returns the number of bits moved.  Used when a QP's path dies or
        congests: instead of waiting on the slow path, the balancer moves
        the unfinished work to the healthy QP.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        src_flow: Optional[Flow] = None
        dst_flow: Optional[Flow] = None
        for flow in self.active_flows:
            if flow.metadata.get("qp") is source:
                src_flow = flow
            elif flow.metadata.get("qp") is target:
                dst_flow = flow
        if src_flow is None or dst_flow is None:
            return 0.0
        moved = src_flow.remaining * fraction
        src_flow.remaining -= moved
        dst_flow.remaining += moved
        return moved
