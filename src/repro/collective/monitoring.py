"""The monitoring enhancement of ACCL (paper Fig. 6).

Three layers of records, collected top-down:

* **communicator layer** — communicator ids, involved devices, ranks;
* **operation layer** — operation type, algorithm, data type, element
  count, duration, and a per-communicator sequence number, logged per
  rank with kernel-accurate start/completion times (the paper patches
  the CUDA kernels to log these because CPU timestamps are unreliable);
* **transport layer** — connection info (source/destination IPs, QP
  numbers, source ports) and per-message counts, sizes and transfer
  durations.

C4D consumes *only* these records — never simulator ground truth — so
its detection accuracy in tests is a genuine end-to-end measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation


@dataclass(frozen=True)
class CommunicatorRecord:
    """Communicator-layer record: identity and member devices."""

    comm_id: str
    size: int
    ranks: tuple[RankLocation, ...]

    def to_payload(self) -> dict:
        """JSON-safe form for journaling/snapshotting."""
        return {
            "comm_id": self.comm_id,
            "size": self.size,
            "ranks": [[loc.node, loc.gpu] for loc in self.ranks],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CommunicatorRecord":
        """Rebuild a record from its :meth:`to_payload` form."""
        return cls(
            comm_id=payload["comm_id"],
            size=payload["size"],
            ranks=tuple(RankLocation(node, gpu) for node, gpu in payload["ranks"]),
        )


@dataclass(frozen=True)
class OpLaunchRecord:
    """Operation-layer record logged when a rank *enters* a collective.

    Completion is logged separately (:class:`OpRecord`); a rank that
    launched sequence ``seq`` but never produced the matching completion
    is the communication-hang syndrome, while a rank whose launch record
    itself is missing is the non-communication-hang syndrome (crashed or
    stuck before reaching the collective).
    """

    comm_id: str
    seq: int
    op_type: OpType
    rank: int
    location: RankLocation
    launch_time: float

    def to_payload(self) -> dict:
        """JSON-safe form for journaling/snapshotting."""
        return {
            "comm_id": self.comm_id,
            "seq": self.seq,
            "op_type": self.op_type.value,
            "rank": self.rank,
            "location": [self.location.node, self.location.gpu],
            "launch_time": self.launch_time,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OpLaunchRecord":
        """Rebuild a record from its :meth:`to_payload` form."""
        return cls(
            comm_id=payload["comm_id"],
            seq=payload["seq"],
            op_type=OpType(payload["op_type"]),
            rank=payload["rank"],
            location=RankLocation(*payload["location"]),
            launch_time=payload["launch_time"],
        )


@dataclass(frozen=True)
class OpRecord:
    """Operation-layer record, one per rank per collective operation.

    ``launch_time`` is when the rank entered the collective (kernel
    launch); ``start_time`` is when data transfer actually began (all
    peers ready — the BSP synchronization point); ``end_time`` is
    completion.  ``launch_time`` spread across ranks is exactly the
    signal C4D's non-communication-slow detector reads (a straggler
    launches late and waits least).
    """

    comm_id: str
    seq: int
    op_type: OpType
    algorithm: Algorithm
    dtype: str
    element_count: int
    rank: int
    location: RankLocation
    launch_time: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Launch-to-completion time observed by this rank."""
        return self.end_time - self.launch_time

    @property
    def wait_time(self) -> float:
        """Time this rank spent waiting for peers before transfer began."""
        return self.start_time - self.launch_time

    def to_payload(self) -> dict:
        """JSON-safe form for journaling/snapshotting."""
        return {
            "comm_id": self.comm_id,
            "seq": self.seq,
            "op_type": self.op_type.value,
            "algorithm": self.algorithm.value,
            "dtype": self.dtype,
            "element_count": self.element_count,
            "rank": self.rank,
            "location": [self.location.node, self.location.gpu],
            "launch_time": self.launch_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "OpRecord":
        """Rebuild a record from its :meth:`to_payload` form."""
        return cls(
            comm_id=payload["comm_id"],
            seq=payload["seq"],
            op_type=OpType(payload["op_type"]),
            algorithm=Algorithm(payload["algorithm"]),
            dtype=payload["dtype"],
            element_count=payload["element_count"],
            rank=payload["rank"],
            location=RankLocation(*payload["location"]),
            launch_time=payload["launch_time"],
            start_time=payload["start_time"],
            end_time=payload["end_time"],
        )


@dataclass(frozen=True)
class MessageRecord:
    """Transport-layer record: one message on one connection.

    The paper's Fig. 7 communication-slow analysis compares these
    durations across worker pairs.
    """

    comm_id: str
    seq: int
    src_node: int
    src_nic: int
    dst_node: int
    dst_nic: int
    src_ip: str
    dst_ip: str
    qp_num: int
    src_port: int
    message_index: int
    size_bits: float
    post_time: float
    complete_time: float

    @property
    def duration(self) -> float:
        """Transfer duration of this message."""
        return self.complete_time - self.post_time

    def to_payload(self) -> dict:
        """JSON-safe form for journaling/snapshotting."""
        return {
            "comm_id": self.comm_id,
            "seq": self.seq,
            "src_node": self.src_node,
            "src_nic": self.src_nic,
            "dst_node": self.dst_node,
            "dst_nic": self.dst_nic,
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "qp_num": self.qp_num,
            "src_port": self.src_port,
            "message_index": self.message_index,
            "size_bits": self.size_bits,
            "post_time": self.post_time,
            "complete_time": self.complete_time,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MessageRecord":
        """Rebuild a record from its :meth:`to_payload` form."""
        return cls(**payload)


class MonitoringSink(Protocol):
    """Destination for monitoring records (the C4 agent implements this)."""

    def on_communicator(self, record: CommunicatorRecord) -> None:
        """Receive a communicator-layer record."""

    def on_op_launch(self, record: OpLaunchRecord) -> None:
        """Receive an operation-startup record."""

    def on_op(self, record: OpRecord) -> None:
        """Receive an operation-completion record."""

    def on_message(self, record: MessageRecord) -> None:
        """Receive a transport-layer record."""


@dataclass
class RecordingSink:
    """In-memory sink that appends every record; used by tests and C4D."""

    communicators: list[CommunicatorRecord] = field(default_factory=list)
    launches: list[OpLaunchRecord] = field(default_factory=list)
    ops: list[OpRecord] = field(default_factory=list)
    messages: list[MessageRecord] = field(default_factory=list)

    def on_communicator(self, record: CommunicatorRecord) -> None:
        self.communicators.append(record)

    def on_op_launch(self, record: OpLaunchRecord) -> None:
        self.launches.append(record)

    def on_op(self, record: OpRecord) -> None:
        self.ops.append(record)

    def on_message(self, record: MessageRecord) -> None:
        self.messages.append(record)

    def clear(self) -> None:
        """Drop all captured records."""
        self.communicators.clear()
        self.launches.clear()
        self.ops.clear()
        self.messages.clear()

    def ops_for_seq(self, comm_id: str, seq: int) -> list["OpRecord"]:
        """All per-rank op records of one collective operation."""
        return [r for r in self.ops if r.comm_id == comm_id and r.seq == seq]

    def messages_for_seq(self, comm_id: str, seq: int) -> list["MessageRecord"]:
        """All transport records of one collective operation."""
        return [r for r in self.messages if r.comm_id == comm_id and r.seq == seq]
