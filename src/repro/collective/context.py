"""The collective engine: running operations on the simulated fabric.

:class:`CollectiveContext` binds a communicator's traffic to the
cluster: it asks the path selector for QP allocations when connections
are first used, converts each collective operation into weighted
simulator flows (one per QP per ring edge per channel), synchronizes
ranks at the BSP barrier, and emits the three-layer monitoring records
that C4D consumes.

One context per job/tenant; contexts sharing a
:class:`~repro.netsim.network.FlowNetwork` contend for bandwidth, which
is how the multi-job experiments (Fig. 10) are expressed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import (
    DEFAULT_ALGORITHM,
    SUPPORTED_ALGORITHMS,
    Algorithm,
    OpType,
    traffic_factor,
)
from repro.collective.communicator import Communicator, RankLocation
from repro.collective.monitoring import (
    CommunicatorRecord,
    MessageRecord,
    MonitoringSink,
    OpLaunchRecord,
    OpRecord,
)
from repro.collective.schedules import (
    Phase,
    Transfer,
    halving_doubling_phases,
    hierarchical_allreduce_phases,
    pairwise_alltoall_phases,
    ring_phases,
    tree_phases,
)
from repro.collective.selectors import EcmpPathSelector, PathRequest, PathSelector, QpAllocation
from repro.collective.transport import Connection
from repro.netsim.flows import Flow
from repro.netsim.links import Link
from repro.netsim.units import GBPS

#: Bits per element for the supported data types.
DTYPE_BITS = {"fp8": 8, "fp16": 16, "bf16": 16, "fp32": 32, "fp64": 64}


def _dispatch_link_down(link: Link, flows: Sequence[Flow]) -> None:
    """Network-level reroute hook: fan out to each flow's selector."""
    groups: dict[int, tuple[PathSelector, list[Flow]]] = {}
    for flow in flows:
        selector = flow.metadata.get("selector")
        if selector is None:
            continue
        key = id(selector)
        if key not in groups:
            groups[key] = (selector, [])
        groups[key][1].append(flow)
    for selector, group in groups.values():
        selector.on_link_down(link, group)


@dataclass
class OpHandle:
    """A collective operation in flight (or finished)."""

    comm: Communicator
    seq: int
    op_type: OpType
    algorithm: Algorithm
    size_bits: float
    dtype: str
    launch_times: list[float]
    start_time: float
    end_time: float = math.nan
    done: bool = False
    hung: bool = False
    on_complete: Optional[Callable[["OpHandle"], None]] = None
    #: (connection, allocation) -> completion time of that QP's flow.
    qp_end_times: dict[tuple[int, int], float] = field(default_factory=dict)
    connections: list[Connection] = field(default_factory=list)
    _pending_flows: int = 0
    _phases: list[Phase] = field(default_factory=list)
    _phase_index: int = 0
    _post_intra_bits: float = 0.0

    @property
    def duration(self) -> float:
        """Transfer time from the BSP barrier to completion."""
        return self.end_time - self.start_time

    @property
    def busbw(self) -> float:
        """nccl-tests bus bandwidth in bits/s."""
        return traffic_factor(self.op_type, self.comm.size) * self.size_bits / self.duration

    @property
    def busbw_gbps(self) -> float:
        """Aggregate bus bandwidth in Gbps (nccl-tests convention)."""
        return self.busbw / GBPS

    @property
    def busbw_per_nic_gbps(self) -> float:
        """Bus bandwidth per NIC/channel in Gbps.

        This is the unit the paper's figures use: with 400 Gbps bonded
        NICs the ideal value is ~400, and the NVLink fabric caps it at
        ~362 (§IV-B).  It equals the aggregate bus bandwidth divided by
        the number of channels (NICs per node engaged by the
        communicator).
        """
        return self.busbw_gbps / len(self.comm.channels())


class CollectiveContext:
    """Runs collectives for one job on a shared fabric.

    Parameters
    ----------
    topology:
        The built cluster (shared across jobs).
    selector:
        Path-selection strategy; defaults to the ECMP baseline.  Passing
        a C4P client selector here is how a job opts into traffic
        engineering.
    sink:
        Monitoring sink receiving the three-layer records (a C4 agent,
        a RecordingSink, or None to disable monitoring).
    job_id:
        Tenant identifier reported to the path selector.
    qps_per_connection:
        QPs per connection (2 in the bonded reference configuration).
    messages_per_op:
        Transport-layer messages logged per QP per operation.
    intra_node_busbw_gbps:
        Bus bandwidth of NVLink-only collectives (single-node
        communicators never touch the network).
    qp_work_stealing:
        Emulate the transport's chunk queue: when a QP finishes its
        share of an operation while a sibling QP still has work, half of
        the slowest sibling's remaining bytes are re-posted on the idle
        QP.  This matches how real CCLs round-robin chunks over QPs —
        a connection's throughput approaches the *sum* of its paths'
        bandwidths instead of being gated by the slowest QP.
    phase_latency_seconds:
        Fixed start-up latency charged per communication phase (the
        alpha of the alpha-beta cost model: kernel launch, rendezvous,
        first-packet RTT).  Zero by default — the paper's experiments
        are bandwidth-dominated — but setting it exposes the latency
        penalty of multi-phase algorithms (halving-doubling pays
        2log2(N) alphas where the pipelined ring pays one).
    """

    #: Work below this fraction of the original per-QP share is not
    #: worth re-posting (bounds the number of stealing rounds).
    MIN_STEAL_FRACTION = 0.02

    def __init__(
        self,
        topology: ClusterTopology,
        selector: Optional[PathSelector] = None,
        sink: Optional[MonitoringSink] = None,
        job_id: str = "job0",
        qps_per_connection: int = 2,
        messages_per_op: int = 8,
        intra_node_busbw_gbps: float = 2400.0,
        qp_work_stealing: bool = True,
        phase_latency_seconds: float = 0.0,
    ) -> None:
        self.topology = topology
        self.network = topology.network
        self.selector: PathSelector = selector or EcmpPathSelector(
            topology, qps_per_connection=qps_per_connection
        )
        self.sink = sink
        self.job_id = job_id
        self.qps_per_connection = qps_per_connection
        self.messages_per_op = messages_per_op
        self.intra_node_busbw = intra_node_busbw_gbps * GBPS
        self.qp_work_stealing = qp_work_stealing
        if phase_latency_seconds < 0:
            raise ValueError("phase_latency_seconds must be non-negative")
        self.phase_latency_seconds = phase_latency_seconds
        self._connections: dict[tuple, Connection] = {}
        # All jobs share one reroute dispatcher.
        self.network.reroute_handler = _dispatch_link_down

    # ------------------------------------------------------------------
    # Communicators
    # ------------------------------------------------------------------
    def communicator(
        self, ranks: Sequence[RankLocation], comm_id: Optional[str] = None
    ) -> Communicator:
        """Create a communicator and log its communicator-layer record."""
        comm = Communicator(ranks, comm_id=comm_id)
        if self.sink is not None:
            self.sink.on_communicator(
                CommunicatorRecord(comm_id=comm.comm_id, size=comm.size, ranks=tuple(comm.ranks))
            )
        return comm

    def connection_for(
        self, comm: Communicator, src_node: int, src_nic: int, dst_node: int, dst_nic: int
    ) -> Connection:
        """Get or establish the connection for one channel edge."""
        key = (comm.comm_id, src_node, src_nic, dst_node, dst_nic)
        conn = self._connections.get(key)
        if conn is None:
            request = PathRequest(
                comm_id=comm.comm_id,
                job_id=self.job_id,
                src_node=src_node,
                src_nic=src_nic,
                dst_node=dst_node,
                dst_nic=dst_nic,
                num_qps=self.qps_per_connection,
            )
            allocations = self.selector.allocate(request)
            conn = Connection(
                request=request,
                allocations=allocations,
                src_ip=self.topology.node(src_node).nics[src_nic].ip_address,
                dst_ip=self.topology.node(dst_node).nics[dst_nic].ip_address,
            )
            self._connections[key] = conn
        return conn

    @property
    def connections(self) -> list[Connection]:
        """All connections this job has established."""
        return list(self._connections.values())

    def close(self) -> None:
        """Tear down the job's transport: release every connection.

        Returns the QPs' path reservations to the selector (the C4P
        master decrements its per-link allocation counts, freeing the
        capacity for other tenants).  Idempotent.
        """
        for connection in self._connections.values():
            self.selector.release(connection.request, connection.allocations)
        self._connections.clear()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def run_op(
        self,
        comm: Communicator,
        op_type: OpType,
        size_bits: float,
        dtype: str = "fp16",
        entry_offsets: Optional[Sequence[float]] = None,
        on_complete: Optional[Callable[[OpHandle], None]] = None,
        algorithm: Optional[Algorithm] = None,
        hang: bool = False,
        absent_ranks: Iterable[int] = (),
    ) -> OpHandle:
        """Launch one collective operation at the current simulated time.

        ``entry_offsets`` are per-rank delays between "the op was issued"
        and "this rank launched the kernel" — how compute/data-loading
        skew (including straggler nodes) reaches the BSP barrier.

        ``hang=True`` models a communication hang: kernels launch, the
        operation never completes.  ``absent_ranks`` never launch at all
        (crashed worker), which is the non-communication-hang syndrome.
        """
        if size_bits <= 0:
            raise ValueError("size_bits must be positive")
        if entry_offsets is not None and len(entry_offsets) != comm.size:
            raise ValueError("entry_offsets must have one entry per rank")
        algorithm = algorithm or DEFAULT_ALGORITHM[op_type]
        if algorithm not in SUPPORTED_ALGORITHMS[op_type]:
            raise ValueError(f"{algorithm.value} cannot realize {op_type.value}")
        seq = comm.next_seq()
        now = self.network.now
        offsets = list(entry_offsets) if entry_offsets is not None else [0.0] * comm.size
        launches = [now + max(0.0, off) for off in offsets]
        absent = set(absent_ranks)
        live_launches = [t for r, t in enumerate(launches) if r not in absent]
        start_time = max(live_launches) if live_launches else now

        handle = OpHandle(
            comm=comm,
            seq=seq,
            op_type=op_type,
            algorithm=algorithm,
            size_bits=size_bits,
            dtype=dtype,
            launch_times=launches,
            start_time=start_time,
            on_complete=on_complete,
        )

        if self.sink is not None:
            # Startup records: logged by every rank that actually enters
            # the collective (absent ranks crashed before reaching it).
            for rank, location in enumerate(comm.ranks):
                if rank in absent:
                    continue
                self.sink.on_op_launch(
                    OpLaunchRecord(
                        comm_id=comm.comm_id,
                        seq=seq,
                        op_type=op_type,
                        rank=rank,
                        location=location,
                        launch_time=launches[rank],
                    )
                )

        if hang or absent:
            handle.hung = True
            # Kernels of present ranks launch and then wait forever; no
            # completion records are ever produced.  C4D sees the stalled
            # sequence numbers.
            return handle

        if comm.is_single_node:
            duration = (
                traffic_factor(op_type, comm.size) * size_bits / self.intra_node_busbw
            )
            self.network.schedule_at(
                max(start_time + duration, now), lambda: self._finish(handle)
            )
            return handle

        self._launch_network_op(handle)
        return handle

    def run_send_recv(
        self,
        src: RankLocation,
        dst: RankLocation,
        size_bits: float,
        comm: Communicator,
        on_complete: Optional[Callable[[OpHandle], None]] = None,
    ) -> OpHandle:
        """Point-to-point transfer (pipeline-parallel stage traffic)."""
        pair = Communicator([src, dst], comm_id=f"{comm.comm_id}/p2p-{src.node}-{dst.node}")
        return self.run_op(pair, OpType.SEND_RECV, size_bits, on_complete=on_complete)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_phases(self, handle: OpHandle) -> tuple[float, list[Phase], float]:
        """(pre-intra bits, fabric phases, post-intra bits) for an op."""
        comm, op, size = handle.comm, handle.op_type, handle.size_bits
        algorithm = handle.algorithm
        if algorithm is Algorithm.RING:
            return 0.0, ring_phases(comm, op, size), 0.0
        if algorithm is Algorithm.PIPELINE:
            channels = len(comm.channels())
            if op is OpType.SEND_RECV:
                nodes = comm.node_sequence
                phase = [Transfer(nodes[0], nodes[1], size / channels)]
                return 0.0, [phase], 0.0
            # Pipelined broadcast: the chain (no wrap edge) streams the
            # full payload through every hop concurrently.
            phase = [
                Transfer(src, dst, size / channels)
                for src, dst in comm.chain_node_edges()
            ]
            return 0.0, [phase], 0.0
        if algorithm is Algorithm.HALVING_DOUBLING:
            return 0.0, halving_doubling_phases(comm, size), 0.0
        if algorithm is Algorithm.TREE:
            return 0.0, tree_phases(comm, size), 0.0
        if algorithm is Algorithm.PAIRWISE:
            return 0.0, pairwise_alltoall_phases(comm, size), 0.0
        if algorithm is Algorithm.HIERARCHICAL:
            return hierarchical_allreduce_phases(comm, size)
        raise ValueError(f"unsupported algorithm {algorithm} for {op}")

    def _launch_network_op(self, handle: OpHandle) -> None:
        pre_bits, phases, post_bits = self._build_phases(handle)
        handle._phases = phases
        handle._phase_index = 0
        handle._post_intra_bits = post_bits

        def begin_fabric() -> None:
            self._start_phase(handle)

        if pre_bits > 0:
            pre_duration = pre_bits / self.intra_node_busbw
            self.network.schedule_at(handle.start_time + pre_duration, begin_fabric)
        elif handle.start_time > self.network.now:
            self.network.schedule_at(handle.start_time, begin_fabric)
        else:
            begin_fabric()

    def _start_phase(self, handle: OpHandle) -> None:
        comm = handle.comm
        if handle._phase_index >= len(handle._phases):
            post = handle._post_intra_bits
            if post > 0:
                self.network.schedule(
                    post / self.intra_node_busbw, lambda: self._finish(handle)
                )
            else:
                self._finish(handle)
            return
        transfers = handle._phases[handle._phase_index]
        flows: list[Flow] = []
        for transfer in transfers:
            if transfer.bits_per_channel <= 0:
                continue
            for channel in comm.channels():
                conn = self.connection_for(
                    comm, transfer.src_node, channel, transfer.dst_node, channel
                )
                if conn not in handle.connections:
                    handle.connections.append(conn)
                for alloc in conn.allocations:
                    flow_size = transfer.bits_per_channel * conn.qp_share(alloc)
                    if flow_size <= 0:
                        continue
                    flow = Flow(
                        flow_id=self.network.new_flow_id(
                            f"{comm.comm_id}:s{handle.seq}:p{handle._phase_index}"
                            f":n{transfer.src_node}-n{transfer.dst_node}"
                            f":c{channel}:q{alloc.qp_num}"
                        ),
                        path=list(alloc.path),
                        size=flow_size,
                        weight=alloc.weight,
                        on_complete=lambda fl, h=handle: self._flow_done(h, fl),
                        metadata={
                            "selector": self.selector,
                            "request": conn.request,
                            "qp": alloc,
                            "connection": conn,
                            "handle": handle,
                            "share_bits": flow_size,
                            "job_id": self.job_id,
                            "cnp_key": (conn.request.src_node, conn.request.src_nic),
                            "cc_key": alloc.qp_num,
                        },
                    )
                    flows.append(flow)
                    conn.active_flows.append(flow)
        if not flows:
            # Degenerate phase (no transfers): advance immediately.
            handle._phase_index += 1
            self._start_phase(handle)
            return
        handle._pending_flows = len(flows)

        def start_flows() -> None:
            for flow in flows:
                self.network.add_flow(flow)

        if self.phase_latency_seconds > 0:
            self.network.schedule(self.phase_latency_seconds, start_flows)
        else:
            start_flows()

    def _flow_done(self, handle: OpHandle, flow: Flow) -> None:
        conn: Connection = flow.metadata["connection"]
        alloc: QpAllocation = flow.metadata["qp"]
        handle.qp_end_times[(id(conn), alloc.qp_num)] = self.network.now
        elapsed = self.network.now - flow.start_time
        if elapsed > 0:
            conn.observe_rate(alloc.qp_num, flow.size / elapsed)
        conn.prune_finished()
        handle._pending_flows -= 1
        if self.qp_work_stealing:
            self._maybe_steal(handle, conn, alloc, flow)
        if handle._pending_flows == 0:
            handle._phase_index += 1
            self._start_phase(handle)

    def _maybe_steal(self, handle: OpHandle, conn: Connection, alloc: QpAllocation, done_flow: Flow) -> None:
        """Re-post half of the slowest sibling QP's remaining work here."""
        siblings = [
            fl
            for fl in conn.active_flows
            if fl.metadata.get("handle") is handle and fl.remaining > 0
        ]
        if not siblings:
            return
        victim = max(siblings, key=lambda fl: fl.remaining)
        min_steal = self.MIN_STEAL_FRACTION * done_flow.metadata.get("share_bits", done_flow.size)
        stolen = victim.remaining / 2
        if stolen < min_steal:
            return
        victim.remaining -= stolen
        replacement = Flow(
            flow_id=self.network.new_flow_id(f"{done_flow.flow_id}:steal"),
            path=list(alloc.path),
            size=stolen,
            weight=alloc.weight,
            on_complete=lambda fl, h=handle: self._flow_done(h, fl),
            metadata=dict(done_flow.metadata),
        )
        conn.active_flows.append(replacement)
        handle._pending_flows += 1
        self.network.add_flow(replacement)

    def _finish(self, handle: OpHandle) -> None:
        handle.done = True
        handle.end_time = self.network.now
        self._emit_records(handle)
        if handle.on_complete is not None:
            handle.on_complete(handle)

    def _emit_records(self, handle: OpHandle) -> None:
        if self.sink is None:
            return
        comm = handle.comm
        element_count = int(handle.size_bits // DTYPE_BITS.get(handle.dtype, 16))
        for rank, location in enumerate(comm.ranks):
            self.sink.on_op(
                OpRecord(
                    comm_id=comm.comm_id,
                    seq=handle.seq,
                    op_type=handle.op_type,
                    algorithm=handle.algorithm,
                    dtype=handle.dtype,
                    element_count=element_count,
                    rank=rank,
                    location=location,
                    launch_time=handle.launch_times[rank],
                    start_time=handle.start_time,
                    end_time=handle.end_time,
                )
            )
        for conn in handle.connections:
            for alloc in conn.allocations:
                end = handle.qp_end_times.get((id(conn), alloc.qp_num))
                if end is None:
                    continue
                span = max(end - handle.start_time, 0.0)
                per_message = span / self.messages_per_op
                qp_bits = alloc.weight / conn.total_weight * handle.size_bits
                msg_bits = qp_bits / self.messages_per_op
                for index in range(self.messages_per_op):
                    post = handle.start_time + index * per_message
                    self.sink.on_message(
                        MessageRecord(
                            comm_id=comm.comm_id,
                            seq=handle.seq,
                            src_node=conn.request.src_node,
                            src_nic=conn.request.src_nic,
                            dst_node=conn.request.dst_node,
                            dst_nic=conn.request.dst_nic,
                            src_ip=conn.src_ip,
                            dst_ip=conn.dst_ip,
                            qp_num=alloc.qp_num,
                            src_port=alloc.src_port,
                            message_index=index,
                            size_bits=msg_bits,
                            post_time=post,
                            complete_time=post + per_message,
                        )
                    )


class RepeatedOp:
    """Back-to-back repetition of one collective (the nccl-test pattern).

    Starts the next operation the moment the previous one completes,
    until ``stop_time`` (simulated) or ``max_ops`` is reached.  Collects
    completed handles for busbw statistics.
    """

    def __init__(
        self,
        context: CollectiveContext,
        comm: Communicator,
        op_type: OpType,
        size_bits: float,
        stop_time: Optional[float] = None,
        max_ops: Optional[int] = None,
        warmup_ops: int = 0,
    ) -> None:
        if stop_time is None and max_ops is None:
            raise ValueError("need stop_time or max_ops")
        self.context = context
        self.comm = comm
        self.op_type = op_type
        self.size_bits = size_bits
        self.stop_time = stop_time
        self.max_ops = max_ops
        self.warmup_ops = warmup_ops
        self.handles: list[OpHandle] = []
        self._started = 0

    def start(self) -> None:
        """Issue the first operation."""
        self._issue()

    def _issue(self) -> None:
        self._started += 1
        self.context.run_op(
            self.comm, self.op_type, self.size_bits, on_complete=self._completed
        )

    def _completed(self, handle: OpHandle) -> None:
        if self._started > self.warmup_ops:
            self.handles.append(handle)
        now = self.context.network.now
        if self.max_ops is not None and self._started >= self.max_ops + self.warmup_ops:
            return
        if self.stop_time is not None and now >= self.stop_time:
            return
        self._issue()

    @property
    def busbw_series_gbps(self) -> list[float]:
        """Per-operation per-NIC bus bandwidth in Gbps, in completion order."""
        return [handle.busbw_per_nic_gbps for handle in self.handles]

    @property
    def mean_busbw_gbps(self) -> float:
        """Average per-NIC bus bandwidth across measured operations."""
        series = self.busbw_series_gbps
        if not series:
            raise RuntimeError("no completed operations recorded")
        return sum(series) / len(series)
