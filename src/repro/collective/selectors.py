"""Path selection: the interface C4P plugs into, and the ECMP baseline.

The paper's enhancement lets ACCL "issue path allocation requests for
communicating workers and set the source port accordingly" (§III-B).
:class:`PathSelector` is that seam: the transport asks the selector for
QP allocations when a connection is established, and notifies it when a
link dies so it can reroute in-flight traffic.

:class:`EcmpPathSelector` is the unmodified-fabric baseline: the source
port is an arbitrary ephemeral port, the bond driver puts one QP on each
physical port, and every switch hashes independently — so two flows of a
bonded NIC can land on the same receive port (Fig. 9's imbalance) and
concurrent jobs collide on spine uplinks (Fig. 10's degradation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.cluster.topology import ClusterTopology, PathChoice
from repro.netsim.flows import Flow
from repro.netsim.links import Link
from repro.netsim.routing import EcmpHasher, FiveTuple

#: RoCEv2 destination UDP port.
ROCE_DST_PORT = 4791

_qp_counter = itertools.count(1000)


@dataclass(frozen=True)
class PathRequest:
    """A connection-establishment request sent to the selector."""

    comm_id: str
    job_id: str
    src_node: int
    src_nic: int
    dst_node: int
    dst_nic: int
    num_qps: int


@dataclass
class QpAllocation:
    """One QP's placement: identity, source port, and resolved route."""

    qp_num: int
    src_port: int
    five_tuple: FiveTuple
    choice: PathChoice
    path: list[tuple]
    weight: float = 1.0


class PathSelector(Protocol):
    """Strategy deciding where connections' QPs run."""

    def allocate(self, request: PathRequest) -> list[QpAllocation]:
        """Allocate ``request.num_qps`` QPs for a new connection."""

    def on_link_down(self, link: Link, flows: Sequence[Flow]) -> None:
        """React to a link failure affecting ``flows`` (reroute or not)."""

    def release(self, request: PathRequest, allocations: Sequence[QpAllocation]) -> None:
        """Return path resources when a connection closes."""


class EcmpPathSelector:
    """Baseline selection: ephemeral ports + independent ECMP hashing.

    Parameters
    ----------
    topology:
        The built cluster.
    qps_per_connection:
        QPs per connection; the bonded-NIC reference configuration uses
        two (one per physical port).
    seed:
        Salt for the deterministic ephemeral-port generator.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        qps_per_connection: int = 2,
        seed: int = 0,
    ) -> None:
        if qps_per_connection < 1:
            raise ValueError("qps_per_connection must be >= 1")
        self.topology = topology
        self.qps_per_connection = qps_per_connection
        self._port_hasher = EcmpHasher(seed=seed ^ 0x5EED)

    def allocate(self, request: PathRequest) -> list[QpAllocation]:
        """One QP per physical port (round-robin), ECMP-routed."""
        src_nic_obj = self.topology.node(request.src_node).nics[request.src_nic]
        dst_nic_obj = self.topology.node(request.dst_node).nics[request.dst_nic]
        allocations: list[QpAllocation] = []
        for q in range(request.num_qps):
            src_port = self._ephemeral_port(request, q)
            five_tuple = FiveTuple(
                src_ip=src_nic_obj.ip_address,
                dst_ip=dst_nic_obj.ip_address,
                src_port=src_port,
                dst_port=ROCE_DST_PORT,
            )
            # The bond driver pins QP q to physical port q % 2; the fabric
            # then hashes the rest of the route.
            side = q % 2
            choice = self.topology.ecmp_choice(
                request.src_node,
                request.src_nic,
                request.dst_node,
                request.dst_nic,
                five_tuple,
                src_side=side,
            )
            path = self.topology.resolve_path(
                request.src_node, request.src_nic, request.dst_node, request.dst_nic, choice
            )
            allocations.append(
                QpAllocation(
                    qp_num=next(_qp_counter),
                    src_port=src_port,
                    five_tuple=five_tuple,
                    choice=choice,
                    path=path,
                )
            )
        return allocations

    def on_link_down(self, link: Link, flows: Sequence[Flow]) -> None:
        """ECMP reconvergence: re-walk each affected flow's hash choices.

        The deterministic hash walk lands the displaced flows on a small
        set of surviving links — the clumpy rerouting the paper observes
        in Fig. 13a.
        """
        for flow in flows:
            request: PathRequest | None = flow.metadata.get("request")
            alloc: QpAllocation | None = flow.metadata.get("qp")
            if request is None or alloc is None:
                continue
            choice = self.topology.ecmp_choice(
                request.src_node,
                request.src_nic,
                request.dst_node,
                request.dst_nic,
                alloc.five_tuple,
                src_side=alloc.choice.src_side,
            )
            path = self.topology.resolve_path(
                request.src_node, request.src_nic, request.dst_node, request.dst_nic, choice
            )
            alloc.choice = choice
            alloc.path = path
            flow.reroute(path)

    def release(self, request: PathRequest, allocations: Sequence[QpAllocation]) -> None:
        """No shared state to return for the ECMP baseline."""

    def _ephemeral_port(self, request: PathRequest, q: int) -> int:
        key = FiveTuple(
            src_ip=f"{request.comm_id}|{request.src_node}/{request.src_nic}",
            dst_ip=f"{request.dst_node}/{request.dst_nic}",
            src_port=q,
            dst_port=0,
        )
        return 49152 + self._port_hasher.hash_value(key, stage="ephemeral") % 16384
