"""Topology-aware rank placement helpers.

The paper's first-line mitigation for traffic collisions is placing
communicating ranks close together (§III-B: NVLink first, then
topology-aware scheduling).  These helpers build the node-contiguous
rank orderings the collective engine expects, and the parallel-group
decompositions (DP/TP/PP) the training layer uses.
"""

from __future__ import annotations

from typing import Sequence

from repro.collective.communicator import RankLocation


def contiguous_ranks(nodes: Sequence[int], gpus_per_node: int) -> list[RankLocation]:
    """Node-contiguous rank ordering over full nodes.

    Rank ``i`` lands on node ``nodes[i // gpus_per_node]``, GPU
    ``i % gpus_per_node`` — the layout a topology-aware scheduler
    produces, minimizing inter-node ring edges.
    """
    if gpus_per_node < 1:
        raise ValueError("gpus_per_node must be >= 1")
    return [
        RankLocation(node=node, gpu=gpu)
        for node in nodes
        for gpu in range(gpus_per_node)
    ]


def tp_groups(nodes: Sequence[int], gpus_per_node: int, tp_size: int) -> list[list[RankLocation]]:
    """Tensor-parallel groups: ``tp_size`` consecutive GPUs per group.

    With ``tp_size == gpus_per_node`` each group is one full node and TP
    traffic never leaves NVLink (the reference configuration).
    """
    if gpus_per_node % tp_size != 0:
        raise ValueError("tp_size must divide gpus_per_node")
    groups: list[list[RankLocation]] = []
    for node in nodes:
        for base in range(0, gpus_per_node, tp_size):
            groups.append(
                [RankLocation(node=node, gpu=base + i) for i in range(tp_size)]
            )
    return groups


def dp_groups(nodes: Sequence[int], gpus_per_node: int, tp_size: int) -> list[list[RankLocation]]:
    """Data-parallel groups: same position across TP groups.

    For the common ``tp_size == gpus_per_node`` case this yields one DP
    group per GPU index, each spanning every node on one rail — so the
    eight concurrent DP allreduces together exercise all eight NICs.
    """
    if gpus_per_node % tp_size != 0:
        raise ValueError("tp_size must divide gpus_per_node")
    groups: list[list[RankLocation]] = []
    for gpu in range(gpus_per_node):
        groups.append([RankLocation(node=node, gpu=gpu) for node in nodes])
    return groups


def pp_stage_nodes(nodes: Sequence[int], pp_size: int) -> list[list[int]]:
    """Split nodes into ``pp_size`` contiguous pipeline stages."""
    if len(nodes) % pp_size != 0:
        raise ValueError("pp_size must divide the node count")
    per_stage = len(nodes) // pp_size
    return [list(nodes[i * per_stage : (i + 1) * per_stage]) for i in range(pp_size)]
