"""ACCL stand-in: collective communication with three-layer monitoring.

The paper extends the Alibaba Collective Communication Library with
online monitoring of the communicator, operation and transport layers
(Fig. 6) and with externally controlled path selection for C4P.  This
package provides the same capabilities on the simulated fabric:

* :mod:`repro.collective.communicator` — communicators and rank layout,
* :mod:`repro.collective.algorithms` — ring/pairwise schedules and the
  per-edge traffic factors of each collective,
* :mod:`repro.collective.selectors` — the path-selection interface, with
  the default ECMP selector (the baseline C4P replaces),
* :mod:`repro.collective.transport` — connections and QPs mapped onto
  simulator flows,
* :mod:`repro.collective.monitoring` — the record schemas of the
  monitoring enhancement,
* :mod:`repro.collective.context` — the engine tying it together and
  running collective operations on the event loop.
"""

from repro.collective.algorithms import Algorithm, OpType, traffic_factor
from repro.collective.communicator import Communicator, RankLocation
from repro.collective.context import CollectiveContext, OpHandle
from repro.collective.monitoring import (
    CommunicatorRecord,
    MessageRecord,
    MonitoringSink,
    OpLaunchRecord,
    OpRecord,
    RecordingSink,
)
from repro.collective.selectors import EcmpPathSelector, PathSelector, QpAllocation
from repro.collective.transport import Connection

__all__ = [
    "Communicator",
    "RankLocation",
    "OpType",
    "Algorithm",
    "traffic_factor",
    "CommunicatorRecord",
    "OpLaunchRecord",
    "OpRecord",
    "MessageRecord",
    "MonitoringSink",
    "RecordingSink",
    "PathSelector",
    "EcmpPathSelector",
    "QpAllocation",
    "Connection",
    "CollectiveContext",
    "OpHandle",
]
