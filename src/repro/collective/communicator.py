"""Communicators: ordered groups of ranks spanning nodes.

A communicator is the unit of collective communication.  Its ranks are
placed on (node, gpu) pairs; ring algorithms traverse nodes in the order
the ranks were given (topology-aware schedulers hand in node-contiguous
orderings, see :mod:`repro.collective.placement`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

_comm_counter = itertools.count()


@dataclass(frozen=True)
class RankLocation:
    """Physical placement of one rank.

    The reference design pairs GPU ``i`` with NIC ``i``, so the GPU index
    doubles as the NIC (rail) index for network communication.
    """

    node: int
    gpu: int

    @property
    def nic(self) -> int:
        """NIC index used by this rank for inter-node traffic."""
        return self.gpu


class Communicator:
    """An ordered set of ranks participating in collectives together."""

    def __init__(self, ranks: Sequence[RankLocation], comm_id: str | None = None) -> None:
        if not ranks:
            raise ValueError("a communicator needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate rank locations in communicator")
        self.ranks: list[RankLocation] = list(ranks)
        self.comm_id = comm_id or f"comm-{next(_comm_counter)}"
        self._seq = itertools.count()
        # Node sequence in first-appearance order (ring order at node level).
        seen: dict[int, None] = {}
        for rank in self.ranks:
            seen.setdefault(rank.node, None)
        self.node_sequence: list[int] = list(seen)
        self._local_gpus: dict[int, list[int]] = {}
        for rank in self.ranks:
            self._local_gpus.setdefault(rank.node, []).append(rank.gpu)
        counts = {len(gpus) for gpus in self._local_gpus.values()}
        if len(counts) != 1:
            raise ValueError(
                "unbalanced communicator: all nodes must host the same number of ranks"
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.ranks)

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes."""
        return len(self.node_sequence)

    @property
    def ranks_per_node(self) -> int:
        """Local rank count per node (uniform by construction)."""
        return self.size // self.num_nodes

    @property
    def is_single_node(self) -> bool:
        """True when all ranks live on one node (NVLink-only traffic)."""
        return self.num_nodes == 1

    def local_gpus(self, node: int) -> list[int]:
        """GPU indices this communicator uses on ``node``."""
        return list(self._local_gpus[node])

    def channels(self) -> list[int]:
        """NIC/rail indices carrying this communicator's inter-node traffic.

        One channel per local rank: channel ``c`` crosses node boundaries
        on the NIC of the c-th local GPU (rail-aligned, as in the
        rail-optimized designs ACCL targets).
        """
        return self.local_gpus(self.node_sequence[0])

    def ring_node_edges(self) -> list[tuple[int, int]]:
        """Directed node-level edges of the ring, in ring order.

        A two-node communicator yields both directions (the ring wraps);
        a single-node communicator yields no network edges.
        """
        nodes = self.node_sequence
        if len(nodes) <= 1:
            return []
        return [(nodes[i], nodes[(i + 1) % len(nodes)]) for i in range(len(nodes))]

    def chain_node_edges(self) -> list[tuple[int, int]]:
        """Ring order without the wrap edge (pipelined broadcast chain)."""
        nodes = self.node_sequence
        return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]

    def next_seq(self) -> int:
        """Monotonic per-communicator operation sequence number."""
        return next(self._seq)

    def rank_index(self, location: RankLocation) -> int:
        """Rank number of a location within this communicator."""
        return self.ranks.index(location)

    def __repr__(self) -> str:
        return (
            f"Communicator({self.comm_id!r}, size={self.size}, "
            f"nodes={self.num_nodes})"
        )
