"""Multi-phase communication schedules for the collective algorithms.

The engine executes a collective as a sequence of *phases*; each phase
is a set of concurrent node-level transfers and phases are separated by
a barrier (the structure of recursive algorithms).  The ring family
collapses to a single steady-state phase — its pipelining means every
edge is busy for the whole operation — while halving-doubling, tree and
hierarchical algorithms are genuinely phased.

The paper's benchmarks force the ring algorithm (§IV-A) to make busbw
comparable; the other schedules exist because ACCL has them, and they
make good ablations: their traffic *concentrates* on fewer edges per
phase, which changes how collisions hurt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collective.algorithms import OpType, traffic_factor
from repro.collective.communicator import Communicator


@dataclass(frozen=True)
class Transfer:
    """One node-level transfer inside a phase.

    ``bits_per_channel`` is the payload each engaged NIC (channel)
    carries for this transfer.
    """

    src_node: int
    dst_node: int
    bits_per_channel: float


#: A phase is a set of transfers that run concurrently.
Phase = list[Transfer]


def ring_phases(comm: Communicator, op: OpType, size_bits: float) -> list[Phase]:
    """The pipelined ring as one steady-state phase.

    Each directed node edge carries ``traffic_factor x size / channels``
    over the operation; because chunks pipeline, all edges are busy
    simultaneously and the operation completes when the slowest edge
    drains.
    """
    channels = len(comm.channels())
    per_channel = traffic_factor(op, comm.size) * size_bits / channels
    phase = [
        Transfer(src, dst, per_channel) for src, dst in comm.ring_node_edges()
    ]
    return [phase] if phase else []


def halving_doubling_phases(comm: Communicator, size_bits: float) -> list[Phase]:
    """Recursive halving-doubling allreduce over the node ring.

    Requires a power-of-two node count.  Round ``k`` of the
    reduce-scatter half exchanges ``size / 2^(k+1)`` with the partner at
    distance ``2^k``; the all-gather half mirrors it.  Every rank both
    sends and receives in each round, so each round contributes one
    transfer per direction per node pair.

    Payloads carry a rank-level correction factor so total inter-node
    traffic matches the flat rank-level recursion (the node-level
    recursion alone would move ``2(1 - 1/n_nodes) x size`` instead of
    ``2(1 - 1/n_ranks) x size``), keeping busbw directly comparable with
    the ring algorithm.
    """
    nodes = comm.node_sequence
    n = len(nodes)
    if n < 2:
        return []
    if n & (n - 1):
        raise ValueError(f"halving-doubling needs a power-of-two node count, got {n}")
    channels = len(comm.channels())
    node_factor = 2.0 * (1.0 - 1.0 / n)
    correction = traffic_factor(OpType.ALLREDUCE, comm.size) / node_factor
    phases: list[Phase] = []
    # Reduce-scatter: distances 1, 2, 4, ... with shrinking payloads.
    distance = 1
    payload = correction * size_bits / 2.0
    while distance < n:
        phase: Phase = []
        for i, node in enumerate(nodes):
            phase.append(Transfer(node, nodes[i ^ distance], payload / channels))
        phases.append(phase)
        distance *= 2
        payload /= 2.0
    # All-gather: mirror image (payloads grow back).
    for phase in reversed(phases[:]):
        mirrored = [Transfer(t.src_node, t.dst_node, t.bits_per_channel) for t in phase]
        phases.append(mirrored)
    return phases


def tree_phases(comm: Communicator, size_bits: float) -> list[Phase]:
    """Binomial-tree broadcast from node rank 0.

    Round ``k`` doubles the number of nodes holding the data; each
    holder sends the full payload to a node ``2^k`` positions away.
    """
    nodes = comm.node_sequence
    n = len(nodes)
    if n < 2:
        return []
    channels = len(comm.channels())
    per_channel = size_bits / channels
    phases: list[Phase] = []
    have = 1
    while have < n:
        phase: Phase = []
        for i in range(min(have, n - have)):
            phase.append(Transfer(nodes[i], nodes[i + have], per_channel))
        phases.append(phase)
        have *= 2
    return phases


def pairwise_alltoall_phases(comm: Communicator, size_bits: float) -> list[Phase]:
    """Pairwise-exchange alltoall: one phase per non-zero node offset.

    In phase ``k`` every node sends its block for the node ``k``
    positions ahead; payload per ordered node pair is
    ``size x ranks_per_node / comm.size``.
    """
    nodes = comm.node_sequence
    n = len(nodes)
    if n < 2:
        return []
    channels = len(comm.channels())
    pair_bits = size_bits * comm.ranks_per_node / comm.size / channels
    phases: list[Phase] = []
    for offset in range(1, n):
        phases.append(
            [
                Transfer(nodes[i], nodes[(i + offset) % n], pair_bits)
                for i in range(n)
            ]
        )
    return phases


def hierarchical_allreduce_phases(
    comm: Communicator, size_bits: float
) -> tuple[float, list[Phase], float]:
    """Hierarchical allreduce: NVLink reduce, inter-node ring, NVLink bcast.

    Returns ``(intra_reduce_bits, inter_phases, intra_bcast_bits)``:
    the engine charges the intra-node stages to the NVLink budget and
    runs the inter-node ring over the fabric with the *reduced* payload
    (one rank's worth per node), on all channels.

    This is the paper's first-line optimization made explicit: "we
    minimize the network diameter by leveraging high-speed NVLink
    interconnects" (§III-B) — inter-node traffic shrinks by the local
    rank count.
    """
    nodes = comm.node_sequence
    channels = len(comm.channels())
    if len(nodes) < 2:
        return (size_bits, [], size_bits)
    n_nodes = len(nodes)
    inter_factor = 2.0 * (n_nodes - 1) / n_nodes
    per_channel = inter_factor * size_bits / channels
    phase = [
        Transfer(src, dst, per_channel)
        for src, dst in comm.ring_node_edges()
    ]
    return (size_bits, [phase], size_bits)
