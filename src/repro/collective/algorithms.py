"""Collective algorithms and their per-edge traffic factors.

The simulator needs, for each (operation, algorithm) pair, how many bits
cross every inter-node ring edge when each rank contributes ``size``
bits.  For the ring family this is the textbook accounting:

* allreduce      = reduce-scatter + all-gather = 2(n-1)/n x size
* reduce-scatter =                                (n-1)/n x size
* all-gather     =                                (n-1)/n x size
* broadcast      = pipelined chain              = size
* alltoall       = pairwise exchange; handled separately because its
  node-level traffic is all-to-all rather than ring-shaped.
* send/recv      = point-to-point;  size.

The bus-bandwidth metric reported by nccl-tests follows the same
convention: ``busbw = traffic_factor * size / time``, which makes busbw
directly comparable across operations and equal to the per-rank
bottleneck bandwidth for ring algorithms.
"""

from __future__ import annotations

import enum


class OpType(enum.Enum):
    """Collective operation types supported by the library."""

    ALLREDUCE = "allreduce"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_GATHER = "all_gather"
    BROADCAST = "broadcast"
    ALLTOALL = "alltoall"
    SEND_RECV = "send_recv"


class Algorithm(enum.Enum):
    """Communication algorithm used to realize an operation."""

    RING = "ring"
    PAIRWISE = "pairwise"
    PIPELINE = "pipeline"
    HALVING_DOUBLING = "halving_doubling"
    TREE = "tree"
    HIERARCHICAL = "hierarchical"


#: Which algorithms can realize each operation.
SUPPORTED_ALGORITHMS = {
    OpType.ALLREDUCE: (Algorithm.RING, Algorithm.HALVING_DOUBLING, Algorithm.HIERARCHICAL),
    OpType.REDUCE_SCATTER: (Algorithm.RING,),
    OpType.ALL_GATHER: (Algorithm.RING,),
    OpType.BROADCAST: (Algorithm.PIPELINE, Algorithm.TREE),
    OpType.ALLTOALL: (Algorithm.PAIRWISE,),
    OpType.SEND_RECV: (Algorithm.PIPELINE,),
}


#: Default algorithm per operation (the paper's benchmarks force ring).
DEFAULT_ALGORITHM = {
    OpType.ALLREDUCE: Algorithm.RING,
    OpType.REDUCE_SCATTER: Algorithm.RING,
    OpType.ALL_GATHER: Algorithm.RING,
    OpType.BROADCAST: Algorithm.PIPELINE,
    OpType.ALLTOALL: Algorithm.PAIRWISE,
    OpType.SEND_RECV: Algorithm.PIPELINE,
}


def traffic_factor(op: OpType, n_ranks: int) -> float:
    """Bits crossing each ring edge per bit of per-rank payload.

    Also the factor in the nccl-tests busbw formula.  ``n_ranks`` is the
    communicator size.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_ranks == 1:
        return 0.0
    n = float(n_ranks)
    if op is OpType.ALLREDUCE:
        return 2.0 * (n - 1.0) / n
    if op in (OpType.REDUCE_SCATTER, OpType.ALL_GATHER):
        return (n - 1.0) / n
    if op is OpType.BROADCAST:
        return 1.0
    if op is OpType.ALLTOALL:
        return (n - 1.0) / n
    if op is OpType.SEND_RECV:
        return 1.0
    raise ValueError(f"unknown op {op}")


def busbw(op: OpType, n_ranks: int, size_bits: float, seconds: float) -> float:
    """nccl-tests bus bandwidth in bits/s for a completed operation."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return traffic_factor(op, n_ranks) * size_bits / seconds


def ring_edge_bits(op: OpType, n_ranks: int, size_bits: float, channels: int) -> float:
    """Bits each inter-node ring edge carries per channel for one op."""
    if channels < 1:
        raise ValueError("channels must be >= 1")
    return traffic_factor(op, n_ranks) * size_bits / channels


def alltoall_pair_bits(n_ranks: int, size_bits: float) -> float:
    """Bits exchanged between each ordered rank pair in an alltoall."""
    if n_ranks < 2:
        return 0.0
    return size_bits / n_ranks
