"""Export monitoring records and experiment results to JSON/CSV.

Production C4 feeds dashboards and offline analysis from the master's
record store; these helpers provide the equivalent serialization layer
for the simulation, so runs can be archived and compared outside
Python.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.chaos.scorecard import CampaignScorecard, ScenarioScorecard
from repro.collective.monitoring import MessageRecord, OpRecord
from repro.training.lifetime import DowntimeBreakdown


def op_record_to_dict(record: OpRecord) -> dict:
    """Flatten an operation record into JSON-safe primitives."""
    return {
        "comm_id": record.comm_id,
        "seq": record.seq,
        "op_type": record.op_type.value,
        "algorithm": record.algorithm.value,
        "dtype": record.dtype,
        "element_count": record.element_count,
        "rank": record.rank,
        "node": record.location.node,
        "gpu": record.location.gpu,
        "launch_time": record.launch_time,
        "start_time": record.start_time,
        "end_time": record.end_time,
        "wait_time": record.wait_time,
    }


def message_record_to_dict(record: MessageRecord) -> dict:
    """Flatten a transport record into JSON-safe primitives."""
    return {
        "comm_id": record.comm_id,
        "seq": record.seq,
        "src_node": record.src_node,
        "src_nic": record.src_nic,
        "dst_node": record.dst_node,
        "dst_nic": record.dst_nic,
        "src_ip": record.src_ip,
        "dst_ip": record.dst_ip,
        "qp_num": record.qp_num,
        "src_port": record.src_port,
        "message_index": record.message_index,
        "size_bits": record.size_bits,
        "post_time": record.post_time,
        "complete_time": record.complete_time,
        "duration": record.duration,
    }


def downtime_to_dict(breakdown: DowntimeBreakdown) -> dict:
    """Serialize a downtime breakdown including per-bucket diagnosis."""
    return {
        "duration_seconds": breakdown.duration_seconds,
        "crash_count": breakdown.crash_count,
        "post_checkpoint_seconds": breakdown.post_checkpoint_seconds,
        "detection_seconds": breakdown.detection_seconds,
        "diagnosis_seconds": breakdown.diagnosis_seconds,
        "reinit_seconds": breakdown.reinit_seconds,
        "total_seconds": breakdown.total_seconds,
        "total_fraction": breakdown.fraction(breakdown.total_seconds),
        "diagnosis_by_bucket": {
            bucket.value: seconds
            for bucket, seconds in breakdown.diagnosis_by_bucket.items()
        },
    }


def scenario_scorecard_to_dict(card: ScenarioScorecard) -> dict:
    """Serialize one chaos scenario's score, including derived metrics."""
    fabric = None
    if card.fabric is not None:
        m = card.fabric
        fabric = {
            "qps_total": m.qps_total,
            "migrations": m.migrations,
            "stranded": m.stranded,
            "residual_after_deadline": m.residual_after_deadline,
            "reroute_latency_mean": m.reroute_latency_mean,
            "reroute_latency_max": m.reroute_latency_max,
            "holddown_violations": m.holddown_violations,
            "plane_violations": m.plane_violations,
            "spine_imbalance": m.spine_imbalance,
            "pre_fault_throughput": m.pre_fault_throughput,
            "recovery_time": m.recovery_time,
            "recovered_links": m.recovered_links,
        }
    controlplane = None
    if card.controlplane is not None:
        m = card.controlplane
        controlplane = {
            "kills": m.kills,
            "recoveries": m.recoveries,
            "failovers": m.failovers,
            "replay_digest_match": m.replay_digest_match,
            "replay_digest": m.replay_digest,
            "entries_replayed": m.entries_replayed,
            "journal_entries": m.journal_entries,
            "snapshots": m.snapshots,
            "recovery_seconds": m.recovery_seconds,
            "duplicate_actions": m.duplicate_actions,
            "fencing_rejections": m.fencing_rejections,
            "stale_actions_executed": m.stale_actions_executed,
            "blackout_false_isolations": m.blackout_false_isolations,
            "coverage_min": m.coverage_min,
            "backfilled_records": m.backfilled_records,
            "baseline_recall": m.baseline_recall,
        }
    return {
        "fabric": fabric,
        "controlplane": controlplane,
        "name": card.name,
        "seed": card.seed,
        "kind": card.kind,
        "precision": card.precision,
        "recall": card.recall,
        "true_actions": card.true_actions,
        "false_actions": card.false_actions,
        "false_isolations": card.false_isolations,
        "isolation_storms": card.isolation_storms,
        "wasted_backups": card.wasted_backups,
        "pool_exhaustions": card.pool_exhaustions,
        "steps_completed": card.steps_completed,
        "relaunches": card.relaunches,
        "restore_fallbacks": card.restore_fallbacks,
        "completed": card.completed,
        "channel": dict(card.channel),
        "episodes": [
            {
                "episode_id": outcome.episode_id,
                "kind": outcome.kind,
                "nodes": list(outcome.nodes),
                "onset": outcome.onset,
                "detected": outcome.detected,
                "detected_at": outcome.detected_at,
                "mttr_seconds": outcome.mttr_seconds,
                "storm_nodes": list(outcome.storm_nodes),
            }
            for outcome in card.episodes
        ],
    }


def campaign_scorecard_to_dict(
    card: CampaignScorecard, observability: dict | None = None
) -> dict:
    """Serialize a full chaos campaign scorecard (the ``repro chaos`` payload).

    ``observability`` optionally embeds the campaign's observability
    snapshot (``ObservabilityPlane.snapshot()``) so one archived document
    carries both the judgment and the telemetry that explains it.
    """
    payload = {
        "precision": card.precision,
        "recall": card.recall,
        "false_isolations": card.false_isolations,
        "isolation_storms": card.isolation_storms,
        "wasted_backups": card.wasted_backups,
        "mttr": card.mttr_stats(),
        "scenarios": [scenario_scorecard_to_dict(s) for s in card.scenarios],
    }
    if observability is not None:
        payload["observability"] = observability
    return payload


def to_jsonable(value):
    """Best-effort conversion of result objects to JSON-safe structures."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: to_jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "value") and not isinstance(value, (int, float, str, bool)):
        return value.value  # enums
    return value


def write_json(path: str | Path, payload) -> Path:
    """Write any JSON-able payload (dataclasses welcome) to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(to_jsonable(payload), indent=2, sort_keys=True))
    return path


def write_records_json(
    path: str | Path,
    ops: Iterable[OpRecord] = (),
    messages: Iterable[MessageRecord] = (),
) -> Path:
    """Dump monitoring records to one JSON document."""
    payload = {
        "ops": [op_record_to_dict(r) for r in ops],
        "messages": [message_record_to_dict(r) for r in messages],
    }
    return write_json(path, payload)


def write_series_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write a simple CSV (e.g. a busbw time series for plotting)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path
