"""Plain-text tables for benchmark output (the paper's rows/series)."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows, strict=True)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_cells = [str(h).ljust(w) for h, w in zip(headers, widths, strict=True)]
    lines.append("  ".join(header_cells))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def format_percent_table(mapping: Mapping[str, float], digits: int = 2) -> str:
    """Render a name -> fraction mapping as percentages."""
    rows = [(name, f"{100 * value:.{digits}f}%") for name, value in mapping.items()]
    return format_table(["component", "share"], rows)
