"""Analysis and reporting helpers for experiments and benchmarks."""

from repro.analysis.stats import summarize, Summary
from repro.analysis.report import format_table, format_percent_table
from repro.analysis.export import (
    write_json,
    write_records_json,
    write_series_csv,
    downtime_to_dict,
)

__all__ = [
    "summarize",
    "Summary",
    "format_table",
    "format_percent_table",
    "write_json",
    "write_records_json",
    "write_series_csv",
    "downtime_to_dict",
]
