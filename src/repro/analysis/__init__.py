"""Analysis and reporting helpers for experiments and benchmarks."""

from repro.analysis.export import downtime_to_dict, write_json, write_records_json, write_series_csv
from repro.analysis.report import format_percent_table, format_table
from repro.analysis.stats import Summary, summarize

__all__ = [
    "summarize",
    "Summary",
    "format_table",
    "format_percent_table",
    "write_json",
    "write_records_json",
    "write_series_csv",
    "downtime_to_dict",
]
