"""Small statistics helpers shared by benchmarks and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    stdev: float

    @property
    def spread(self) -> float:
        """Max minus min (the paper quotes e.g. an 11.27 Gbps gap)."""
        return self.maximum - self.minimum


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty series.

    Accepts any array-like (list, tuple, generator, numpy array).  The
    emptiness check runs on the converted array: ``not values`` would
    raise the ambiguous-truth-value error on numpy input and silently
    pass on a non-empty generator.
    """
    arr = np.asarray(list(values) if not hasattr(values, "__len__") else values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.median(arr)),
        stdev=float(arr.std(ddof=0)),
    )


def improvement_percent(before: float, after: float) -> float:
    """Relative improvement of ``after`` over ``before``, in percent.

    A zero or negative baseline makes "percent improvement" undefined,
    so both are rejected with a distinct message instead of surfacing as
    a ZeroDivisionError (or a sign-flipped percentage) at a call site
    far from the bad input.
    """
    if before == 0:
        raise ValueError("improvement is undefined for a zero baseline")
    if before < 0:
        raise ValueError(f"before must be positive, got {before!r}")
    return 100.0 * (after - before) / before
