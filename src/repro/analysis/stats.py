"""Small statistics helpers shared by benchmarks and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    stdev: float

    @property
    def spread(self) -> float:
        """Max minus min (the paper quotes e.g. an 11.27 Gbps gap)."""
        return self.maximum - self.minimum


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty series."""
    if not values:
        raise ValueError("cannot summarize an empty series")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.median(arr)),
        stdev=float(arr.std(ddof=0)),
    )


def improvement_percent(before: float, after: float) -> float:
    """Relative improvement of ``after`` over ``before``, in percent."""
    if before <= 0:
        raise ValueError("before must be positive")
    return 100.0 * (after - before) / before
