"""Fig. 3: performance loss grows with system scale."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.workloads.generator import scaling_sweep_job

DEFAULT_SCALES = (2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ScalePoint:
    """One bar pair of the figure."""

    num_nodes: int
    actual_samples_per_s: float
    ideal_samples_per_s: float

    @property
    def gpus(self) -> int:
        """GPU count at this point."""
        return self.num_nodes * 8

    @property
    def ratio(self) -> float:
        """Actual over ideal throughput."""
        return self.actual_samples_per_s / self.ideal_samples_per_s


@dataclass(frozen=True)
class Fig3Result:
    """The full sweep."""

    points: tuple[ScalePoint, ...]

    @property
    def ratio_at_smallest(self) -> float:
        """Actual/ideal at the smallest scale."""
        return self.points[0].ratio

    @property
    def ratio_at_largest(self) -> float:
        """Actual/ideal at the largest scale."""
        return self.points[-1].ratio


def run(
    scales: tuple[int, ...] = DEFAULT_SCALES,
    steps: int = 2,
    ecmp_seed: int = 2,
) -> Fig3Result:
    """Weak-scaling sweep of GPT-22B, ECMP baseline vs collision-free."""
    points = []
    for nodes in scales:
        throughput = {}
        for use_c4p in (False, True):
            job = scaling_sweep_job(nodes, use_c4p=use_c4p, ecmp_seed=ecmp_seed)
            job.run_steps(steps)
            job.context.network.run()
            throughput[use_c4p] = job.throughput_samples_per_second(skip=1)
        points.append(
            ScalePoint(
                num_nodes=nodes,
                actual_samples_per_s=throughput[False],
                ideal_samples_per_s=throughput[True],
            )
        )
    return Fig3Result(points=tuple(points))


def format_result(result: Fig3Result) -> str:
    """Render the figure's bars as a table."""
    rows = [
        (
            f"GPU={p.gpus}",
            f"{p.actual_samples_per_s:.1f}",
            f"{p.ideal_samples_per_s:.1f}",
            f"{100 * p.ratio:.1f}%",
        )
        for p in result.points
    ]
    header = (
        "Fig. 3 — GPT-22B weak scaling, actual vs ideal (samples/s); "
        "paper: ~30% below ideal at 512 GPUs\n"
    )
    return header + format_table(["scale", "actual", "ideal", "actual/ideal"], rows)
