"""Fig. 12: tolerance to dynamic link failures (static TE vs dynamic LB)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.analysis.stats import Summary, summarize
from repro.core.c4p.load_balance import DynamicLoadBalancer, LoadBalancerConfig
from repro.workloads.generator import build_cluster, concurrent_allreduce_jobs, fig12_spec

FAILED_UPLINK = ("lup", 0, 0, 0, 0)


@dataclass(frozen=True)
class Fig12Mode:
    """One mode's before/after busbw samples."""

    dynamic: bool
    before: tuple[float, ...]
    after: tuple[float, ...]

    @property
    def summary_after(self) -> Summary:
        """Post-failure distribution."""
        return summarize(list(self.after))


@dataclass(frozen=True)
class Fig12Result:
    """Static vs dynamic behaviour around the failure."""

    static: Fig12Mode
    dynamic: Fig12Mode
    ideal_after: float = 7 / 8 * 362.0

    @property
    def gain(self) -> float:
        """Dynamic LB's relative improvement over static TE after failure."""
        return (
            self.dynamic.summary_after.mean / self.static.summary_after.mean - 1.0
        )


def _run_mode(
    dynamic: bool, failure_time: float, run_until: float, ecmp_seed: int
) -> Fig12Mode:
    scenario = build_cluster(fig12_spec(), use_c4p=True, ecmp_seed=ecmp_seed)
    runners = concurrent_allreduce_jobs(
        scenario,
        max_ops=10_000,
        warmup_ops=0,
        stop_time=run_until,
        dynamic=dynamic,
        qp_work_stealing=dynamic,
    )
    for runner in runners:
        runner.start()
    if dynamic:
        balancer = DynamicLoadBalancer(
            [r.context for r in runners], LoadBalancerConfig(interval=0.02)
        )
        balancer.start()
    scenario.network.schedule(
        failure_time, lambda: scenario.network.fail_link(FAILED_UPLINK)
    )
    scenario.network.run(until=run_until)
    before = tuple(
        h.busbw_per_nic_gbps
        for r in runners
        for h in r.handles
        if h.end_time <= failure_time
    )
    after = tuple(
        h.busbw_per_nic_gbps
        for r in runners
        for h in r.handles
        if h.start_time > failure_time + 0.05
    )
    return Fig12Mode(dynamic=dynamic, before=before, after=after)


def run(
    failure_time: float = 0.1,
    run_until: float = 2.5,
    ecmp_seed: int = 6,
) -> Fig12Result:
    """Run both modes through the mid-run uplink failure."""
    return Fig12Result(
        static=_run_mode(False, failure_time, run_until, ecmp_seed),
        dynamic=_run_mode(True, failure_time, run_until, ecmp_seed),
    )


def format_result(result: Fig12Result) -> str:
    """Render the before/after comparison."""
    pre = summarize(list(result.static.before) + list(result.dynamic.before))
    s_static = result.static.summary_after
    s_dynamic = result.dynamic.summary_after
    rows = [
        ("before failure", f"{pre.mean:.1f}", "-", "~362 (peak)"),
        (
            "static TE after",
            f"{s_static.mean:.1f}",
            f"{s_static.minimum:.0f}-{s_static.maximum:.0f}",
            "185.76 (160-220)",
        ),
        (
            "dynamic LB after",
            f"{s_dynamic.mean:.1f}",
            f"{s_dynamic.minimum:.0f}-{s_dynamic.maximum:.0f}",
            "301.46 (290-335)",
        ),
        ("7/8 ideal", f"{result.ideal_after:.1f}", "-", "315"),
    ]
    header = (
        f"Fig. 12 — busbw around a link failure; dynamic LB "
        f"+{100 * result.gain:.0f}% over static (paper +62.3%)\n"
    )
    return header + format_table(["phase", "mean", "range", "paper"], rows)
