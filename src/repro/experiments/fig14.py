"""Fig. 14: performance improvement in real-life training jobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.workloads.generator import build_cluster, fig14_jobs

PAPER = {
    "job1": (74.82, 86.76),
    "job2": (156.59, 178.65),
    "job3": (None, None),
}


@dataclass(frozen=True)
class JobResult:
    """One job's before/after throughput."""

    name: str
    baseline_samples_per_s: float
    c4p_samples_per_s: float
    baseline_comm_fraction: float

    @property
    def gain(self) -> float:
        """Relative throughput improvement with C4P."""
        return self.c4p_samples_per_s / self.baseline_samples_per_s - 1.0


@dataclass(frozen=True)
class Fig14Result:
    """All three jobs."""

    jobs: dict[str, JobResult]


def run(steps: int = 3, ecmp_seed: int = 12) -> Fig14Result:
    """Train each Fig. 14 job with and without C4P."""
    jobs = {}
    for which in ("job1", "job2", "job3"):
        measured = {}
        comm_fraction = 0.0
        for use_c4p in (False, True):
            scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=ecmp_seed)
            job = fig14_jobs(scenario, which)
            job.run_steps(steps)
            scenario.network.run()
            measured[use_c4p] = job.throughput_samples_per_second(skip=1)
            if not use_c4p:
                comm_fraction = job.mean_comm_fraction(skip=1)
        jobs[which] = JobResult(
            name=which,
            baseline_samples_per_s=measured[False],
            c4p_samples_per_s=measured[True],
            baseline_comm_fraction=comm_fraction,
        )
    return Fig14Result(jobs=jobs)


def format_result(result: Fig14Result) -> str:
    """Render the three jobs' throughput comparison."""
    rows = []
    for name, job in result.jobs.items():
        paper_base, paper_c4p = PAPER[name]
        paper = f"{paper_base} -> {paper_c4p}" if paper_base else "no gain"
        rows.append(
            (
                name,
                f"{job.baseline_samples_per_s:.2f}",
                f"{job.c4p_samples_per_s:.2f}",
                f"+{100 * job.gain:.1f}%",
                f"{100 * job.baseline_comm_fraction:.0f}%",
                paper,
            )
        )
    header = "Fig. 14 — training throughput (samples/s) with/without C4P\n"
    return header + format_table(
        ["job", "baseline", "with C4P", "gain", "comm share", "paper"], rows
    )
