"""Table I: crash-cause distribution of a representative large job."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.cluster.faults import USER_VIEW, FaultEvent, FaultInjector, FaultType

MONTH_SECONDS = 30 * 24 * 3600.0

#: Paper's Table I: root cause -> (proportion, local fraction).
PAPER_MIX = {
    FaultType.CUDA_ERROR: (0.125, 1.00),
    FaultType.ECC_NVLINK_ERROR: (0.275, 1.00),
    FaultType.CCL_TIMEOUT: (0.20, 0.75),
    FaultType.ACK_TIMEOUT: (0.275, 0.818),
    FaultType.NETWORK_OTHER: (0.125, 0.40),
}

ROOT_CAUSE_LABEL = {
    FaultType.CUDA_ERROR: "CUDA Error",
    FaultType.ECC_NVLINK_ERROR: "ECC/NVLink Error",
    FaultType.CCL_TIMEOUT: "NCCL timeout",
    FaultType.ACK_TIMEOUT: "ACK timeout",
    FaultType.NETWORK_OTHER: "Others",
}


@dataclass(frozen=True)
class CauseRow:
    """One Table I row."""

    users_view: str
    root_cause: str
    proportion: float
    local_fraction: float
    paper_proportion: float
    paper_local: float


@dataclass(frozen=True)
class Table1Result:
    """The tabulated campaign."""

    rows: tuple[CauseRow, ...]
    total_events: int
    months: float
    local_fraction: float

    @property
    def crashes_per_month(self) -> float:
        """Average monthly crash count at the configured scale."""
        return self.total_events / self.months

    @property
    def nccl_error_fraction(self) -> float:
        """Fraction of causes that surface as a bare 'NCCL Error'."""
        return sum(r.proportion for r in self.rows if r.users_view == "NCCL Error")


def run(months: int = 24, num_gpus: int = 4096, seed: int = 0) -> Table1Result:
    """Sample a fault campaign and tabulate it Table I-style."""
    injector = FaultInjector(seed=seed)
    events: list[FaultEvent] = injector.sample_crashes(
        MONTH_SECONDS * months, num_gpus=num_gpus, num_nodes=num_gpus // 8
    )
    by_type: dict[FaultType, list[FaultEvent]] = defaultdict(list)
    for event in events:
        by_type[event.fault_type].append(event)
    rows = []
    for fault_type, (paper_prop, paper_local) in PAPER_MIX.items():
        bucket = by_type.get(fault_type, [])
        local = sum(1 for e in bucket if e.is_local) / max(1, len(bucket))
        rows.append(
            CauseRow(
                users_view=USER_VIEW[fault_type],
                root_cause=ROOT_CAUSE_LABEL[fault_type],
                proportion=len(bucket) / len(events),
                local_fraction=local,
                paper_proportion=paper_prop,
                paper_local=paper_local,
            )
        )
    local_total = sum(1 for e in events if e.is_local) / len(events)
    return Table1Result(
        rows=tuple(rows),
        total_events=len(events),
        months=months,
        local_fraction=local_total,
    )


def format_result(result: Table1Result) -> str:
    """Render the paper-style table."""
    rows = [
        (
            row.users_view,
            row.root_cause,
            f"{100 * row.proportion:.1f}%",
            f"{100 * row.local_fraction:.1f}%",
            f"{100 * row.paper_proportion:.1f}% / {100 * row.paper_local:.1f}%",
        )
        for row in result.rows
    ]
    rows.append(
        ("-", "All local faults", f"{100 * result.local_fraction:.1f}%", "-", "82.5%")
    )
    header = (
        f"Table I — {result.crashes_per_month:.1f} crashes/month "
        f"({result.total_events} over {result.months:.0f} months)\n"
    )
    return header + format_table(
        ["Users' View", "Root Cause", "Proportion", "Local", "paper (prop/local)"], rows
    )
