"""Fig. 11: CNP counts per bonded port in the congested configuration."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.workloads.generator import build_cluster, concurrent_allreduce_jobs, fig10b_spec


@dataclass(frozen=True)
class Fig11Result:
    """Per-bonded-port CNP rates over the run."""

    rates_per_second: dict[tuple, float]

    @property
    def values(self) -> list[float]:
        """Sorted CNP rates."""
        return sorted(self.rates_per_second.values())

    @property
    def mean(self) -> float:
        """Mean CNP/s across engaged ports."""
        return statistics.mean(self.values)

    @property
    def band(self) -> tuple[float, float]:
        """(min, max) CNP/s."""
        values = self.values
        return values[0], values[-1]


def run(ops: int = 12, ecmp_seed: int = 4) -> Fig11Result:
    """The Fig. 10b run, reading the congestion model's CNP counters."""
    scenario = build_cluster(
        fig10b_spec(),
        use_c4p=True,
        ecmp_seed=ecmp_seed,
        congestion=True,
        disable_spines_per_rail=4,
    )
    runners = concurrent_allreduce_jobs(scenario, max_ops=ops, warmup_ops=0)
    for runner in runners:
        runner.start()
    scenario.network.run()
    duration = scenario.network.now
    counts = scenario.network.congestion.cnp_counts
    return Fig11Result(
        rates_per_second={port: total / duration for port, total in counts.items()}
    )


def format_result(result: Fig11Result) -> str:
    """Render the CNP-rate summary."""
    low, high = result.band
    rows = [
        ("bonded ports engaged", str(len(result.values))),
        ("min CNP/s", f"{low:.0f}"),
        ("mean CNP/s", f"{result.mean:.0f}"),
        ("max CNP/s", f"{high:.0f}"),
        ("paper", "~15,000/s, band 12,500-17,500"),
    ]
    return "Fig. 11 — CNPs received per bonded port (2:1 run)\n" + format_table(
        ["metric", "value"], rows
    )
