"""Fig. 7: the communication-slow delay-matrix syndrome."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.cluster.faults import FaultInjector
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.monitoring import RecordingSink
from repro.collective.placement import contiguous_ranks
from repro.core.c4d.delay_matrix import (
    DelayMatrix,
    MatrixFinding,
    analyze_delay_matrix,
    build_delay_matrix,
)
from repro.netsim.units import GIB
from repro.workloads.generator import build_cluster


@dataclass(frozen=True)
class Fig7Result:
    """The aggregated matrix and the analyzer's verdict."""

    matrix: DelayMatrix
    finding: MatrixFinding
    injected_node: int
    injected_nic: int

    @property
    def localized(self) -> bool:
        """True when a suspect matches the injected component."""
        return any(
            s.node == self.injected_node and s.device == self.injected_nic
            for s in self.finding.suspects
        )


def run(
    victim_node: int = 3,
    victim_nic: int = 5,
    port_scale: float = 0.25,
    num_nodes: int = 8,
    ops: int = 5,
    ecmp_seed: int = 11,
) -> Fig7Result:
    """Degrade one NIC, run allreduces, build and analyze the matrix."""
    scenario = build_cluster(ecmp_seed=ecmp_seed)
    sink = RecordingSink()
    context = CollectiveContext(scenario.topology, sink=sink)
    comm = context.communicator(contiguous_ranks(range(num_nodes), 8), comm_id="dp")
    injector = FaultInjector(seed=0)
    for side in (0, 1):
        injector.degrade_nic_port(
            scenario.topology, node=victim_node, nic=victim_nic, side=side, scale=port_scale
        )
    runner = RepeatedOp(context, comm, OpType.ALLREDUCE, 1 * GIB, max_ops=ops)
    runner.start()
    scenario.network.run()
    matrix = build_delay_matrix(sink.messages)
    return Fig7Result(
        matrix=matrix,
        finding=analyze_delay_matrix(matrix),
        injected_node=victim_node,
        injected_nic=victim_nic,
    )


def render_heatmap(matrix: DelayMatrix, width: int = 4) -> str:
    """ASCII rendering of the normalized delay matrix (the paper's grid).

    Rows are source workers, columns destination workers; cells show the
    pair's delay relative to the cluster median ('.' for unobserved
    pairs).  Ring communicators populate one off-diagonal band.
    """
    workers = sorted(matrix.workers)
    baseline = matrix.baseline()
    header = " " * 8 + "".join(f"{w[0]}/{w[1]}".rjust(width + 1) for w in workers)
    lines = [header]
    for src in workers:
        cells = []
        for dst in workers:
            score = matrix.scores.get((src, dst))
            cells.append(
                ".".rjust(width + 1)
                if score is None
                else f"{score / baseline:.1f}".rjust(width + 1)
            )
        lines.append(f"{src[0]}/{src[1]}".ljust(8) + "".join(cells))
    return "\n".join(lines)


def format_result(result: Fig7Result) -> str:
    """Render the flagged pairs and the localization verdict."""
    baseline = result.matrix.baseline()
    rows = [
        (f"{src[0]}/{src[1]} -> {dst[0]}/{dst[1]}", f"{score / baseline:.2f}x")
        for (src, dst), score in sorted(result.matrix.scores.items())
        if score / baseline > 1.5
    ]
    rows.append(("suspects", ", ".join(str(s) for s in result.finding.suspects)))
    verdict = "localized" if result.localized else "MISSED"
    header = (
        f"Fig. 7 — injected slow NIC node{result.injected_node}/nic{result.injected_nic}: "
        f"{verdict}\n"
    )
    return header + format_table(["worker pair", "normalized delay"], rows)
