"""Ablations of the design choices DESIGN.md §5 calls out.

Each ablation disables one mechanism and quantifies which paper result
it is load-bearing for:

* **plane rule** — without left/right plane preservation the Fig. 9
  bonded-port imbalance returns;
* **work stealing** — without chunk re-posting a connection is gated by
  its slowest QP (the static-TE behaviour of Fig. 12);
* **congestion model** — without DCQCN the 2:1 configuration produces
  neither CNPs nor the Fig. 10b spread;
* **registry balance** — replacing balanced allocation with hashing
  reintroduces the multi-job collisions of Fig. 10a.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.analysis.stats import Summary, summarize
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext
from repro.collective.placement import contiguous_ranks
from repro.core.c4p.master import C4PMaster
from repro.core.c4p.selector import C4PSelector
from repro.netsim.units import GIB
from repro.workloads.generator import build_cluster, concurrent_allreduce_jobs, fig10b_spec


@dataclass(frozen=True)
class AblationResult:
    """All four ablations' headline numbers (busbw in Gbps)."""

    plane_rule_on: float
    plane_rule_off: float
    stealing_on: float
    stealing_off: float
    congestion_on: Summary
    congestion_off: Summary
    congestion_cnps: float
    registry_c4p: Summary
    registry_ecmp: Summary


def _single_allreduce(selector_factory, ecmp_seed: int, **context_kwargs) -> float:
    scenario = build_cluster(ecmp_seed=ecmp_seed)
    context = CollectiveContext(
        scenario.topology, selector=selector_factory(scenario), **context_kwargs
    )
    comm = context.communicator(contiguous_ranks(range(4), 8))
    handle = context.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    scenario.network.run()
    return handle.busbw_per_nic_gbps


def run(ecmp_seed: int = 9) -> AblationResult:
    """Run all four ablations."""
    plane = {}
    for enforce in (True, False):
        plane[enforce] = _single_allreduce(
            lambda s, e=enforce: C4PSelector(C4PMaster(s.topology, enforce_plane=e)),
            ecmp_seed,
        )

    stealing = {}
    for on in (True, False):
        scenario = build_cluster(ecmp_seed=1)
        scenario.topology.set_port_scale(0, 0, 0, 0.2)
        context = CollectiveContext(scenario.topology, qp_work_stealing=on)
        comm = context.communicator(contiguous_ranks(range(2), 8), comm_id=f"ws{on}")
        handle = context.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
        scenario.network.run()
        stealing[on] = handle.busbw_per_nic_gbps

    congestion = {}
    cnps = 0.0
    for on in (True, False):
        scenario = build_cluster(
            fig10b_spec(),
            use_c4p=True,
            ecmp_seed=4,
            congestion=on,
            disable_spines_per_rail=4,
        )
        runners = concurrent_allreduce_jobs(scenario, max_ops=8, warmup_ops=2)
        for runner in runners:
            runner.start()
        scenario.network.run()
        congestion[on] = summarize([r.mean_busbw_gbps for r in runners])
        if on:
            cnps = sum(scenario.network.congestion.cnp_counts.values())

    registry = {}
    for use_c4p in (True, False):
        scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=4)
        runners = concurrent_allreduce_jobs(scenario, max_ops=6, warmup_ops=2)
        for runner in runners:
            runner.start()
        scenario.network.run()
        registry[use_c4p] = summarize([r.mean_busbw_gbps for r in runners])

    return AblationResult(
        plane_rule_on=plane[True],
        plane_rule_off=plane[False],
        stealing_on=stealing[True],
        stealing_off=stealing[False],
        congestion_on=congestion[True],
        congestion_off=congestion[False],
        congestion_cnps=cnps,
        registry_c4p=registry[True],
        registry_ecmp=registry[False],
    )


def format_result(result: AblationResult) -> str:
    """Render the four ablation rows."""
    rows = [
        (
            "plane rule",
            f"{result.plane_rule_on:.1f}",
            f"{result.plane_rule_off:.1f}",
            "Fig. 9 imbalance returns",
        ),
        (
            "QP work stealing",
            f"{result.stealing_on:.1f}",
            f"{result.stealing_off:.1f}",
            "slowest-QP gating (degraded port)",
        ),
        (
            "DCQCN model",
            f"{result.congestion_on.mean:.1f} (±{result.congestion_on.spread:.1f})",
            f"{result.congestion_off.mean:.1f} (±{result.congestion_off.spread:.1f})",
            f"{result.congestion_cnps:.0f} CNPs vs none",
        ),
        (
            "balanced registry",
            f"{result.registry_c4p.mean:.1f}",
            f"{result.registry_ecmp.mean:.1f}",
            "multi-job collisions return",
        ),
    ]
    return "Ablations — mechanism on vs off (busbw Gbps)\n" + format_table(
        ["mechanism", "on", "off", "consequence"], rows
    )
