"""Fig. 13: per-switch-port bandwidth with/without dynamic load balance."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.c4p.load_balance import DynamicLoadBalancer, LoadBalancerConfig
from repro.netsim.units import GBPS
from repro.workloads.generator import build_cluster, concurrent_allreduce_jobs, fig12_spec

FAILED_UPLINK = ("lup", 0, 0, 0, 0)


@dataclass(frozen=True)
class Fig13Result:
    """Post-failure bandwidth (Gbps) per leaf uplink, per mode."""

    static_rates: dict[tuple, float]
    dynamic_rates: dict[tuple, float]

    def _live(self, rates: dict[tuple, float]) -> dict[tuple, float]:
        return {k: v for k, v in rates.items() if k != FAILED_UPLINK}

    @property
    def static_imbalance(self) -> float:
        """Max-min Gbps gap across surviving ports, static TE."""
        live = self._live(self.static_rates)
        return max(live.values()) - min(live.values())

    @property
    def dynamic_imbalance(self) -> float:
        """Max-min Gbps gap across surviving ports, dynamic LB."""
        live = self._live(self.dynamic_rates)
        return max(live.values()) - min(live.values())


def _run_mode(
    dynamic: bool,
    failure_time: float,
    sample_start: float,
    sample_end: float,
    ecmp_seed: int,
) -> dict[tuple, float]:
    scenario = build_cluster(fig12_spec(), use_c4p=True, ecmp_seed=ecmp_seed)
    runners = concurrent_allreduce_jobs(
        scenario,
        max_ops=10_000,
        warmup_ops=0,
        stop_time=sample_end,
        dynamic=dynamic,
        qp_work_stealing=dynamic,
    )
    for runner in runners:
        runner.start()
    if dynamic:
        balancer = DynamicLoadBalancer(
            [r.context for r in runners], LoadBalancerConfig(interval=0.02)
        )
        balancer.start()
    network = scenario.network
    network.schedule(failure_time, lambda: network.fail_link(FAILED_UPLINK))
    network.schedule(sample_start, network.reset_link_windows)
    network.run(until=sample_end)
    window = sample_end - sample_start
    return {
        link_id: network.link(link_id).window_rate(window) / GBPS
        for link_id in scenario.topology.leaf_uplinks(0, 0)
    }


def run(
    failure_time: float = 0.5,
    sample_start: float = 0.8,
    sample_end: float = 2.3,
    ecmp_seed: int = 6,
) -> Fig13Result:
    """Measure leaf-uplink utilization after the failure in both modes."""
    return Fig13Result(
        static_rates=_run_mode(False, failure_time, sample_start, sample_end, ecmp_seed),
        dynamic_rates=_run_mode(True, failure_time, sample_start, sample_end, ecmp_seed),
    )


def format_result(result: Fig13Result) -> str:
    """Render per-port bandwidth for both modes."""
    rows = []
    for link_id in sorted(result.static_rates):
        label = "dead uplink" if link_id == FAILED_UPLINK else f"spine{link_id[3]}"
        rows.append(
            (
                label,
                f"{result.static_rates[link_id]:.0f}",
                f"{result.dynamic_rates[link_id]:.0f}",
            )
        )
    header = (
        f"Fig. 13 — leaf uplink bandwidth (Gbps) after failure; "
        f"imbalance static {result.static_imbalance:.0f} vs dynamic "
        f"{result.dynamic_imbalance:.0f}\n"
    )
    return header + format_table(["port", "static TE", "dynamic LB"], rows)
