"""Fig. 9: bonded-port balance for a single allreduce."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.workloads.generator import allreduce_benchmark, build_cluster

DEFAULT_SCALES = (2, 4, 8, 16)


@dataclass(frozen=True)
class Fig9Point:
    """One scale's bar pair."""

    num_nodes: int
    busbw_without: float
    busbw_with: float

    @property
    def gpus(self) -> int:
        """GPU count at this point."""
        return self.num_nodes * 8

    @property
    def gain(self) -> float:
        """Relative improvement of C4P over the baseline."""
        return self.busbw_with / self.busbw_without - 1.0


@dataclass(frozen=True)
class Fig9Result:
    """The full scale sweep."""

    points: tuple[Fig9Point, ...]

    @property
    def peak_with_c4p(self) -> float:
        """Best busbw achieved with C4P (the NVLink-capped peak)."""
        return max(p.busbw_with for p in self.points)

    @property
    def worst_without(self) -> float:
        """Worst baseline busbw."""
        return min(p.busbw_without for p in self.points)


def run(
    scales: tuple[int, ...] = DEFAULT_SCALES,
    ops: int = 6,
    warmup: int = 2,
    ecmp_seed: int = 9,
) -> Fig9Result:
    """Measure allreduce busbw with and without C4P at each scale."""
    points = []
    for nodes in scales:
        busbw = {}
        for use_c4p in (False, True):
            scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=ecmp_seed)
            runner = allreduce_benchmark(
                scenario, list(range(nodes)), max_ops=ops, warmup_ops=warmup
            )
            runner.start()
            scenario.network.run()
            busbw[use_c4p] = runner.mean_busbw_gbps
        points.append(
            Fig9Point(num_nodes=nodes, busbw_without=busbw[False], busbw_with=busbw[True])
        )
    return Fig9Result(points=tuple(points))


def format_result(result: Fig9Result) -> str:
    """Render the figure's bars as a table."""
    rows = [
        (
            f"{p.gpus} GPUs",
            f"{p.busbw_without:.1f}",
            f"{p.busbw_with:.1f}",
            f"+{100 * p.gain:.0f}%",
        )
        for p in result.points
    ]
    header = (
        "Fig. 9 — allreduce busbw (Gbps) per NIC; paper: <240 without, "
        "~360 with C4P\n"
    )
    return header + format_table(["scale", "without C4P", "with C4P", "gain"], rows)
