"""Table III: error-induced downtime before and after C4D."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.training.lifetime import (
    BASELINE_OPERATIONS,
    C4D_OPERATIONS,
    DowntimeBreakdown,
    LifetimeConfig,
    OperationsModel,
    simulate_lifetime,
)

#: Paper's Table III totals.
PAPER = {
    "jun23": {
        "Post-Checkpoint": 0.0753,
        "Detection": 0.0341,
        "Diagnosis & Isolation": 0.1965,
        "Re-Initialization": 0.006,
        "Total": 0.3119,
    },
    "dec23": {
        "Post-Checkpoint": 0.0023,
        "Detection": 0.0005,
        "Diagnosis & Isolation": 0.0073,
        "Re-Initialization": 0.0015,
        "Total": 0.0116,
    },
}

COMPONENTS = (
    "Post-Checkpoint",
    "Detection",
    "Diagnosis & Isolation",
    "Re-Initialization",
    "Total",
)


@dataclass(frozen=True)
class Table3Result:
    """Both regimes of the downtime comparison."""

    before: DowntimeBreakdown
    after: DowntimeBreakdown

    @property
    def total_before(self) -> float:
        """Error-induced downtime fraction without C4D."""
        return self.before.as_table()["Total"]

    @property
    def total_after(self) -> float:
        """Error-induced downtime fraction with C4D."""
        return self.after.as_table()["Total"]

    @property
    def reduction_factor(self) -> float:
        """How many times less downtime the C4D regime suffers."""
        return self.total_before / self.total_after


def run(
    seed: int = 7,
    num_gpus: int = 2400,
    before_model: OperationsModel = BASELINE_OPERATIONS,
    after_model: OperationsModel = C4D_OPERATIONS,
) -> Table3Result:
    """Simulate one month under both operations regimes."""
    config = LifetimeConfig(seed=seed, num_gpus=num_gpus)
    return Table3Result(
        before=simulate_lifetime(config, before_model),
        after=simulate_lifetime(config, after_model),
    )


def format_result(result: Table3Result) -> str:
    """Render the paper-style before/after table."""
    before, after = result.before.as_table(), result.after.as_table()
    rows = [
        (
            component,
            f"{100 * before[component]:.2f}%",
            f"{100 * PAPER['jun23'][component]:.2f}%",
            f"{100 * after[component]:.2f}%",
            f"{100 * PAPER['dec23'][component]:.2f}%",
        )
        for component in COMPONENTS
    ]
    header = (
        f"Table III — downtime {100 * result.total_before:.1f}% -> "
        f"{100 * result.total_after:.2f}% "
        f"({result.reduction_factor:.0f}x reduction; paper ~30x)\n"
    )
    return header + format_table(
        ["Component", "measured Jun", "paper Jun", "measured Dec", "paper Dec"], rows
    )
