"""Fig. 10: global traffic engineering across concurrent jobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.analysis.stats import Summary, summarize
from repro.workloads.generator import build_cluster, concurrent_allreduce_jobs, fig10b_spec


@dataclass(frozen=True)
class Fig10Result:
    """Per-job busbw series for one oversubscription setting."""

    oversub_2to1: bool
    without_c4p: tuple[float, ...]
    with_c4p: tuple[float, ...]

    @property
    def summary_without(self) -> Summary:
        """Baseline distribution across jobs."""
        return summarize(list(self.without_c4p))

    @property
    def summary_with(self) -> Summary:
        """C4P distribution across jobs."""
        return summarize(list(self.with_c4p))

    @property
    def mean_gain(self) -> float:
        """Relative mean-throughput improvement of C4P."""
        return self.summary_with.mean / self.summary_without.mean - 1.0


def _run_case(use_c4p: bool, oversub_2to1: bool, ops: int, warmup: int, seed: int):
    if oversub_2to1:
        scenario = build_cluster(
            fig10b_spec(),
            use_c4p=use_c4p,
            ecmp_seed=seed,
            congestion=True,
            disable_spines_per_rail=4,
        )
    else:
        scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=seed)
    runners = concurrent_allreduce_jobs(scenario, max_ops=ops, warmup_ops=warmup)
    for runner in runners:
        runner.start()
    scenario.network.run()
    return tuple(runner.mean_busbw_gbps for runner in runners)


def run(
    oversub_2to1: bool = False,
    ops: int = 10,
    warmup: int = 3,
    ecmp_seed: int = 4,
) -> Fig10Result:
    """Run the 8-job contention experiment with and without C4P."""
    return Fig10Result(
        oversub_2to1=oversub_2to1,
        without_c4p=_run_case(False, oversub_2to1, ops, warmup, ecmp_seed),
        with_c4p=_run_case(True, oversub_2to1, ops, warmup, ecmp_seed),
    )


def format_result(result: Fig10Result) -> str:
    """Render per-job busbw for both modes."""
    rows = [
        (f"job{j}", f"{without:.1f}", f"{with_c4p:.1f}")
        for j, (without, with_c4p) in enumerate(
            zip(result.without_c4p, result.with_c4p, strict=True)
        )
    ]
    s_without, s_with = result.summary_without, result.summary_with
    rows.append(("mean", f"{s_without.mean:.1f}", f"{s_with.mean:.1f}"))
    rows.append(("spread", f"{s_without.spread:.1f}", f"{s_with.spread:.1f}"))
    label = "2:1" if result.oversub_2to1 else "1:1"
    paper = "+65.55%, 11.27 Gbps gap" if result.oversub_2to1 else "+70.3%"
    header = (
        f"Fig. 10{'b' if result.oversub_2to1 else 'a'} — 8 concurrent jobs, "
        f"{label} oversubscription (busbw Gbps); measured mean gain "
        f"+{100 * result.mean_gain:.1f}% (paper {paper})\n"
    )
    return header + format_table(["job", "without C4P", "with C4P"], rows)
