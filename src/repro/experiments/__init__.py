"""Reusable experiment runners for every table and figure of the paper.

Each module exposes ``run(...) -> <Result dataclass>`` plus a
``format_result`` helper; the benchmark harness asserts on the result
objects and the CLI (``python -m repro``) prints them.  Keeping the
runners in the library (rather than inside test files) lets downstream
users re-run any experiment with different parameters.
"""

from repro.experiments import (
    ablations,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig3,
    fig7,
    fig9,
    table1,
    table3,
)

#: Registry used by the CLI: name -> (module, description).
EXPERIMENTS = {
    "table1": (table1, "crash-cause distribution of a 4096-GPU job (Table I)"),
    "table3": (table3, "error-induced downtime before/after C4D (Table III)"),
    "fig3": (fig3, "performance loss vs scale, GPT-22B 16-512 GPUs (Fig. 3)"),
    "fig7": (fig7, "delay-matrix communication-slow syndrome (Fig. 7)"),
    "fig9": (fig9, "bonded-port balance, single allreduce (Fig. 9)"),
    "fig10a": (fig10, "8 concurrent jobs, 1:1 oversubscription (Fig. 10a)"),
    "fig10b": (fig10, "8 concurrent jobs, 2:1 oversubscription (Fig. 10b)"),
    "fig11": (fig11, "CNP counts per bonded port (Fig. 11)"),
    "fig12": (fig12, "link-failure tolerance, static vs dynamic (Fig. 12)"),
    "fig13": (fig13, "per-uplink bandwidth around the failure (Fig. 13)"),
    "fig14": (fig14, "real-life training jobs (Fig. 14)"),
    "ablations": (ablations, "design-choice ablations (DESIGN.md §5)"),
}

__all__ = ["EXPERIMENTS"] + sorted(name for name, _ in EXPERIMENTS.items())
