"""Builders for the paper's evaluation workloads.

Each builder wires a ready-to-run scenario on a fresh simulated cluster:
the nccl-test-style allreduce benchmark (Figs. 9-13), the 8-concurrent-
job contention setup (Fig. 10), the three real-life training jobs
(Fig. 14) and the 16-to-512-GPU scaling sweep (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.specs import TESTBED_16_NODES, ClusterSpec, pod_spec
from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.placement import contiguous_ranks
from repro.core.c4p.master import C4PMaster
from repro.core.c4p.selector import C4PSelector
from repro.netsim.congestion import CongestionModel
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GIB
from repro.training.job import JobSpec, TrainingJob
from repro.training.models import GPT_175B, GPT_22B, LLAMA_7B
from repro.training.parallelism import ParallelismPlan


@dataclass
class Scenario:
    """A built scenario: fabric + topology + optional C4P master."""

    network: FlowNetwork
    topology: ClusterTopology
    master: Optional[C4PMaster]

    def selector(self, dynamic: bool = True) -> Optional[C4PSelector]:
        """A C4P client selector, or None when C4P is off."""
        if self.master is None:
            return None
        return C4PSelector(self.master, dynamic=dynamic)


def build_cluster(
    spec: ClusterSpec = TESTBED_16_NODES,
    use_c4p: bool = False,
    ecmp_seed: int = 0,
    congestion: bool = False,
    congestion_seed: int = 0,
    disable_spines_per_rail: int = 0,
) -> Scenario:
    """Fresh network + topology (+ C4P master when requested).

    ``disable_spines_per_rail`` administratively removes the highest-
    numbered spines of every rail *before* the C4P master probes, which
    is how the paper creates its 2:1-oversubscribed configuration
    ("intentionally reduced the number of active spine switches by
    half", Fig. 10b).
    """
    model = None
    if congestion:
        # DCQCN manages the Ethernet fabric only; the virtual NVLink
        # stages are lossless and never ECN-marked.
        model = CongestionModel(
            seed=congestion_seed, link_filter=lambda link_id: link_id[0] != "nvl"
        )
    network = FlowNetwork(congestion=model)
    topology = ClusterTopology(spec, network, ecmp_seed=ecmp_seed)
    if disable_spines_per_rail:
        for rail in range(spec.rails):
            for spine in range(
                spec.spines_per_rail - disable_spines_per_rail, spec.spines_per_rail
            ):
                topology.disable_spine(rail, spine)
    master = C4PMaster(topology) if use_c4p else None
    return Scenario(network=network, topology=topology, master=master)


def fig10b_spec(num_nodes: int = 16) -> ClusterSpec:
    """Fabric for the congested (2:1) experiment of Figs. 10b/11.

    The testbed's dual-plane leaves have capacity headroom over the
    NVLink-capped demand, so halving the active spines lands the spine
    tier right at the saturation boundary (live capacity ≈ 0.97x the
    NVLink-capped demand).  That is the regime the paper measures:
    DCQCN queue buildup, ~15k CNP/s per bonded port (Fig. 11), sender
    throttling and a small busbw spread (Fig. 10b) — instead of either
    an uncongested fabric (no CNPs) or a hard-halved one (throughput
    collapse the paper does not observe).  Each leaf-spine connection is
    one fat physical pipe so displaced load spreads statistically rather
    than quantizing onto 200 Gbps ports.
    """
    return ClusterSpec(
        num_nodes=num_nodes, uplink_ports_per_spine=1, uplink_port_gbps=1400.0
    )


def fig12_spec(num_nodes: int = 16) -> ClusterSpec:
    """The Fig. 12/13 fabric: eight single uplinks per leaf.

    The failure experiment counts "1 link error among the 8 uplinks", so
    each leaf connects to its 8 spines through one fat physical link
    (800 Gbps keeps the fabric 1:1 against the 32 x 200 Gbps downlinks).
    Losing one uplink removes 1/8 of a leaf's capacity — exactly the
    7/8-ideal geometry the paper reasons about.
    """
    return ClusterSpec(
        num_nodes=num_nodes,
        uplink_ports_per_spine=1,
        uplink_port_gbps=800.0,
    )


def allreduce_benchmark(
    scenario: Scenario,
    nodes: list[int],
    size_bits: float = 1 * GIB,
    max_ops: int = 8,
    warmup_ops: int = 2,
    job_id: str = "bench",
    dynamic: bool = True,
    qp_work_stealing: bool = True,
) -> RepeatedOp:
    """An nccl-test-style back-to-back allreduce over full nodes.

    ``dynamic``/``qp_work_stealing`` together select C4P's mode: static
    traffic engineering plans paths once and never shifts load (both
    False-ish), while the deployed system re-posts chunks to the fastest
    QP and re-allocates paths on failure.
    """
    context = CollectiveContext(
        scenario.topology,
        selector=scenario.selector(dynamic),
        job_id=job_id,
        qp_work_stealing=qp_work_stealing,
    )
    gpus = scenario.topology.spec.gpus_per_node
    comm = context.communicator(contiguous_ranks(nodes, gpus), comm_id=job_id)
    return RepeatedOp(
        context, comm, OpType.ALLREDUCE, size_bits, max_ops=max_ops, warmup_ops=warmup_ops
    )


def concurrent_allreduce_jobs(
    scenario: Scenario,
    num_jobs: int = 8,
    nodes_per_job: int = 2,
    size_bits: float = 1 * GIB,
    max_ops: int = 8,
    warmup_ops: int = 2,
    stop_time: Optional[float] = None,
    dynamic: bool = True,
    qp_work_stealing: bool = True,
) -> list[RepeatedOp]:
    """The Fig. 10 setup: disjoint 2-node jobs saturating the spines."""
    spec = scenario.topology.spec
    if num_jobs * nodes_per_job > spec.num_nodes:
        raise ValueError("not enough nodes for the requested jobs")
    runners = []
    for j in range(num_jobs):
        node_ids = list(range(j * nodes_per_job, (j + 1) * nodes_per_job))
        runners.append(
            allreduce_benchmark(
                scenario,
                node_ids,
                size_bits=size_bits,
                max_ops=max_ops,
                warmup_ops=warmup_ops,
                job_id=f"job{j}",
                dynamic=dynamic,
                qp_work_stealing=qp_work_stealing,
            )
        )
    if stop_time is not None:
        for runner in runners:
            runner.stop_time = stop_time
            runner.max_ops = None
    return runners


#: Fig. 14's three representative jobs, calibrated so absolute
#: throughputs and relative gains land near the paper's.
FIG14_SPECS = {
    "job1": JobSpec(
        name="job1-gpt22b",
        model=GPT_22B,
        plan=ParallelismPlan(tp=8, dp=16),
        global_batch=256,
    ),
    "job2": JobSpec(
        name="job2-llama7b",
        model=LLAMA_7B,
        plan=ParallelismPlan(dp=128, zero=True),
        global_batch=192,
    ),
    "job3": JobSpec(
        name="job3-gpt175b",
        model=GPT_175B,
        plan=ParallelismPlan(tp=8, pp=8, dp=2, grad_accumulation=16),
        global_batch=512,
    ),
}


def fig14_jobs(scenario: Scenario, which: str, dynamic: bool = True) -> TrainingJob:
    """Build one of the Fig. 14 jobs on the scenario's cluster."""
    spec = FIG14_SPECS[which]
    context = CollectiveContext(
        scenario.topology, selector=scenario.selector(dynamic), job_id=spec.name
    )
    nodes_needed = spec.plan.nodes_required(scenario.topology.spec.gpus_per_node)
    return TrainingJob(spec, context, nodes=list(range(nodes_needed)))


def scaling_sweep_job(
    num_nodes: int,
    use_c4p: bool,
    ecmp_seed: int = 0,
    global_batch_per_gpu: float = 1.0,
) -> TrainingJob:
    """One point of the Fig. 3 sweep: GPT-22B on ``num_nodes`` nodes.

    The job is TP8 x DP(num_nodes), matching how a 22B model actually
    trains at these scales, with the batch scaled to keep per-GPU work
    constant (weak scaling, as in the figure).  One sample per GPU per
    step puts the ideal communication share around 15% — the regime in
    which the figure's growing gap (down to ~70% of ideal at 512 GPUs)
    appears.
    """
    scenario = build_cluster(pod_spec(num_nodes), use_c4p=use_c4p, ecmp_seed=ecmp_seed)
    spec = JobSpec(
        name=f"gpt22b-{num_nodes}n",
        model=GPT_22B,
        plan=ParallelismPlan(tp=8, dp=num_nodes),
        global_batch=global_batch_per_gpu * num_nodes * 8,
    )
    context = CollectiveContext(
        scenario.topology, selector=scenario.selector(), job_id=spec.name
    )
    return TrainingJob(spec, context, nodes=list(range(num_nodes)))
