"""Workload generators: the paper's job mixes as reusable builders."""

from repro.workloads.generator import (
    FIG14_SPECS,
    Scenario,
    allreduce_benchmark,
    build_cluster,
    concurrent_allreduce_jobs,
    fig12_spec,
    fig14_jobs,
    scaling_sweep_job,
)

__all__ = [
    "Scenario",
    "allreduce_benchmark",
    "build_cluster",
    "concurrent_allreduce_jobs",
    "fig12_spec",
    "fig14_jobs",
    "scaling_sweep_job",
    "FIG14_SPECS",
]
