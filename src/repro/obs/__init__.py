"""Cluster-wide observability plane: metrics, fault tracing, reports.

The C4 reproduction monitors a training cluster; this package monitors
the monitor.  Three layers:

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters, gauges, histograms with quantiles, labeled series) with
  Prometheus-text and JSON exporters;
* :mod:`repro.obs.trace` — fault-lifecycle spans
  (inject → first_record → detect → steer → recover) with aggregate
  MTTD/MTTR and false-positive accounting;
* :mod:`repro.obs.report` — snapshot assembly and the ``repro obs``
  text dashboard.

Hot paths across telemetry, C4D, C4P and netsim accept an optional
``metrics`` registry; when omitted they record into the process-wide
:data:`~repro.obs.metrics.DEFAULT_REGISTRY`, and chaos campaigns attach
an isolated :class:`~repro.obs.report.ObservabilityPlane` per run.
"""

from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)
from repro.obs.report import ObservabilityPlane, build_snapshot, render_dashboard
from repro.obs.trace import STAGES, FaultSpan, FaultTracer, latency_histogram

__all__ = [
    "DEFAULT_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "ObservabilityPlane",
    "build_snapshot",
    "render_dashboard",
    "STAGES",
    "FaultSpan",
    "FaultTracer",
    "latency_histogram",
]
