"""Observability reports: JSON snapshots and the text dashboard.

One :class:`ObservabilityPlane` bundles the two halves of the
observability layer — a :class:`~repro.obs.metrics.MetricsRegistry` and
a :class:`~repro.obs.trace.FaultTracer` — so a chaos campaign or an
experiment run can attach both with one object.  :func:`build_snapshot`
turns a plane into the machine-readable report (per-fault spans,
MTTD/MTTR accounting, every metric series) and :func:`render_dashboard`
renders that snapshot as the ``repro obs`` terminal view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import STAGES, FaultTracer

#: Snapshot schema version: bump on breaking layout changes so archived
#: reports stay interpretable.
SNAPSHOT_VERSION = 1


@dataclass
class ObservabilityPlane:
    """The per-run observability attachment: registry + fault tracer."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: FaultTracer = field(init=False)

    def __post_init__(self) -> None:
        self.tracer = FaultTracer(metrics=self.registry)

    def snapshot(self, meta: Optional[dict] = None) -> dict:
        """The machine-readable observability report for this run."""
        return build_snapshot(self.registry, self.tracer, meta=meta)


def build_snapshot(
    registry: MetricsRegistry,
    tracer: Optional[FaultTracer] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Assemble the JSON observability report.

    Layout::

        {"version": 1, "meta": {...},
         "faults": [per-fault span dicts, inject→...→recover],
         "false_positives": [...],
         "accounting": {"mttd": {...histogram...}, "mttr": {...}, ...},
         "metrics": {name: {kind, help, series}}}
    """
    faults = []
    false_positives = []
    accounting: dict = {}
    if tracer is not None:
        faults = [
            span.to_dict()
            for span in sorted(tracer.spans.values(), key=lambda s: s.injected_at or 0.0)
        ]
        false_positives = [
            {"time": fp.time, "victims": [str(v) for v in fp.victims], "kind": fp.kind}
            for fp in tracer.false_positives
        ]
        accounting = tracer.accounting()
    return {
        "version": SNAPSHOT_VERSION,
        "meta": dict(meta or {}),
        "faults": faults,
        "false_positives": false_positives,
        "accounting": accounting,
        "metrics": registry.snapshot(),
    }


# ----------------------------------------------------------------------
# Text dashboard
# ----------------------------------------------------------------------
_BAR_WIDTH = 24


def render_dashboard(snapshot: dict) -> str:
    """Render a snapshot as the ``repro obs`` terminal dashboard."""
    lines: list[str] = []
    meta = snapshot.get("meta") or {}
    title = meta.get("title", "observability snapshot")
    lines.append(f"=== {title} ===")
    for key in sorted(k for k in meta if k != "title"):
        lines.append(f"{key}: {meta[key]}")

    accounting = snapshot.get("accounting") or {}
    if accounting:
        lines.append("")
        lines.append("-- fault accounting --")
        lines.append(
            "faults={faults} detected={detected} missed={missed} "
            "recovered={recovered} false_positives={false_positives}".format(**accounting)
        )
        for name in ("mttd", "mttr"):
            lines.extend(_render_latency(name.upper(), accounting.get(name) or {}))

    faults = snapshot.get("faults") or []
    if faults:
        lines.append("")
        lines.append("-- fault timelines --")
        for span in faults:
            lines.extend(_render_span(span))

    false_positives = snapshot.get("false_positives") or []
    if false_positives:
        lines.append("")
        lines.append(f"-- false positives ({len(false_positives)}) --")
        for fp in false_positives[:10]:
            victims = ",".join(fp["victims"]) or "-"
            lines.append(f"t={fp['time']:.0f}s kind={fp['kind'] or '-'} victims={victims}")
        if len(false_positives) > 10:
            lines.append(f"... {len(false_positives) - 10} more")

    metrics = snapshot.get("metrics") or {}
    if metrics:
        lines.append("")
        lines.append("-- metrics --")
        for name in sorted(metrics):
            lines.extend(_render_metric(name, metrics[name]))
    return "\n".join(lines)


def _render_latency(label: str, hist: dict) -> list[str]:
    if not hist or not hist.get("count"):
        return [f"{label}: no samples"]
    lines = [
        "{label}: n={count} min={min:.1f}s p50={p50:.1f}s p90={p90:.1f}s "
        "max={max:.1f}s mean={mean:.1f}s".format(label=label, **hist)
    ]
    buckets = hist.get("buckets") or {}
    # Archived snapshots may have been re-serialized with sorted keys
    # (write_json does), so differencing the cumulative counts must
    # re-order by bound instead of trusting dict insertion order.
    ordered = sorted(
        buckets.items(),
        key=lambda item: float("inf") if item[0] == "+Inf" else float(item[0]),
    )
    counts = []
    previous = 0
    for le, cumulative in ordered:
        counts.append((le, cumulative - previous))
        previous = cumulative
    peak = max((count for _, count in counts), default=0)
    for le, count in counts:
        if count == 0:
            continue
        bar = "#" * max(1, round(_BAR_WIDTH * count / peak)) if peak else ""
        lines.append(f"  <= {le:>6}s {count:4d} {bar}")
    return lines


def _render_span(span: dict) -> list[str]:
    stages = span.get("stages") or {}
    parts = []
    previous = None
    for stage in STAGES:
        if stage not in stages:
            continue
        t = stages[stage]
        if previous is None:
            parts.append(f"{stage}@{t:.0f}s")
        else:
            parts.append(f"{stage}@{t:.0f}s(+{t - previous:.0f}s)")
        previous = t
    mttd = span.get("mttd_seconds")
    mttr = span.get("mttr_seconds")
    tail = []
    tail.append(f"mttd={mttd:.0f}s" if mttd is not None else "mttd=-")
    tail.append(f"mttr={mttr:.0f}s" if mttr is not None else "mttr=-")
    victims = ",".join(span.get("victims") or ()) or "-"
    status = "detected" if span.get("detected") else "MISSED"
    return [
        f"{span['fault_id']:28s} [{span['kind']}] victims={victims} {status}",
        "    " + (" -> ".join(parts) if parts else "(no stages)") + "  " + " ".join(tail),
    ]


def _render_metric(name: str, family: dict) -> list[str]:
    lines: list[str] = []
    kind = family.get("kind")
    for entry in family.get("series") or []:
        labels = entry.get("labels") or {}
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        if kind in ("counter", "gauge"):
            value = entry.get("value")
            lines.append(f"{name}{label_text} = {_fmt_value(value)}")
        else:
            if not entry.get("count"):
                continue
            lines.append(
                f"{name}{label_text} n={entry['count']} mean={_fmt_value(entry.get('mean'))} "
                f"p50={_fmt_value(entry.get('p50'))} p90={_fmt_value(entry.get('p90'))} "
                f"max={_fmt_value(entry.get('max'))}"
            )
    return lines


def _fmt_value(value) -> str:
    if value is None:
        return "nan"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "nan"
        return format(value, ".6g")
    return str(value)
