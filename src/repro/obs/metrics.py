"""Process-wide metrics registry: counters, gauges, histograms, labels.

The C4 deployment is itself a distributed system — agents, collector,
C4D master, steering, C4P master, the simulator event loop — and this
module gives every one of those components a shared, zero-dependency
place to record what it is doing.  The design follows the Prometheus
client model without importing it:

* a :class:`MetricsRegistry` owns named *families*;
* a family without labels behaves as a single instrument; with labels it
  hands out one child instrument per label-value combination;
* :class:`Counter` only goes up, :class:`Gauge` goes anywhere (or reads
  a callback), :class:`Histogram` keeps count/sum/min/max, a bounded
  sample reservoir for quantiles, and cumulative bucket counts;
* :meth:`MetricsRegistry.snapshot` produces a JSON-safe dict and
  :meth:`MetricsRegistry.render_prometheus` the text exposition format.

Registration is idempotent: asking for an already-registered family of
the same kind returns it, so independent components can share series
(two C4P masters in one process both bump ``c4p_allocations_total``)
without coordination.  Hot-path cost is one dict hit at instrument
creation (call sites cache children) and one attribute update per
event.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from typing import Callable, Iterable, Optional, Sequence

#: Default histogram buckets: fault-handling latencies span milliseconds
#: (detector evaluation) to tens of minutes (MTTR), so the bounds are
#: roughly logarithmic across that range.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0, 1800.0, float("inf"),
)

#: Samples retained per histogram series for quantile estimation.
DEFAULT_RESERVOIR = 2048


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Instantaneous value; settable or backed by a callback."""

    __slots__ = ("value", "_fn")

    def __init__(self) -> None:
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from ``fn`` at snapshot time instead."""
        self._fn = fn

    def read(self) -> float:
        """Current value (invokes the callback when one is set)."""
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:  # callback owner torn down mid-snapshot
                return float("nan")
        return self.value


class Histogram:
    """Distribution sketch: moments, cumulative buckets, quantile reservoir."""

    __slots__ = ("count", "sum", "min", "max", "_bounds", "_bucket_counts", "_samples")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self._samples: deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._bucket_counts[bisect.bisect_left(self._bounds, value)] += 1
        self._samples.append(value)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from the reservoir (NaN when empty)."""
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    @property
    def mean(self) -> float:
        """Arithmetic mean of every observation (NaN when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def buckets(self) -> dict[str, int]:
        """Cumulative ``{le: count}`` map in Prometheus convention."""
        out: dict[str, int] = {}
        running = 0
        for bound, bucket in zip(self._bounds, self._bucket_counts, strict=True):
            running += bucket
            key = "+Inf" if math.isinf(bound) else format(bound, "g")
            out[key] = running
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric: a single instrument, or one child per label set."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        **instrument_kwargs,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._instrument_kwargs = instrument_kwargs
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not self.label_names:
            # Unlabeled: materialize the sole child eagerly so the family
            # itself can be used as the instrument.
            self._children[()] = _KINDS[kind](**instrument_kwargs)

    def labels(self, **labels: object):
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, _KINDS[self.kind](**self._instrument_kwargs))
        return child

    def _default(self):
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self._children[()]

    # Unlabeled convenience pass-throughs ------------------------------
    def inc(self, amount: float = 1.0) -> None:
        """Unlabeled counter/gauge increment."""
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Unlabeled gauge decrement."""
        self._default().dec(amount)

    def set(self, value: float) -> None:
        """Unlabeled gauge set."""
        self._default().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Unlabeled gauge callback."""
        self._default().set_function(fn)

    def observe(self, value: float) -> None:
        """Unlabeled histogram observation."""
        self._default().observe(value)

    @property
    def value(self) -> float:
        """Unlabeled counter/gauge value."""
        child = self._default()
        return child.read() if isinstance(child, Gauge) else child.value

    def series(self) -> Iterable[tuple[dict[str, str], object]]:
        """Every (labels-dict, instrument) pair of this family."""
        for key, child in list(self._children.items()):
            yield dict(zip(self.label_names, key, strict=True)), child


class MetricsRegistry:
    """The process's (or one run's) metric namespace."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, kind: str, help: str, labels: Sequence[str], **kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(name, kind, help=help, label_names=labels, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._register(name, "histogram", help, labels, buckets=buckets)

    def families(self) -> list[MetricFamily]:
        """Every registered family, name-sorted."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump of every series in the registry."""
        out: dict[str, dict] = {}
        for family in self.families():
            series = []
            for labels, child in family.series():
                if isinstance(child, Counter):
                    series.append({"labels": labels, "value": child.value})
                elif isinstance(child, Gauge):
                    series.append({"labels": labels, "value": _jsonable(child.read())})
                else:
                    series.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "min": _jsonable(child.min if child.count else float("nan")),
                            "max": _jsonable(child.max if child.count else float("nan")),
                            "mean": _jsonable(child.mean),
                            "p50": _jsonable(child.quantile(0.5)),
                            "p90": _jsonable(child.quantile(0.9)),
                            "p99": _jsonable(child.quantile(0.99)),
                            "buckets": child.buckets(),
                        }
                    )
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (histograms as native histograms + summary quantiles)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            kind = family.kind
            lines.append(f"# TYPE {family.name} {'histogram' if kind == 'histogram' else kind}")
            for labels, child in family.series():
                if isinstance(child, (Counter, Gauge)):
                    value = child.read() if isinstance(child, Gauge) else child.value
                    lines.append(f"{family.name}{_labels(labels)} {_fmt(value)}")
                    continue
                for le, count in child.buckets().items():
                    lines.append(
                        f"{family.name}_bucket{_labels({**labels, 'le': le})} {count}"
                    )
                lines.append(f"{family.name}_sum{_labels(labels)} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{_labels(labels)} {child.count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family (test isolation helper)."""
        with self._lock:
            self._families.clear()


def _labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, "g")


def _jsonable(value: float):
    """NaN/inf → None so snapshots survive strict JSON encoders."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


#: The process-wide default registry.  Components instrumented with
#: ``metrics=None`` record here; chaos campaigns and experiments attach
#: their own isolated :class:`MetricsRegistry` instead.
DEFAULT_REGISTRY = MetricsRegistry()


def get_registry(metrics: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Resolve an optional per-component registry to a real one."""
    return metrics if metrics is not None else DEFAULT_REGISTRY
