"""Fault-lifecycle tracing: one span per fault, end to end.

The chaos harness injects faults with known ground truth; the pipeline
reacts through detection, steering and recovery.  :class:`FaultTracer`
stitches both sides into per-fault timelines — ordered stages

    inject → first_record → detect → steer → recover

— and keeps the aggregate accounting the paper's operability story needs:

* **MTTD** (mean time to detect): ``detect - inject``, per fault;
* **MTTR** (mean time to recover): ``recover - inject``, per fault;
* **false positives**: detections matching no injected fault active at
  detection time (stretched by a grace window, mirroring the chaos
  scorecard's convention).

Stages are first-occurrence-wins: a re-detection of the same fault does
not move its timeline.  All times are simulated seconds on the run's
clock.  Components report what they see (``detection``/``action`` with
suspect nodes); the tracer owns the matching against registered ground
truth, so the pipeline under test never touches ground truth itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry

#: Canonical stage order of one fault's lifecycle.
STAGES = ("inject", "first_record", "detect", "steer", "recover")

#: Seconds past a fault window's end during which a detection still
#: matches it (mirrors the chaos scorecard's DEFAULT_GRACE).
DEFAULT_TRACE_GRACE = 240.0

#: MTTD/MTTR bucket bounds: detection is expected within tens of
#: seconds, recovery within minutes (Table III's accounting).
LATENCY_BUCKETS = (5.0, 10.0, 20.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, float("inf"))


@dataclass
class FaultSpan:
    """One injected fault's lifecycle timeline."""

    fault_id: str
    kind: str
    #: Victim identity: node ids for compute faults, link-id strings for
    #: fabric faults.
    victims: tuple = ()
    #: (start, end) activity windows; end is inf for permanent faults.
    windows: tuple[tuple[float, float], ...] = ()
    #: First time each stage was observed.
    stages: dict[str, float] = field(default_factory=dict)
    #: Free-form per-stage annotations (detector type, action size, ...).
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def injected_at(self) -> Optional[float]:
        """Injection time (None before the span is opened)."""
        return self.stages.get("inject")

    @property
    def detected(self) -> bool:
        """True once the pipeline produced a matching verdict."""
        return "detect" in self.stages

    @property
    def mttd(self) -> Optional[float]:
        """Inject → detect, or None while undetected."""
        if "inject" in self.stages and "detect" in self.stages:
            return self.stages["detect"] - self.stages["inject"]
        return None

    @property
    def mttr(self) -> Optional[float]:
        """Inject → recovery complete, or None while unrecovered."""
        if "inject" in self.stages and "recover" in self.stages:
            return self.stages["recover"] - self.stages["inject"]
        return None

    def active_at(self, now: float, grace: float = 0.0) -> bool:
        """True while any activity window (plus grace) covers ``now``."""
        if not self.windows:
            injected = self.injected_at
            return injected is not None and now >= injected
        return any(start <= now <= end + grace for start, end in self.windows)

    def timeline(self) -> list[tuple[str, float]]:
        """Observed stages in canonical order."""
        return [(s, self.stages[s]) for s in STAGES if s in self.stages]

    def to_dict(self) -> dict:
        """JSON-safe span dump."""
        return {
            "fault_id": self.fault_id,
            "kind": self.kind,
            "victims": [str(v) for v in self.victims],
            "windows": [
                [start, None if end == float("inf") else end]
                for start, end in self.windows
            ],
            "stages": {s: t for s, t in self.timeline()},
            "detected": self.detected,
            "mttd_seconds": self.mttd,
            "mttr_seconds": self.mttr,
            "attrs": {k: _jsonable_attr(v) for k, v in self.attrs.items()},
        }


@dataclass(frozen=True)
class FalsePositive:
    """A detection that matched no injected fault."""

    time: float
    victims: tuple
    kind: str


class FaultTracer:
    """Collects fault spans and derives MTTD/MTTR accounting.

    Parameters
    ----------
    metrics:
        Registry receiving the ``obs_fault_*`` series (MTTD/MTTR
        histograms, false-positive counter); ``None`` uses the
        process-wide default registry.
    grace:
        Seconds past a fault window's end during which a detection still
        matches it.
    """

    def __init__(
        self, metrics: Optional[MetricsRegistry] = None, grace: float = DEFAULT_TRACE_GRACE
    ) -> None:
        registry = get_registry(metrics)
        self.grace = grace
        self.spans: dict[str, FaultSpan] = {}
        self.false_positives: list[FalsePositive] = []
        self._m_stage = registry.counter(
            "obs_fault_stage_total", "Fault lifecycle stage transitions", labels=("stage",)
        )
        self._m_mttd = registry.histogram(
            "obs_fault_mttd_seconds", "Inject to detector verdict", buckets=LATENCY_BUCKETS
        )
        self._m_mttr = registry.histogram(
            "obs_fault_mttr_seconds", "Inject to recovery complete", buckets=LATENCY_BUCKETS
        )
        self._m_false = registry.counter(
            "obs_false_positives_total", "Detections matching no injected fault"
        )

    # ------------------------------------------------------------------
    # Ground truth side (the chaos runner)
    # ------------------------------------------------------------------
    def register_fault(
        self,
        fault_id: str,
        kind: str,
        victims: Sequence = (),
        injected_at: float = 0.0,
        windows: Optional[Sequence[tuple[float, float]]] = None,
    ) -> FaultSpan:
        """Open a span for one injected fault (idempotent per id)."""
        span = self.spans.get(fault_id)
        if span is None:
            span = FaultSpan(
                fault_id=fault_id,
                kind=kind,
                victims=tuple(victims),
                windows=tuple(tuple(w) for w in windows) if windows else (),
            )
            self.spans[fault_id] = span
            self.stage(fault_id, "inject", injected_at)
        return span

    def stage(self, fault_id: str, stage: str, t: float, **attrs) -> None:
        """Record a stage (first occurrence wins) on one span."""
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        span = self.spans.get(fault_id)
        if span is None:
            raise KeyError(f"no fault span {fault_id!r}; register_fault first")
        if stage in span.stages:
            return
        span.stages[stage] = t
        span.attrs.update(attrs)
        self._m_stage.labels(stage=stage).inc()
        if stage == "detect" and span.mttd is not None:
            self._m_mttd.observe(span.mttd)
        if stage == "recover" and span.mttr is not None:
            self._m_mttr.observe(span.mttr)

    # ------------------------------------------------------------------
    # Pipeline side (what the system under test observed)
    # ------------------------------------------------------------------
    def _matching(self, now: float, victims: set) -> list[FaultSpan]:
        return [
            span
            for span in self.spans.values()
            if span.active_at(now, grace=self.grace) and victims.intersection(span.victims)
        ]

    def observe_symptom(self, now: float, victim) -> None:
        """First anomalous record attributable to ``victim`` (telemetry side)."""
        for span in self._matching(now, {victim}):
            self.stage(span.fault_id, "first_record", now)

    def detection(self, now: float, victims: Sequence, kind: str = "") -> tuple[str, ...]:
        """A detector verdict naming ``victims``; returns matched fault ids.

        A verdict matching no registered fault active at ``now`` is a
        false positive.
        """
        matched = self._matching(now, set(victims))
        if not matched:
            self.false_positives.append(
                FalsePositive(time=now, victims=tuple(victims), kind=kind)
            )
            self._m_false.inc()
            return ()
        for span in matched:
            self.stage(span.fault_id, "detect", now, detector=kind)
        return tuple(span.fault_id for span in matched)

    def action(
        self, now: float, victims: Sequence, ready_at: Optional[float] = None
    ) -> tuple[str, ...]:
        """A steering/reroute action on ``victims``; returns matched fault ids.

        ``now`` stamps the ``steer`` stage; ``ready_at`` (when given) the
        ``recover`` stage — the simulated moment the job/fabric is whole
        again.
        """
        matched = self._matching(now, set(victims))
        for span in matched:
            self.stage(span.fault_id, "steer", now)
            if ready_at is not None:
                self.stage(span.fault_id, "recover", ready_at)
        return tuple(span.fault_id for span in matched)

    def absorb(self, other: "FaultTracer") -> None:
        """Merge another tracer's spans and false positives into this one.

        Campaigns give every scenario its own tracer — each scenario has
        its own simulated clock and reuses node ids, so victim matching
        must never cross scenarios — and fold the finished tracers into
        one campaign-wide view here.  Metric series are NOT re-emitted:
        when both tracers share a registry the stages were already
        counted once, at observation time.
        """
        for fault_id, span in other.spans.items():
            if fault_id in self.spans:
                raise ValueError(f"duplicate fault span {fault_id!r} on absorb")
            self.spans[fault_id] = span
        self.false_positives.extend(other.false_positives)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def mttd_values(self) -> list[float]:
        """Every detected fault's inject→detect latency."""
        return [s.mttd for s in self.spans.values() if s.mttd is not None]

    def mttr_values(self) -> list[float]:
        """Every recovered fault's inject→recover latency."""
        return [s.mttr for s in self.spans.values() if s.mttr is not None]

    def accounting(self) -> dict:
        """Aggregate MTTD/MTTR/false-positive summary (JSON-safe)."""
        spans = list(self.spans.values())
        return {
            "faults": len(spans),
            "detected": sum(1 for s in spans if s.detected),
            "missed": sum(1 for s in spans if not s.detected),
            "recovered": sum(1 for s in spans if "recover" in s.stages),
            "false_positives": len(self.false_positives),
            "mttd": latency_histogram(self.mttd_values()),
            "mttr": latency_histogram(self.mttr_values()),
        }


def latency_histogram(
    values: Sequence[float], bounds: Sequence[float] = LATENCY_BUCKETS
) -> dict:
    """Summary + cumulative buckets of a latency sample set (JSON-safe)."""
    ordered = sorted(values)
    buckets: dict[str, int] = {}
    for bound in bounds:
        key = "+Inf" if bound == float("inf") else format(bound, "g")
        buckets[key] = sum(1 for v in ordered if v <= bound)
    if not ordered:
        return {"count": 0, "buckets": buckets}

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]

    return {
        "count": len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
        "p50": pct(0.5),
        "p90": pct(0.9),
        "p99": pct(0.99),
        "buckets": buckets,
    }


def _jsonable_attr(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
