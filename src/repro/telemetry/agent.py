"""C4 agents: per-node intermediaries between ACCL and the master.

In production each node runs one C4a process that tails the local
workers' monitoring buffers and ships them to the central master.  In
the simulation, records are delivered synchronously; the agent still
exists as a real object so per-node concerns (batching, node attribution,
local buffering) have a home, and so the record path matches the paper's
architecture (ACCL → C4a → master).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collective.monitoring import CommunicatorRecord, MessageRecord, OpLaunchRecord, OpRecord
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.telemetry.collector import CentralCollector


@dataclass
class C4Agent:
    """One node's agent: buffers and forwards records to the collector.

    When ``channel`` is set, every forward goes through the lossy
    transport (:class:`~repro.telemetry.unreliable.UnreliableChannel`)
    instead of landing synchronously — records may arrive late,
    duplicated, or never.
    """

    node_id: int
    collector: CentralCollector
    records_forwarded: int = 0
    #: Pending (kind, record) pairs when the plane runs in buffered mode.
    buffer: list = field(default_factory=list)
    #: Optional lossy agent→master transport.
    channel: object = None

    def _ship(self, ingest, record) -> None:
        if self.channel is None:
            ingest(record)
        else:
            self.channel.send(lambda: ingest(record))
        self.records_forwarded += 1

    def forward_op(self, record: OpRecord) -> None:
        """Ship an operation-completion record to the master."""
        self._ship(self.collector.ingest_op, record)

    def forward_launch(self, record: OpLaunchRecord) -> None:
        """Ship an operation-startup record to the master."""
        self._ship(self.collector.ingest_launch, record)

    def forward_message(self, record: MessageRecord) -> None:
        """Ship a transport-layer record to the master."""
        self._ship(self.collector.ingest_message, record)

    def enqueue(self, kind: str, record) -> None:
        """Hold a record until the next flush (buffered mode)."""
        self.buffer.append((kind, record))

    def flush(self) -> int:
        """Push all buffered records to the master; returns the count."""
        flushed = len(self.buffer)
        for kind, record in self.buffer:
            if kind == "op":
                self.forward_op(record)
            elif kind == "launch":
                self.forward_launch(record)
            else:
                self.forward_message(record)
        self.buffer.clear()
        return flushed


class AgentPlane:
    """The full agent deployment: a MonitoringSink routing to per-node agents.

    Plug an instance into a :class:`~repro.collective.context.CollectiveContext`
    as its ``sink``; records are attributed to the node that produced
    them (op records to the rank's node, message records to the sender)
    and forwarded to the shared :class:`CentralCollector`.

    By default forwarding is immediate.  Passing ``network`` and
    ``flush_interval`` switches to buffered mode: agents accumulate
    records locally and ship them every ``flush_interval`` simulated
    seconds — the reporting delay a real deployment pays, which adds
    directly onto C4D's detection latency.

    Passing ``channel`` (an
    :class:`~repro.telemetry.unreliable.UnreliableChannel`) routes every
    forward through a lossy transport that drops, delays, and duplicates
    records — the chaos harness's partial-observability model.
    """

    def __init__(
        self,
        collector: CentralCollector,
        clock=None,
        network=None,
        flush_interval: float | None = None,
        channel=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if flush_interval is not None:
            if network is None:
                raise ValueError("buffered mode needs a network for flush timers")
            if flush_interval <= 0:
                raise ValueError("flush_interval must be positive")
        if channel is not None and network is None:
            raise ValueError("a lossy channel needs a network for its timers")
        self.collector = collector
        self.agents: dict[int, C4Agent] = {}
        self.network = network
        self.flush_interval = flush_interval
        self.channel = channel
        self._flush_armed = False
        registry = get_registry(metrics)
        self._m_forwarded = registry.counter(
            "telemetry_agent_records_forwarded_total",
            "Records shipped by C4 agents toward the master",
        )
        self._m_flushes = registry.counter(
            "telemetry_agent_flushes_total",
            "Buffered-mode flush passes across all agents",
        )
        self._m_buffered = registry.gauge(
            "telemetry_agent_buffered_records",
            "Records currently waiting in agent buffers",
        )
        #: Optional callable returning simulated time, used to timestamp
        #: communicator registration.
        if clock is None and network is not None:

            def clock():
                return network.now

        self._clock = clock or (lambda: 0.0)

    @property
    def buffered(self) -> bool:
        """True when records wait for the periodic flush."""
        return self.flush_interval is not None

    def flush_all(self) -> int:
        """Flush every agent's buffer; returns total records shipped."""
        flushed = sum(agent.flush() for agent in self.agents.values())
        self._m_flushes.inc()
        self._m_forwarded.inc(flushed)
        self._m_buffered.set(0)
        return flushed

    def _deliver(self, node_id: int, kind: str, record) -> None:
        agent = self.agent(node_id)
        if not self.buffered:
            if kind == "op":
                agent.forward_op(record)
            elif kind == "launch":
                agent.forward_launch(record)
            else:
                agent.forward_message(record)
            self._m_forwarded.inc()
            return
        agent.enqueue(kind, record)
        self._m_buffered.inc()
        self._arm_flush()

    def _arm_flush(self) -> None:
        if self._flush_armed or not self.buffered:
            return
        self._flush_armed = True
        self.network.schedule(self.flush_interval, self._flush_tick)

    def _flush_tick(self) -> None:
        self._flush_armed = False
        self.flush_all()
        # Re-arm only when new records are already waiting; otherwise the
        # next enqueue re-arms (keeps the event loop free to terminate).
        if any(agent.buffer for agent in self.agents.values()):
            self._arm_flush()

    def agent(self, node_id: int) -> C4Agent:
        """The (lazily created) agent of one node."""
        agent = self.agents.get(node_id)
        if agent is None:
            agent = C4Agent(
                node_id=node_id, collector=self.collector, channel=self.channel
            )
            self.agents[node_id] = agent
        return agent

    # ------------------------------------------------------------------
    # MonitoringSink interface
    # ------------------------------------------------------------------
    def on_communicator(self, record: CommunicatorRecord) -> None:
        """Register the communicator with the master."""
        self.collector.ingest_communicator(record, now=self._clock())

    def on_op_launch(self, record: OpLaunchRecord) -> None:
        """Route a startup record through the producing node's agent."""
        self._deliver(record.location.node, "launch", record)

    def on_op(self, record: OpRecord) -> None:
        """Route an op record through the producing node's agent."""
        self._deliver(record.location.node, "op", record)

    def on_message(self, record: MessageRecord) -> None:
        """Route a message record through the sender node's agent."""
        self._deliver(record.src_node, "message", record)
