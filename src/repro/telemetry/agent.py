"""C4 agents: per-node intermediaries between ACCL and the master.

In production each node runs one C4a process that tails the local
workers' monitoring buffers and ships them to the central master.  In
the simulation, records are delivered synchronously; the agent still
exists as a real object so per-node concerns (batching, node attribution,
local buffering) have a home, and so the record path matches the paper's
architecture (ACCL → C4a → master).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collective.monitoring import CommunicatorRecord, MessageRecord, OpLaunchRecord, OpRecord
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.telemetry.collector import CentralCollector


@dataclass
class C4Agent:
    """One node's agent: buffers and forwards records to the collector.

    When ``channel`` is set, every forward goes through the lossy
    transport (:class:`~repro.telemetry.unreliable.UnreliableChannel`)
    instead of landing synchronously — records may arrive late,
    duplicated, or never.
    """

    node_id: int
    collector: CentralCollector
    records_forwarded: int = 0
    #: Pending (kind, record) pairs when the plane runs in buffered mode.
    buffer: list = field(default_factory=list)
    #: Optional lossy agent→master transport.
    channel: object = None

    def _ship(self, ingest, record) -> None:
        if self.channel is None:
            ingest(record)
        else:
            self.channel.send(lambda: ingest(record))
        self.records_forwarded += 1

    def forward_op(self, record: OpRecord) -> None:
        """Ship an operation-completion record to the master."""
        self._ship(self.collector.ingest_op, record)

    def forward_launch(self, record: OpLaunchRecord) -> None:
        """Ship an operation-startup record to the master."""
        self._ship(self.collector.ingest_launch, record)

    def forward_message(self, record: MessageRecord) -> None:
        """Ship a transport-layer record to the master."""
        self._ship(self.collector.ingest_message, record)

    def enqueue(self, kind: str, record) -> None:
        """Hold a record until the next flush (buffered mode)."""
        self.buffer.append((kind, record))

    def flush(self) -> int:
        """Push all buffered records to the master; returns the count."""
        flushed = len(self.buffer)
        for kind, record in self.buffer:
            if kind == "op":
                self.forward_op(record)
            elif kind == "launch":
                self.forward_launch(record)
            else:
                self.forward_message(record)
        self.buffer.clear()
        return flushed


class AgentPlane:
    """The full agent deployment: a MonitoringSink routing to per-node agents.

    Plug an instance into a :class:`~repro.collective.context.CollectiveContext`
    as its ``sink``; records are attributed to the node that produced
    them (op records to the rank's node, message records to the sender)
    and forwarded to the shared :class:`CentralCollector`.

    By default forwarding is immediate.  Passing ``network`` and
    ``flush_interval`` switches to buffered mode: agents accumulate
    records locally and ship them every ``flush_interval`` simulated
    seconds — the reporting delay a real deployment pays, which adds
    directly onto C4D's detection latency.

    Passing ``channel`` (an
    :class:`~repro.telemetry.unreliable.UnreliableChannel`) routes every
    forward through a lossy transport that drops, delays, and duplicates
    records — the chaos harness's partial-observability model.

    Passing ``leases`` (a
    :class:`~repro.controlplane.lease.LeaseTable`) makes every delivery
    double as a heartbeat: the producing node's lease is renewed, so the
    master's coverage view tracks which agents it is actually hearing
    from.  :meth:`suspend` / :meth:`resume` model master downtime —
    records buffer locally and are backfilled on resume — and
    :meth:`kill_agent` / :meth:`revive_agent` model dead agents whose
    records are dropped outright (their leases then expire, which is the
    blackout signal the degraded-mode gate consumes).
    """

    def __init__(
        self,
        collector: CentralCollector,
        clock=None,
        network=None,
        flush_interval: float | None = None,
        channel=None,
        leases=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if flush_interval is not None:
            if network is None:
                raise ValueError("buffered mode needs a network for flush timers")
            if flush_interval <= 0:
                raise ValueError("flush_interval must be positive")
        if channel is not None and network is None:
            raise ValueError("a lossy channel needs a network for its timers")
        self.collector = collector
        self.agents: dict[int, C4Agent] = {}
        self.network = network
        self.flush_interval = flush_interval
        self.channel = channel
        self.leases = leases
        self._flush_armed = False
        #: True while the master is down: records buffer locally.
        self.suspended = False
        #: Communicator registrations held back during a suspension.
        self._pending_comms: list[tuple[CommunicatorRecord, float]] = []
        #: Nodes whose agent process is dead — their records vanish.
        self._dead_agents: set[int] = set()
        self.records_dropped = 0
        self.backfilled_records = 0
        registry = get_registry(metrics)
        self._m_forwarded = registry.counter(
            "telemetry_agent_records_forwarded_total",
            "Records shipped by C4 agents toward the master",
        )
        self._m_flushes = registry.counter(
            "telemetry_agent_flushes_total",
            "Buffered-mode flush passes across all agents",
        )
        self._m_buffered = registry.gauge(
            "telemetry_agent_buffered_records",
            "Records currently waiting in agent buffers",
        )
        self._m_dropped = registry.counter(
            "telemetry_agent_records_dropped_total",
            "Records lost because the producing node's agent was dead",
        )
        self._m_backfilled = registry.counter(
            "telemetry_agent_backfilled_records_total",
            "Records backfilled to the master after a suspension ended",
        )
        #: Optional callable returning simulated time, used to timestamp
        #: communicator registration.
        if clock is None and network is not None:

            def clock():
                return network.now

        self._clock = clock or (lambda: 0.0)

    @property
    def buffered(self) -> bool:
        """True when records wait for the periodic flush."""
        return self.flush_interval is not None

    def flush_all(self) -> int:
        """Flush every agent's buffer; returns total records shipped."""
        flushed = sum(agent.flush() for agent in self.agents.values())
        self._m_flushes.inc()
        self._m_forwarded.inc(flushed)
        self._m_buffered.set(0)
        return flushed

    def _beat(self, node_id: int) -> None:
        if self.leases is not None and node_id not in self._dead_agents:
            self.leases.heartbeat(node_id, self._clock())

    def _deliver(self, node_id: int, kind: str, record) -> None:
        if node_id in self._dead_agents:
            self.records_dropped += 1
            self._m_dropped.inc()
            return
        agent = self.agent(node_id)
        if self.suspended:
            # Master downtime: hold the record locally regardless of
            # mode; resume() backfills it.  No heartbeat either — a
            # dead/unreachable master hears nothing.
            agent.enqueue(kind, record)
            self._m_buffered.inc()
            return
        self._beat(node_id)
        if not self.buffered:
            if kind == "op":
                agent.forward_op(record)
            elif kind == "launch":
                agent.forward_launch(record)
            else:
                agent.forward_message(record)
            self._m_forwarded.inc()
            return
        agent.enqueue(kind, record)
        self._m_buffered.inc()
        self._arm_flush()

    def _arm_flush(self) -> None:
        if self._flush_armed or not self.buffered:
            return
        self._flush_armed = True
        self.network.schedule(self.flush_interval, self._flush_tick)

    def _flush_tick(self) -> None:
        self._flush_armed = False
        self.flush_all()
        # Re-arm only when new records are already waiting; otherwise the
        # next enqueue re-arms (keeps the event loop free to terminate).
        if any(agent.buffer for agent in self.agents.values()):
            self._arm_flush()

    def agent(self, node_id: int) -> C4Agent:
        """The (lazily created) agent of one node."""
        agent = self.agents.get(node_id)
        if agent is None:
            agent = C4Agent(
                node_id=node_id, collector=self.collector, channel=self.channel
            )
            self.agents[node_id] = agent
        return agent

    # ------------------------------------------------------------------
    # Master-downtime lifecycle
    # ------------------------------------------------------------------
    def suspend(self) -> None:
        """Enter master-downtime mode: records buffer instead of shipping."""
        self.suspended = True

    def resume(self, now: float) -> int:
        """End a suspension: heartbeat live agents and backfill buffers.

        Returns the number of records backfilled to the master.  Agents
        re-register implicitly — the lease table treats a heartbeat from
        an unknown node as registration, so no handshake with the new
        master incarnation is needed.
        """
        self.suspended = False
        if self.leases is not None:
            for node_id in sorted(self.agents):
                if node_id not in self._dead_agents:
                    self.leases.heartbeat(node_id, now)
        backfilled = 0
        for record, registered_at in self._pending_comms:
            self.collector.ingest_communicator(record, now=registered_at)
            backfilled += 1
        self._pending_comms.clear()
        backfilled += self.flush_all()
        self.backfilled_records += backfilled
        self._m_backfilled.inc(backfilled)
        return backfilled

    def beat_all(self, now: float) -> int:
        """Heartbeat every live agent (the periodic keep-alive timer).

        A no-op returning 0 while suspended — a dead master hears no
        heartbeats, which is exactly how coverage decays during an
        outage.
        """
        if self.suspended or self.leases is None:
            return 0
        beaten = 0
        for node_id in sorted(self.agents):
            if node_id not in self._dead_agents:
                self.leases.heartbeat(node_id, now)
                beaten += 1
        return beaten

    def kill_agent(self, node_id: int) -> None:
        """Kill one node's agent: its records vanish, its lease decays."""
        self._dead_agents.add(node_id)
        agent = self.agents.get(node_id)
        if agent is not None and agent.buffer:
            self.records_dropped += len(agent.buffer)
            self._m_dropped.inc(len(agent.buffer))
            agent.buffer.clear()

    def revive_agent(self, node_id: int, now: float) -> None:
        """Restart a dead agent; it re-registers via its first heartbeat."""
        self._dead_agents.discard(node_id)
        if self.leases is not None:
            self.leases.heartbeat(node_id, now)

    def retarget(self, collector) -> None:
        """Point the plane (and every agent) at a new master incarnation."""
        self.collector = collector
        for agent in self.agents.values():
            agent.collector = collector

    # ------------------------------------------------------------------
    # MonitoringSink interface
    # ------------------------------------------------------------------
    def on_communicator(self, record: CommunicatorRecord) -> None:
        """Register the communicator with the master."""
        if self.suspended:
            self._pending_comms.append((record, self._clock()))
            return
        self.collector.ingest_communicator(record, now=self._clock())

    def on_op_launch(self, record: OpLaunchRecord) -> None:
        """Route a startup record through the producing node's agent."""
        self._deliver(record.location.node, "launch", record)

    def on_op(self, record: OpRecord) -> None:
        """Route an op record through the producing node's agent."""
        self._deliver(record.location.node, "op", record)

    def on_message(self, record: MessageRecord) -> None:
        """Route a message record through the sender node's agent."""
        self._deliver(record.src_node, "message", record)
