"""Telemetry plane: C4 agents and the central collector.

The paper's architecture (Fig. 5) inserts a per-node **C4a (C4 agent)**
between the enhanced ACCL and the central C4D master: agents gather the
library's monitoring records from local workers and forward them to the
master, which holds the cluster-wide view the detectors analyze.
"""

from repro.telemetry.agent import AgentPlane, C4Agent
from repro.telemetry.collector import CentralCollector, CommProgress

__all__ = ["C4Agent", "AgentPlane", "CentralCollector", "CommProgress"]
