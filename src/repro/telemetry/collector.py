"""Central collector: the C4D master's cluster-wide record store.

Holds bounded windows of operation- and transport-layer records per
communicator plus per-rank progress (last completed sequence number).
The detectors in :mod:`repro.core.c4d` query this store; they never see
simulator ground truth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.collective.monitoring import CommunicatorRecord, MessageRecord, OpLaunchRecord, OpRecord
from repro.obs.metrics import MetricsRegistry, get_registry


@dataclass
class CommProgress:
    """Progress bookkeeping for one communicator."""

    record: CommunicatorRecord
    #: Last completed op sequence per rank (-1 before the first op).
    last_seq: dict[int, int] = field(default_factory=dict)
    #: Last *launched* op sequence per rank (-1 before the first op).
    last_launch_seq: dict[int, int] = field(default_factory=dict)
    #: Completion time of the most recent op on any rank.
    last_completion_time: float = float("-inf")
    #: Launch time of the most recent op launch on any rank.
    last_launch_time: float = float("-inf")
    #: Time the communicator was registered.
    created_at: float = 0.0

    @property
    def min_seq(self) -> int:
        """Slowest rank's completed sequence number."""
        if not self.last_seq:
            return -1
        return min(self.last_seq.values())

    @property
    def max_seq(self) -> int:
        """Fastest rank's completed sequence number."""
        if not self.last_seq:
            return -1
        return max(self.last_seq.values())

    @property
    def max_launch_seq(self) -> int:
        """Most recent sequence number any rank has launched."""
        if not self.last_launch_seq:
            return -1
        return max(self.last_launch_seq.values())


class CentralCollector:
    """Bounded per-communicator windows of monitoring records.

    Parameters
    ----------
    op_window:
        Operation-layer records retained per communicator.
    message_window:
        Transport-layer records retained per communicator.
    metrics:
        Observability registry; ``None`` uses the process default.
    """

    def __init__(
        self,
        op_window: int = 4096,
        message_window: int = 16384,
        tombstone_capacity: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.progress: dict[str, CommProgress] = {}
        self._ops: dict[str, Deque[OpRecord]] = {}
        self._launches: dict[str, Deque[OpLaunchRecord]] = {}
        self._messages: dict[str, Deque[MessageRecord]] = {}
        self._op_window = op_window
        self._message_window = message_window
        self._tombstone_capacity = tombstone_capacity
        #: Communicators explicitly deregistered; late records for them
        #: (e.g. still in flight on a lossy channel) are discarded
        #: silently instead of raising.  Insertion-ordered and bounded:
        #: once full the oldest tombstone is evicted (a straggler for an
        #: ancient incarnation then raises, which is preferable to an
        #: unbounded set in a long-lived master).
        self._dropped: dict[str, None] = {}
        registry = get_registry(metrics)
        ingested = registry.counter(
            "telemetry_records_ingested_total",
            "Monitoring records accepted by the central collector",
            labels=("kind",),
        )
        self._m_ingested = {
            kind: ingested.labels(kind=kind)
            for kind in ("communicator", "op", "launch", "message")
        }
        evicted = registry.counter(
            "telemetry_window_evictions_total",
            "Records pushed out of a full bounded window",
            labels=("kind",),
        )
        self._m_evicted = {
            kind: evicted.labels(kind=kind) for kind in ("op", "launch", "message")
        }
        self._m_stragglers = registry.counter(
            "telemetry_straggler_records_total",
            "Late records for dropped communicators, silently discarded",
        )
        self._m_tombstones_evicted = registry.counter(
            "telemetry_tombstones_evicted_total",
            "Dropped-communicator tombstones evicted from the bounded FIFO",
        )
        self._m_comms = registry.gauge(
            "telemetry_registered_communicators",
            "Communicators currently registered with the collector",
        )

    def _append_bounded(self, kind: str, window: Deque, record) -> None:
        """Append to a bounded window, counting the eviction it causes."""
        if window.maxlen is not None and len(window) == window.maxlen:
            self._m_evicted[kind].inc()
        window.append(record)
        self._m_ingested[kind].inc()

    # ------------------------------------------------------------------
    # Ingestion (called by agents)
    # ------------------------------------------------------------------
    def ingest_communicator(self, record: CommunicatorRecord, now: float = 0.0) -> None:
        """Register a communicator."""
        self._dropped.pop(record.comm_id, None)
        self.progress[record.comm_id] = CommProgress(
            record=record,
            last_seq={rank: -1 for rank in range(record.size)},
            last_launch_seq={rank: -1 for rank in range(record.size)},
            created_at=now,
        )
        self._ops[record.comm_id] = deque(maxlen=self._op_window)
        self._launches[record.comm_id] = deque(maxlen=self._op_window)
        self._messages[record.comm_id] = deque(maxlen=self._message_window)
        self._m_ingested["communicator"].inc()
        self._m_comms.set(len(self.progress))

    def drop_communicator(self, comm_id: str) -> None:
        """Deregister a communicator (its job incarnation is gone).

        Every stored record and all progress bookkeeping are discarded
        and detectors stop seeing the communicator; records still in
        flight on a lossy channel are silently ignored on arrival.
        """
        self.progress.pop(comm_id, None)
        self._ops.pop(comm_id, None)
        self._launches.pop(comm_id, None)
        self._messages.pop(comm_id, None)
        self._dropped.pop(comm_id, None)  # refresh insertion order
        self._dropped[comm_id] = None
        while len(self._dropped) > self._tombstone_capacity:
            oldest = next(iter(self._dropped))
            del self._dropped[oldest]
            self._m_tombstones_evicted.inc()
        self._m_comms.set(len(self.progress))

    def ingest_launch(self, record: OpLaunchRecord) -> None:
        """Record a per-rank operation startup."""
        progress = self._require(record.comm_id)
        if progress is None:
            return
        progress.last_launch_seq[record.rank] = max(
            progress.last_launch_seq.get(record.rank, -1), record.seq
        )
        progress.last_launch_time = max(progress.last_launch_time, record.launch_time)
        self._append_bounded("launch", self._launches[record.comm_id], record)

    def ingest_op(self, record: OpRecord) -> None:
        """Record a completed per-rank operation."""
        progress = self._require(record.comm_id)
        if progress is None:
            return
        progress.last_seq[record.rank] = max(
            progress.last_seq.get(record.rank, -1), record.seq
        )
        progress.last_completion_time = max(progress.last_completion_time, record.end_time)
        self._append_bounded("op", self._ops[record.comm_id], record)

    def ingest_message(self, record: MessageRecord) -> None:
        """Record a transport-layer message."""
        if self._require(record.comm_id) is None:
            return
        self._append_bounded("message", self._messages[record.comm_id], record)

    # ------------------------------------------------------------------
    # Queries (used by detectors)
    # ------------------------------------------------------------------
    def comm_ids(self) -> list[str]:
        """All registered communicators."""
        return list(self.progress.keys())

    def ops(self, comm_id: str, since: float = float("-inf")) -> list[OpRecord]:
        """Operation records completed at or after ``since``."""
        return [r for r in self._ops.get(comm_id, ()) if r.end_time >= since]

    def messages(self, comm_id: str, since: float = float("-inf")) -> list[MessageRecord]:
        """Transport records completed at or after ``since``."""
        return [r for r in self._messages.get(comm_id, ()) if r.complete_time >= since]

    def ops_for_seq(self, comm_id: str, seq: int) -> list[OpRecord]:
        """Per-rank records of one specific operation."""
        return [r for r in self._ops.get(comm_id, ()) if r.seq == seq]

    def launches_for_seq(self, comm_id: str, seq: int) -> list[OpLaunchRecord]:
        """Per-rank startup records of one specific operation."""
        return [r for r in self._launches.get(comm_id, ()) if r.seq == seq]

    def latest_seqs(self, comm_id: str, count: int) -> list[int]:
        """The most recent ``count`` completed sequence numbers."""
        seqs = sorted({r.seq for r in self._ops.get(comm_id, ())})
        return seqs[-count:]

    # ------------------------------------------------------------------
    # Snapshot / restore (control-plane journaling)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of all mutable collector state.

        Rank keys in the progress maps become ``[rank, seq]`` pairs so
        the snapshot survives canonical (sorted-key) JSON encoding.
        """
        return {
            "op_window": self._op_window,
            "message_window": self._message_window,
            "tombstone_capacity": self._tombstone_capacity,
            "progress": {
                comm_id: {
                    "record": progress.record.to_payload(),
                    "last_seq": sorted(progress.last_seq.items()),
                    "last_launch_seq": sorted(progress.last_launch_seq.items()),
                    "last_completion_time": progress.last_completion_time,
                    "last_launch_time": progress.last_launch_time,
                    "created_at": progress.created_at,
                }
                for comm_id, progress in self.progress.items()
            },
            "ops": {
                comm_id: [r.to_payload() for r in window]
                for comm_id, window in self._ops.items()
            },
            "launches": {
                comm_id: [r.to_payload() for r in window]
                for comm_id, window in self._launches.items()
            },
            "messages": {
                comm_id: [r.to_payload() for r in window]
                for comm_id, window in self._messages.items()
            },
            "dropped": list(self._dropped),
        }

    def restore_state(self, state: dict) -> None:
        """Replace all mutable state with a :meth:`snapshot_state` dict."""
        self._op_window = state["op_window"]
        self._message_window = state["message_window"]
        self._tombstone_capacity = state["tombstone_capacity"]
        self.progress = {}
        self._ops = {}
        self._launches = {}
        self._messages = {}
        for comm_id, entry in state["progress"].items():
            self.progress[comm_id] = CommProgress(
                record=CommunicatorRecord.from_payload(entry["record"]),
                last_seq={rank: seq for rank, seq in entry["last_seq"]},
                last_launch_seq={rank: seq for rank, seq in entry["last_launch_seq"]},
                last_completion_time=entry["last_completion_time"],
                last_launch_time=entry["last_launch_time"],
                created_at=entry["created_at"],
            )
        for comm_id, payloads in state["ops"].items():
            self._ops[comm_id] = deque(
                (OpRecord.from_payload(p) for p in payloads), maxlen=self._op_window
            )
        for comm_id, payloads in state["launches"].items():
            self._launches[comm_id] = deque(
                (OpLaunchRecord.from_payload(p) for p in payloads),
                maxlen=self._op_window,
            )
        for comm_id, payloads in state["messages"].items():
            self._messages[comm_id] = deque(
                (MessageRecord.from_payload(p) for p in payloads),
                maxlen=self._message_window,
            )
        self._dropped = {comm_id: None for comm_id in state["dropped"]}
        self._m_comms.set(len(self.progress))

    def _require(self, comm_id: str):
        """Progress for a live communicator, None for a dropped one.

        Records for a communicator that was never registered are a
        programming error and raise; records for a *dropped* one are
        expected stragglers (telemetry in flight when the incarnation
        was torn down) and are discarded by the caller.
        """
        progress = self.progress.get(comm_id)
        if progress is None:
            if comm_id in self._dropped:
                self._m_stragglers.inc()
                return None
            raise KeyError(
                f"records for unregistered communicator {comm_id!r}; "
                "ingest_communicator must come first"
            )
        return progress
