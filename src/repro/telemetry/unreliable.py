"""Lossy telemetry transport between the C4 agents and the master.

Production monitoring pipelines ride the same network the workload
stresses, so records arrive late, duplicated, or — when the channel is
saturated — not at all until a retransmit succeeds.  The happy-path
simulation delivers records synchronously; this module models the messy
path so the detectors' robustness is measured under partial
observability (the adversarial condition CCL-D and Mycroft style
evaluations focus on).

The channel is *at-least-once with bounded retries*: a dropped send is
retried after ``retransmit_timeout`` up to ``max_retries`` times, so a
drop usually manifests as extra latency, occasionally as a permanent
hole.  Duplicates model spurious retransmits.  All randomness flows
through one seeded generator, keeping campaigns reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChannelConfig:
    """Unreliability knobs for the agent→master record path.

    Attributes
    ----------
    drop_rate:
        Probability one delivery *attempt* is lost.  With retries, the
        chance a record is lost forever is ``drop_rate ** (max_retries
        + 1)``.
    duplicate_rate:
        Probability a successful delivery is followed by a duplicate.
    base_latency:
        Fixed agent→master shipping delay, in simulated seconds.
    jitter:
        Mean of an exponential latency jitter added per attempt.
    retransmit_timeout:
        Wait before retrying a lost attempt.
    max_retries:
        Retries after the first attempt; 0 makes every drop permanent.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    base_latency: float = 0.5
    jitter: float = 0.5
    retransmit_timeout: float = 5.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latencies must be non-negative")
        if self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


class UnreliableChannel:
    """Schedules lossy, delayed, duplicated record deliveries.

    Parameters
    ----------
    network:
        Event loop supplying ``schedule(delay, callback)`` and ``now``
        (a :class:`~repro.netsim.network.FlowNetwork`).
    config:
        Unreliability parameters.
    seed:
        Seed for the channel's private RNG.
    """

    def __init__(self, network, config: ChannelConfig, seed: int = 0) -> None:
        self.network = network
        self.config = config
        self._rng = np.random.default_rng(seed)
        # Observability counters (surface in scorecards).
        self.sent = 0
        self.delivered = 0
        self.dropped_attempts = 0
        self.duplicated = 0
        self.abandoned = 0

    def send(self, deliver) -> None:
        """Ship one record; ``deliver()`` runs when (if) it arrives."""
        self.sent += 1
        self._attempt(deliver, attempt=0)

    def _attempt(self, deliver, attempt: int) -> None:
        cfg = self.config
        if self._rng.random() < cfg.drop_rate:
            self.dropped_attempts += 1
            if attempt >= cfg.max_retries:
                self.abandoned += 1
                return
            # Retransmits are jittered like deliveries: a bare round-number
            # timeout would make every record dropped in the same step
            # retry at the same instant, and same-instant retries consume
            # the shared channel RNG in timer-tie-break order — a real
            # ordering race (caught by `repro lint --racecheck`).  Real
            # retransmit timers wobble anyway.
            retry_delay = cfg.retransmit_timeout
            if cfg.jitter > 0:
                retry_delay += float(self._rng.exponential(cfg.jitter))
            self.network.schedule(
                retry_delay,
                lambda: self._attempt(deliver, attempt + 1),
            )
            return
        delay = cfg.base_latency
        if cfg.jitter > 0:
            delay += float(self._rng.exponential(cfg.jitter))

        def arrival() -> None:
            self.delivered += 1
            deliver()

        self.network.schedule(delay, arrival)
        if self._rng.random() < cfg.duplicate_rate:
            self.duplicated += 1
            self.network.schedule(delay + cfg.base_latency, deliver)

    @property
    def in_flight(self) -> int:
        """Records sent but neither delivered nor abandoned yet."""
        return self.sent - self.delivered - self.abandoned

    def stats(self) -> dict:
        """Counter snapshot for reports and scorecards."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_attempts": self.dropped_attempts,
            "duplicated": self.duplicated,
            "abandoned": self.abandoned,
        }
