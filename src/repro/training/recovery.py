"""The full Fig. 4 recovery loop, closed on the simulator.

"C4 agents monitor the operational status of training workers and
transmit the data to a centralized master.  The master then evaluates
the well-being of the training workers ... If any irregularities are
detected, it informs the job steering service to isolate the problematic
nodes and restart the job from the most recent valid checkpoint."

:class:`RecoveryOrchestrator` wires every piece together on the event
loop: a monitored :class:`~repro.training.job.TrainingJob`, the periodic
C4D master, the scheduler's backup pool, and the in-memory checkpointer.
When a worker crashes mid-run the job's next collective hangs; C4D
localizes the missing rank; the orchestrator isolates the node, swaps in
a backup, pays the isolation+restart latency, restores from the last
snapshot, and resumes — and the resulting timeline decomposes into
exactly Table III's downtime components.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.collective.context import CollectiveContext
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.events import Anomaly, AnomalyType
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.steering import SteeringConfig, SteeringFaultModel
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.training.job import JobSpec, TrainingJob
from repro.training.memory_checkpoint import InMemoryCheckpointer
from repro.training.parallelism import ParallelismPlan
from repro.training.scheduler import ClusterScheduler

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery episode's timeline."""

    crash_time: float
    detected_at: float
    isolated_nodes: tuple[int, ...]
    replacement_nodes: tuple[int, ...]
    resumed_at: float
    restored_step: int
    lost_steps: int
    #: The backup pool could not cover every isolated node; the job
    #: restarted on a shrunk world.
    pool_exhausted: bool = False
    #: Isolation attempts across all nodes (>len(isolated_nodes) when
    #: injected steering faults forced retries).
    isolation_attempts: int = 0
    #: Extra downtime paid to isolation-retry backoff, in seconds.
    backoff_seconds: float = 0.0
    #: Backups drawn but dead on arrival (wasted spares).
    doa_replacements: tuple[int, ...] = ()
    #: Corrupted snapshots skipped before a valid restore point was
    #: found (0 = newest snapshot restored cleanly).
    restore_fallbacks: int = 0

    @property
    def detection_seconds(self) -> float:
        """Crash-to-detection latency (the paper's tens of seconds)."""
        return self.detected_at - self.crash_time

    @property
    def downtime_seconds(self) -> float:
        """Crash-to-resume wall time."""
        return self.resumed_at - self.crash_time


@dataclass
class RecoveryReport:
    """Outcome of a monitored run."""

    completed_steps: int
    target_steps: int
    events: list[RecoveryEvent] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        """True when every step eventually completed."""
        return self.completed_steps >= self.target_steps


class RecoveryOrchestrator:
    """Run a training job to completion through crashes.

    Parameters
    ----------
    scenario_topology:
        The cluster topology (its network drives the clock).
    scheduler:
        Node allocator with a backup pool.
    spec:
        The training job.
    detector_config / steering_config:
        C4D thresholds and recovery latencies.
    checkpointer:
        Snapshot engine; the job resumes from its latest snapshot.
    evaluation_interval:
        How often the C4D master evaluates, in simulated seconds.
    selector_factory:
        Optional callable returning a fresh PathSelector for each
        (re)incarnation of the job (pass a C4P selector factory to run
        the full C4 deployment).
    steering_faults:
        Optional failure injection for the recovery actions themselves
        (isolation timeouts retried with capped exponential backoff,
        replacements dead on arrival).  ``None`` gives the happy path.
    """

    def __init__(
        self,
        topology,
        scheduler: ClusterScheduler,
        spec: JobSpec,
        detector_config: Optional[DetectorConfig] = None,
        steering_config: Optional[SteeringConfig] = None,
        checkpointer: Optional[InMemoryCheckpointer] = None,
        evaluation_interval: float = 5.0,
        selector_factory=None,
        job_name: str = "job",
        steering_faults: Optional[SteeringFaultModel] = None,
    ) -> None:
        self.topology = topology
        self.network = topology.network
        self.scheduler = scheduler
        self.spec = spec
        self.detector_config = detector_config or DetectorConfig(hang_timeout=30.0)
        self.steering_config = steering_config or SteeringConfig()
        self.checkpointer = checkpointer or InMemoryCheckpointer(interval_steps=10)
        self.evaluation_interval = evaluation_interval
        self.selector_factory = selector_factory or (lambda: None)
        self.job_name = job_name
        self.steering_faults = steering_faults

        self.collector = CentralCollector()
        self.agent_plane = AgentPlane(self.collector, clock=lambda: self.network.now)
        self.master = C4DMaster(self.collector, self.detector_config)
        self.report: Optional[RecoveryReport] = None
        self.job: Optional[TrainingJob] = None
        self._target_steps = 0
        self._incarnation = 0
        self._comm_prefix = job_name
        self._crash_time: Optional[float] = None
        self._watching = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start(self, num_nodes: int, total_steps: int) -> RecoveryReport:
        """Allocate, launch and arm monitoring.  Returns the live report.

        The caller drives ``topology.network.run(until=...)``; the report
        fills in as the simulation progresses.
        """
        if self.report is not None:
            raise RuntimeError("orchestrator already started")
        self._target_steps = total_steps
        self.report = RecoveryReport(completed_steps=0, target_steps=total_steps)
        allocation = self.scheduler.allocate(self.job_name, num_nodes)
        self._launch(list(allocation.nodes), total_steps, restored_step=0)
        self._arm_watchdog()
        return self.report

    def crash_node(self, node_id: int) -> None:
        """Inject a worker crash into the current incarnation."""
        if self.job is None:
            raise RuntimeError("no job running")
        self._crash_time = self.network.now
        self.job.crash_node(node_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _launch(self, nodes: list[int], remaining_steps: int, restored_step: int) -> None:
        self._incarnation += 1
        self._comm_prefix = f"{self.job_name}#{self._incarnation}"
        context = CollectiveContext(
            self.topology,
            selector=self.selector_factory(),
            sink=self.agent_plane,
            job_id=self._comm_prefix,
        )
        plan, global_batch = self._fit_plan(len(nodes))
        spec = JobSpec(
            name=self._comm_prefix,
            model=self.spec.model,
            plan=plan,
            global_batch=global_batch,
            effective_flops=self.spec.effective_flops,
            pp_activation_bits=self.spec.pp_activation_bits,
            ep_alltoall_bits=self.spec.ep_alltoall_bits,
            ep_imbalance_std=self.spec.ep_imbalance_std,
        )
        self.job = TrainingJob(
            spec,
            context,
            nodes=nodes,
            checkpointer=self.checkpointer,
            start_step=restored_step,
        )
        self.job.run_steps(remaining_steps, on_all_done=self._job_finished)

    def _fit_plan(self, num_nodes: int) -> tuple[ParallelismPlan, float]:
        """Elastically shrink data parallelism when nodes are scarce.

        With the backup pool exhausted, the job restarts on its
        remaining healthy nodes: DP shrinks to what fits (TP/PP are
        structural and cannot change without resharding) and the global
        batch scales with it, preserving per-replica batch size.
        """
        plan = self.spec.plan
        capacity = num_nodes * self.topology.spec.gpus_per_node
        if plan.world_size <= capacity:
            return plan, self.spec.global_batch
        per_replica = plan.tp * plan.pp
        new_dp = max(1, capacity // per_replica)
        new_world = per_replica * new_dp
        new_ep = plan.ep if plan.ep > 1 and new_world % plan.ep == 0 else 1
        shrunk = ParallelismPlan(
            tp=plan.tp,
            pp=plan.pp,
            dp=new_dp,
            grad_accumulation=plan.grad_accumulation,
            zero=plan.zero,
            ep=new_ep,
        )
        return shrunk, self.spec.global_batch * new_dp / plan.dp

    def _job_finished(self) -> None:
        assert self.report is not None
        self.report.completed_steps = self._target_steps
        self._watching = False

    def _arm_watchdog(self) -> None:
        self._watching = True
        self.network.schedule(self.evaluation_interval, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        if not self._watching:
            return
        assert self.report is not None and self.job is not None
        if self.job.steps:
            self.report.completed_steps = max(
                self.report.completed_steps,
                max(step.step_index for step in self.job.steps) + 1,
            )
        for anomaly in self.master.evaluate(self.network.now):
            if anomaly.anomaly_type not in (
                AnomalyType.NONCOMM_HANG,
                AnomalyType.COMM_HANG,
            ):
                continue
            # Only act on the *current* incarnation's communicators; the
            # abandoned previous incarnation stays hung forever and must
            # not retrigger recovery after the cooldown expires.
            if not self._concerns_current_incarnation(anomaly):
                continue
            self._recover(anomaly)
            break
        if self._watching:
            self.network.schedule(self.evaluation_interval, self._watchdog_tick)

    def _concerns_current_incarnation(self, anomaly: Anomaly) -> bool:
        if anomaly.comm_id.startswith(self._comm_prefix):
            return True
        comm_ids = anomaly.evidence.get("comm_ids", ())
        return any(str(comm_id).startswith(self._comm_prefix) for comm_id in comm_ids)

    def _isolate_with_retries(self, node_id: int) -> tuple[bool, int, float]:
        """Isolate one node, retrying with capped exponential backoff.

        Returns ``(succeeded, attempts, backoff_paid_seconds)``.
        """
        attempts = 0
        backoff = 0.0
        while attempts < self.steering_config.max_isolation_attempts:
            attempts += 1
            if self.steering_faults is None or not self.steering_faults.isolation_fails():
                self.topology.node(node_id).isolate()
                return True, attempts, backoff
            if attempts < self.steering_config.max_isolation_attempts:
                backoff += self.steering_config.retry_backoff(attempts - 1)
        logger.warning(
            "isolation of node %d failed after %d attempts; node stays in job",
            node_id,
            attempts,
        )
        return False, attempts, backoff

    def _replace_with_health_check(self, node_id: int) -> tuple[Optional[int], list[int]]:
        """Swap in a backup, drawing again past dead-on-arrival spares."""
        doa: list[int] = []
        current = node_id
        while True:
            replacement = self.scheduler.replace_node(self.job_name, current)
            if replacement is None:
                return None, doa
            if self.steering_faults is None or not self.steering_faults.replacement_dead():
                return replacement, doa
            logger.warning(
                "backup node %d dead on arrival; drawing next", replacement
            )
            self.topology.node(replacement).isolate()
            doa.append(replacement)
            current = replacement

    def _recover(self, anomaly: Anomaly) -> None:
        assert self.job is not None and self.report is not None
        detected_at = self.network.now
        crash_time = self._crash_time if self._crash_time is not None else detected_at
        # Isolate and replace through the scheduler's backup pool.
        isolated = []
        replacements = []
        doa: list[int] = []
        total_attempts = 0
        total_backoff = 0.0
        allocation = self.scheduler.allocation_of(self.job_name)
        allocated_nodes = allocation.nodes if allocation is not None else ()
        for node_id in anomaly.suspect_nodes:
            if node_id not in allocated_nodes:
                continue
            ok, attempts, backoff = self._isolate_with_retries(node_id)
            total_attempts += attempts
            total_backoff += backoff
            if not ok:
                continue
            isolated.append(node_id)
            replacement, dead = self._replace_with_health_check(node_id)
            doa.extend(dead)
            if replacement is not None:
                replacements.append(replacement)
        pool_exhausted = len(replacements) < len(isolated)
        if pool_exhausted:
            logger.warning(
                "backup pool exhausted for job %r: %d isolated, %d replaced; "
                "restarting on a shrunk world",
                self.job_name,
                len(isolated),
                len(replacements),
            )
        # Restore point: the newest *valid* snapshot completed before the
        # crash; corrupted ones are skipped (fallback chain).
        snapshot = self.checkpointer.restore(crash_time)
        restore_fallbacks = self.checkpointer.last_restore_fallbacks
        if restore_fallbacks:
            logger.warning(
                "skipped %d corrupted snapshot(s); restoring from step %s",
                restore_fallbacks,
                snapshot.step if snapshot is not None else "0 (cold start)",
            )
        restored_step = snapshot.step + 1 if snapshot is not None else 0
        lost = max(0, self.job.current_step - restored_step)
        delay = (
            self.steering_config.isolation_seconds
            + total_backoff
            + self.steering_config.restart_seconds
        )
        resumed_at = detected_at + delay
        self.report.events.append(
            RecoveryEvent(
                crash_time=crash_time,
                detected_at=detected_at,
                isolated_nodes=tuple(isolated),
                replacement_nodes=tuple(replacements),
                resumed_at=resumed_at,
                restored_step=restored_step,
                lost_steps=lost,
                pool_exhausted=pool_exhausted,
                isolation_attempts=total_attempts,
                backoff_seconds=total_backoff,
                doa_replacements=tuple(doa),
                restore_fallbacks=restore_fallbacks,
            )
        )
        self._crash_time = None
        nodes = list(self.scheduler.allocation_of(self.job_name).nodes)
        remaining = self._target_steps - restored_step

        def relaunch() -> None:
            self._launch(nodes, remaining, restored_step=restored_step)

        self.network.schedule(delay, relaunch)
