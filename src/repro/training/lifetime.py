"""Month-scale job lifetime Monte-Carlo: the Table III experiment.

Simulates a long-running job (the paper's 2,400-GPU, month-plus GPT-175B
training) under stochastic crash faults and an *operations model* —
how failures are detected, diagnosed, isolated and restarted.  Two
operations models reproduce the paper's before/after comparison:

* ``BASELINE_OPERATIONS`` (June 2023): detection waits on the PyTorch
  elastic-agent timeout, diagnosis is manual (hours), checkpoints are
  sparse;
* ``C4D_OPERATIONS`` (December 2023): C4D detects and localizes local
  faults in tens of seconds, steering isolates and restarts in minutes,
  checkpoints land every 10 minutes, and the hardware fleet is hardened
  (the paper reports the underlying error rate itself dropped ~3.3x
  after the most vulnerable components were identified).

Every crash contributes four downtime components (Fig. 2): lost
post-checkpoint work, detection delay, diagnosis & isolation, and
re-initialization.  Faults C4D cannot localize (the non-local ~17.5%)
fall back to manual handling even in the after model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.faults import FaultInjector, FaultRates
from repro.core.c4d.classifier import CauseBucket, classify_fault
from repro.training.checkpoint import FREQUENT_CHECKPOINTS, SPARSE_CHECKPOINTS, CheckpointPolicy


@dataclass(frozen=True)
class OperationsModel:
    """How an operations regime handles each crash, in seconds.

    ``coverage`` is the fraction of *local* faults the automated pipeline
    localizes; without C4D it is zero and everything is manual.
    """

    name: str
    auto_detection: float
    auto_diagnosis: float
    manual_detection: float
    manual_diagnosis: float
    reinit: float
    checkpoints: CheckpointPolicy
    coverage: float
    error_rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")


#: June 2023: no C4D.  Detection = PyTorch elastic-agent hang timeout
#: plus operator reaction; diagnosis = manual log archaeology over a
#: 1000s-of-GPU fleet ("hours or even days").
BASELINE_OPERATIONS = OperationsModel(
    name="baseline-jun23",
    auto_detection=0.0,
    auto_diagnosis=0.0,
    manual_detection=62 * 60.0,
    manual_diagnosis=6.1 * 3600.0,
    reinit=11 * 60.0,
    checkpoints=SPARSE_CHECKPOINTS,
    coverage=0.0,
)

#: December 2023: C4D deployed, frequent checkpoints, hardened fleet.
C4D_OPERATIONS = OperationsModel(
    name="c4d-dec23",
    auto_detection=30.0,
    auto_diagnosis=5 * 60.0,
    manual_detection=15 * 60.0,
    manual_diagnosis=2.0 * 3600.0,
    reinit=11 * 60.0,
    checkpoints=FREQUENT_CHECKPOINTS,
    coverage=1.0,
    error_rate_scale=1.0 / 3.33,
)


@dataclass(frozen=True)
class LifetimeConfig:
    """Scenario parameters for one lifetime simulation."""

    duration_seconds: float = 30 * 24 * 3600.0
    num_gpus: int = 2400
    gpus_per_node: int = 8
    base_rates: FaultRates = field(default_factory=FaultRates)
    seed: int = 0

    @property
    def num_nodes(self) -> int:
        """Node count implied by the GPU count."""
        return self.num_gpus // self.gpus_per_node


@dataclass
class DowntimeBreakdown:
    """Downtime accounting over one simulated window (Table III rows)."""

    duration_seconds: float
    crash_count: int
    post_checkpoint_seconds: float = 0.0
    detection_seconds: float = 0.0
    diagnosis_seconds: float = 0.0
    reinit_seconds: float = 0.0
    checkpoint_overhead_seconds: float = 0.0
    #: Diagnosis & isolation time attributed per cause bucket.
    diagnosis_by_bucket: dict[CauseBucket, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """All error-induced downtime (checkpoint save overhead excluded,
        matching the paper's accounting)."""
        return (
            self.post_checkpoint_seconds
            + self.detection_seconds
            + self.diagnosis_seconds
            + self.reinit_seconds
        )

    def fraction(self, component_seconds: float) -> float:
        """A component as a fraction of the window."""
        return component_seconds / self.duration_seconds

    def as_table(self) -> dict[str, float]:
        """Table III-shaped summary: component -> fraction of total time."""
        table = {
            "Post-Checkpoint": self.fraction(self.post_checkpoint_seconds),
            "Detection": self.fraction(self.detection_seconds),
            "Diagnosis & Isolation": self.fraction(self.diagnosis_seconds),
            "Re-Initialization": self.fraction(self.reinit_seconds),
            "Total": self.fraction(self.total_seconds),
        }
        for bucket, seconds in sorted(self.diagnosis_by_bucket.items(), key=lambda kv: kv[0].value):
            table[f"Diagnosis / {bucket.value}"] = self.fraction(seconds)
        return table


def simulate_lifetime(
    config: LifetimeConfig,
    operations: OperationsModel,
) -> DowntimeBreakdown:
    """Run one month-scale lifetime under an operations model.

    Crash faults are Poisson-sampled at the configured per-GPU rate
    (scaled by the model's ``error_rate_scale``); each crash's downtime
    components follow the operations model, and post-checkpoint loss is
    the time since the most recent periodic checkpoint.
    """
    rates = config.base_rates.scaled(operations.error_rate_scale)
    injector = FaultInjector(rates=rates, seed=config.seed)
    events = injector.sample_crashes(
        config.duration_seconds, config.num_gpus, config.num_nodes
    )
    breakdown = DowntimeBreakdown(
        duration_seconds=config.duration_seconds, crash_count=len(events)
    )
    interval = operations.checkpoints.interval_seconds
    coverage_rng = np.random.default_rng(config.seed + 0xC4D)
    for event in events:
        automated = event.is_local and coverage_rng.random() < operations.coverage
        detection = operations.auto_detection if automated else operations.manual_detection
        diagnosis = operations.auto_diagnosis if automated else operations.manual_diagnosis
        lost = operations.checkpoints.lost_work(event.time % interval)
        breakdown.post_checkpoint_seconds += lost
        breakdown.detection_seconds += detection
        breakdown.diagnosis_seconds += diagnosis
        breakdown.reinit_seconds += operations.reinit
        bucket = classify_fault(event)
        breakdown.diagnosis_by_bucket[bucket] = (
            breakdown.diagnosis_by_bucket.get(bucket, 0.0) + diagnosis
        )
    breakdown.checkpoint_overhead_seconds = (
        operations.checkpoints.overhead_fraction() * config.duration_seconds
    )
    return breakdown
