"""In-memory checkpoint engine (the Gemini-style substrate of §II-C).

The paper attributes the collapse of post-checkpoint cost to
high-frequency checkpointing "similar to the prior work [Gemini],
capable of saving checkpoints approximately every 10 iterations".  This
module provides the engine: bounded in-memory snapshots taken every N
steps with a small save cost, plus restore bookkeeping that the
lifetime model and training jobs consume.

Snapshots carry a checksum computed at save time.  Restore validates it
and walks back through older snapshots when the newest is corrupted
(bit rot, a torn in-flight save, a bad host DIMM) — the recovery
pipeline degrades to losing more steps instead of crashing on an
unloadable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def _checksum(step: int, time: float, size_bits: float) -> int:
    """Cheap deterministic digest standing in for a content hash."""
    return hash((step, round(time, 9), round(size_bits, 9))) & 0xFFFFFFFF


@dataclass
class Snapshot:
    """One saved model state.

    ``checksum`` is written at save time; :meth:`is_valid` recomputes it
    at restore time, so corruption injected in between is caught before
    the job tries to load the state.
    """

    step: int
    time: float
    size_bits: float
    checksum: int = 0

    def __post_init__(self) -> None:
        if self.checksum == 0:
            self.checksum = _checksum(self.step, self.time, self.size_bits)

    @property
    def is_valid(self) -> bool:
        """True when the stored checksum matches the content."""
        return self.checksum == _checksum(self.step, self.time, self.size_bits)

    def corrupt(self) -> None:
        """Damage the snapshot in place (chaos injection)."""
        self.checksum = ~self.checksum & 0xFFFFFFFF


class InMemoryCheckpointer:
    """Periodic snapshots into a bounded host-memory ring.

    Parameters
    ----------
    interval_steps:
        Steps between snapshots (the paper's "approximately every 10
        iterations").
    save_seconds:
        Training-time cost of one save (near zero for async host-memory
        copies; non-zero values model synchronous saves).
    capacity:
        Snapshots retained; older ones are evicted (host memory is
        finite — Gemini keeps a small ring plus a remote replica).
    state_bits:
        Size of one snapshot, recorded for capacity accounting.
    """

    def __init__(
        self,
        interval_steps: int = 10,
        save_seconds: float = 0.5,
        capacity: int = 2,
        state_bits: float = 0.0,
    ) -> None:
        if interval_steps < 1:
            raise ValueError("interval_steps must be >= 1")
        if save_seconds < 0:
            raise ValueError("save_seconds must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.interval_steps = interval_steps
        self.save_seconds = save_seconds
        self.capacity = capacity
        self.state_bits = state_bits
        self.snapshots: list[Snapshot] = []
        self.saves = 0
        self.restores = 0
        #: Corrupted snapshots skipped across all restores.
        self.fallbacks = 0
        #: Fallback depth of the most recent restore (0 = newest
        #: snapshot was valid).
        self.last_restore_fallbacks = 0

    def maybe_save(self, step: int, now: float) -> float:
        """Save if ``step`` is on the cadence; returns the time cost."""
        if step < 0:
            raise ValueError("step must be non-negative")
        if (step + 1) % self.interval_steps != 0:
            return 0.0
        self.snapshots.append(Snapshot(step=step, time=now, size_bits=self.state_bits))
        if len(self.snapshots) > self.capacity:
            self.snapshots.pop(0)
        self.saves += 1
        return self.save_seconds

    def corrupt_latest(self, count: int = 1) -> int:
        """Damage the newest ``count`` snapshots; returns how many."""
        corrupted = 0
        for snapshot in reversed(self.snapshots):
            if corrupted >= count:
                break
            if snapshot.is_valid:
                snapshot.corrupt()
                corrupted += 1
        return corrupted

    def latest(self, before_time: Optional[float] = None) -> Optional[Snapshot]:
        """Most recent snapshot, optionally taken strictly before a time.

        A crash at time T can only restore from snapshots completed
        before T (an in-flight save is lost with the process).  Validity
        is *not* checked here — use :meth:`restore` for the validated
        fallback chain.
        """
        candidates = (
            self.snapshots
            if before_time is None
            else [s for s in self.snapshots if s.time < before_time]
        )
        return candidates[-1] if candidates else None

    def restore(self, crash_time: float) -> Optional[Snapshot]:
        """Pick the restore point for a crash and count the event.

        Walks newest→oldest through snapshots completed before the
        crash, skipping any that fail integrity validation; the skip
        count lands in ``last_restore_fallbacks``.  Returns ``None``
        when no valid snapshot exists (cold restart from step 0).
        """
        candidates = [s for s in self.snapshots if s.time < crash_time]
        self.last_restore_fallbacks = 0
        for snapshot in reversed(candidates):
            if snapshot.is_valid:
                self.restores += 1
                return snapshot
            self.last_restore_fallbacks += 1
            self.fallbacks += 1
        return None

    def lost_steps(self, crash_step: int, crash_time: float) -> int:
        """Steps of work lost by a crash (step granularity)."""
        candidates = [
            s for s in self.snapshots if s.time < crash_time and s.is_valid
        ]
        if not candidates:
            return crash_step
        return max(0, crash_step - candidates[-1].step - 1)

    @property
    def memory_bits(self) -> float:
        """Host memory currently held by snapshots."""
        return sum(s.size_bits for s in self.snapshots)
