"""Model configurations and the analytic compute-time model.

The paper's evaluation workloads (Table II): GPT with 22B and 175B
parameters and Llama with 7B and 13B.  The compute model is the standard
6 x params x tokens FLOPs-per-sample estimate for decoder-only
transformers (forward + backward), divided by an effective per-GPU
throughput that folds in MFU; the simulation only needs *relative*
compute-vs-communication magnitudes, but the defaults are calibrated so
Fig. 14's absolute samples/s land near the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """A trainable model's size and token geometry.

    Attributes
    ----------
    name:
        Human-readable label.
    params:
        Total parameter count.
    seq_len:
        Tokens per training sample.
    grad_bytes_per_param:
        Gradient precision in bytes (bf16 = 2).
    """

    name: str
    params: float
    seq_len: int
    grad_bytes_per_param: float = 2.0

    @property
    def flops_per_sample(self) -> float:
        """Training FLOPs for one sample (6 x params x tokens)."""
        return 6.0 * self.params * self.seq_len

    def grad_bits(self, shard_fraction: float = 1.0) -> float:
        """Gradient payload in bits for ``shard_fraction`` of the model."""
        if not 0 < shard_fraction <= 1:
            raise ValueError("shard_fraction must be in (0, 1]")
        return self.params * shard_fraction * self.grad_bytes_per_param * 8.0


#: The paper's benchmark models (Table II).
GPT_22B = ModelConfig(name="GPT-22B", params=22e9, seq_len=2048)
GPT_175B = ModelConfig(name="GPT-175B", params=175e9, seq_len=2048)
LLAMA_7B = ModelConfig(name="Llama-7B", params=7e9, seq_len=2048)
LLAMA_13B = ModelConfig(name="Llama-13B", params=13e9, seq_len=2048)


#: Effective per-GPU training throughput in FLOP/s (peak x MFU); H800
#: class hardware at the MFU large dense models typically reach.
DEFAULT_EFFECTIVE_FLOPS = 1.9e14


def compute_seconds(
    model: ModelConfig,
    samples: float,
    num_gpus: int,
    effective_flops: float = DEFAULT_EFFECTIVE_FLOPS,
) -> float:
    """Pure-compute time for ``samples`` spread over ``num_gpus``."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if samples <= 0:
        raise ValueError("samples must be positive")
    return model.flops_per_sample * samples / (num_gpus * effective_flops)
