"""Parallelization plans: TP x PP x DP decompositions.

Mirrors the Megatron/DeepSpeed configurations of the paper's Fig. 14
jobs: tensor parallelism inside a node (NVLink), pipeline parallelism
over contiguous node groups, data parallelism across replicas, with
optional ZeRO partitioning and gradient accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collective.communicator import RankLocation


@dataclass(frozen=True)
class ParallelismPlan:
    """How a job decomposes over GPUs.

    Attributes
    ----------
    tp:
        Tensor-parallel group size (must fit inside a node).
    pp:
        Pipeline-parallel stages.
    dp:
        Data-parallel replica count.
    grad_accumulation:
        Micro-batches per optimizer step; the DP gradient exchange
        happens once per step, so communication cost is amortized by
        this factor (the Fig. 14 Job3 effect).
    zero:
        DeepSpeed ZeRO optimizer partitioning (changes the exchange from
        allreduce to reduce-scatter + all-gather; same volume on the
        ring, so the fabric sees equivalent traffic).
    ep:
        Expert-parallel group size for mixture-of-experts models; EP
        groups exchange tokens via alltoall each step.  Must divide the
        world size.
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    grad_accumulation: int = 1
    zero: bool = False
    ep: int = 1

    def __post_init__(self) -> None:
        for field_name in ("tp", "pp", "dp", "grad_accumulation", "ep"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.ep > 1 and self.world_size % self.ep != 0:
            raise ValueError("ep must divide the world size")

    @property
    def world_size(self) -> int:
        """Total GPU count."""
        return self.tp * self.pp * self.dp

    def gpus_required(self) -> int:
        """Alias for world_size (readability at call sites)."""
        return self.world_size

    def nodes_required(self, gpus_per_node: int) -> int:
        """Nodes needed for this plan."""
        if self.world_size % gpus_per_node != 0 and self.world_size > gpus_per_node:
            raise ValueError(
                f"world size {self.world_size} does not pack into nodes of {gpus_per_node}"
            )
        return max(1, self.world_size // gpus_per_node)

    @property
    def dp_shard_fraction(self) -> float:
        """Fraction of the model each DP rank's gradient exchange covers."""
        return 1.0 / (self.tp * self.pp)

    def dp_groups(self, nodes: list[int], gpus_per_node: int) -> list[list[RankLocation]]:
        """Build the data-parallel communicator rank lists.

        Layout: TP packs consecutive GPUs of one node; PP takes
        contiguous node blocks; DP strides across replicas.  With
        ``tp == gpus_per_node`` each DP group runs one GPU index per
        node (rail-aligned), so concurrent DP groups cover all NICs.
        """
        if self.tp > gpus_per_node:
            raise ValueError("tensor parallelism must fit inside a node")
        if len(nodes) * gpus_per_node < self.world_size:
            raise ValueError("not enough nodes for the plan")
        # GPUs of one pipeline replica occupy tp*pp consecutive GPU slots.
        replica_gpus = self.tp * self.pp
        groups: list[list[RankLocation]] = []
        # One DP group per (pp stage, tp rank): its members sit at the
        # same offset within each replica block.
        for offset in range(replica_gpus):
            group: list[RankLocation] = []
            for replica in range(self.dp):
                slot = replica * replica_gpus + offset
                group.append(
                    RankLocation(node=nodes[slot // gpus_per_node], gpu=slot % gpus_per_node)
                )
            groups.append(group)
        return groups

    def ep_groups(self, nodes: list[int], gpus_per_node: int) -> list[list[RankLocation]]:
        """Expert-parallel groups: consecutive rank blocks of size ``ep``.

        Node-contiguous blocks keep most expert traffic close (the
        topology-aware placement the paper advocates); groups larger
        than a node exchange tokens over the fabric via alltoall.
        """
        if self.ep == 1:
            return []
        if len(nodes) * gpus_per_node < self.world_size:
            raise ValueError("not enough nodes for the plan")
        groups: list[list[RankLocation]] = []
        for base in range(0, self.world_size, self.ep):
            group = [
                RankLocation(
                    node=nodes[(base + i) // gpus_per_node],
                    gpu=(base + i) % gpus_per_node,
                )
                for i in range(self.ep)
            ]
            groups.append(group)
        return groups

    def pp_boundaries(self, nodes: list[int], gpus_per_node: int) -> list[tuple[RankLocation, RankLocation]]:
        """Adjacent-stage (sender, receiver) pairs for pipeline traffic."""
        if self.pp == 1:
            return []
        replica_gpus = self.tp * self.pp
        stage_gpus = self.tp
        pairs: list[tuple[RankLocation, RankLocation]] = []
        for replica in range(self.dp):
            base = replica * replica_gpus
            for stage in range(self.pp - 1):
                src_slot = base + stage * stage_gpus
                dst_slot = base + (stage + 1) * stage_gpus
                pairs.append(
                    (
                        RankLocation(
                            node=nodes[src_slot // gpus_per_node], gpu=src_slot % gpus_per_node
                        ),
                        RankLocation(
                            node=nodes[dst_slot // gpus_per_node], gpu=dst_slot % gpus_per_node
                        ),
                    )
                )
        return pairs
