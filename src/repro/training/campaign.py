"""Multi-seed fault campaigns: downtime statistics with uncertainty.

A single month-long lifetime simulation is one draw from the fault
process; operators (and reviewers) care about the distribution.  The
campaign driver replays the Table III scenario across seeds and reports
means with normal-approximation confidence intervals, so statements
like "C4D reduces downtime ~30x" carry error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.training.lifetime import (
    DowntimeBreakdown,
    LifetimeConfig,
    OperationsModel,
    simulate_lifetime,
)

COMPONENTS = ("Post-Checkpoint", "Detection", "Diagnosis & Isolation",
              "Re-Initialization", "Total")


@dataclass(frozen=True)
class ComponentStats:
    """Mean and 95% CI of one downtime component, as fractions."""

    mean: float
    ci95: float

    @property
    def low(self) -> float:
        """Lower CI bound (clamped at zero)."""
        return max(0.0, self.mean - self.ci95)

    @property
    def high(self) -> float:
        """Upper CI bound."""
        return self.mean + self.ci95


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated downtime statistics over one operations model."""

    operations_name: str
    runs: int
    components: dict[str, ComponentStats]
    crash_counts: tuple[int, ...]

    @property
    def total(self) -> ComponentStats:
        """The headline total-downtime statistic."""
        return self.components["Total"]

    @property
    def mean_crashes(self) -> float:
        """Mean crash count per run."""
        return sum(self.crash_counts) / len(self.crash_counts)


def run_campaign(
    operations: OperationsModel,
    base_config: LifetimeConfig | None = None,
    runs: int = 20,
) -> CampaignResult:
    """Replay the lifetime simulation across ``runs`` seeds."""
    if runs < 2:
        raise ValueError("need at least 2 runs for a confidence interval")
    base = base_config or LifetimeConfig()
    samples: list[DowntimeBreakdown] = []
    for index in range(runs):
        config = replace(base, seed=base.seed + index)
        samples.append(simulate_lifetime(config, operations))
    components: dict[str, ComponentStats] = {}
    for component in COMPONENTS:
        values = np.array([s.as_table()[component] for s in samples])
        mean = float(values.mean())
        # Normal-approximation 95% CI of the mean.
        ci95 = 1.96 * float(values.std(ddof=1)) / math.sqrt(runs)
        components[component] = ComponentStats(mean=mean, ci95=ci95)
    return CampaignResult(
        operations_name=operations.name,
        runs=runs,
        components=components,
        crash_counts=tuple(s.crash_count for s in samples),
    )


def reduction_factor(before: CampaignResult, after: CampaignResult) -> ComponentStats:
    """Downtime reduction factor with (first-order) error propagation."""
    b, a = before.total, after.total
    if a.mean <= 0:
        raise ValueError("after-campaign has zero downtime; factor undefined")
    mean = b.mean / a.mean
    rel = math.sqrt((b.ci95 / b.mean) ** 2 + (a.ci95 / a.mean) ** 2) if b.mean > 0 else 0.0
    return ComponentStats(mean=mean, ci95=mean * rel)
