"""Checkpoint policies and post-checkpoint loss accounting.

The paper identifies post-checkpoint cost — computation between the last
valid checkpoint and a crash is lost — as the second-largest downtime
component, and the fix as high-frequency checkpointing ("approximately
every 10 iterations" / every 10 minutes), following Gemini-style
in-memory checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpointing with a fixed save cost.

    Attributes
    ----------
    interval_seconds:
        Time between checkpoint completions.
    save_seconds:
        Time one checkpoint save steals from training (fast in-memory
        checkpoints make this near zero; slow shared-FS saves do not).
    """

    interval_seconds: float
    save_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.save_seconds < 0:
            raise ValueError("save_seconds must be non-negative")
        if self.save_seconds >= self.interval_seconds:
            raise ValueError("save cost must be smaller than the interval")

    def lost_work(self, time_since_last_checkpoint: float) -> float:
        """Computation lost if a crash happens this long after a save."""
        if time_since_last_checkpoint < 0:
            raise ValueError("time must be non-negative")
        return min(time_since_last_checkpoint, self.interval_seconds)

    def expected_lost_work(self) -> float:
        """Mean loss for a crash uniform within the interval."""
        return self.interval_seconds / 2.0

    def overhead_fraction(self) -> float:
        """Fraction of runtime spent saving checkpoints."""
        return self.save_seconds / self.interval_seconds


#: Sparse checkpointing typical before C4 (users "scheduled infrequent
#: checkpoints"): every ~4.7 hours, matching Table III's June post-
#: checkpoint share.
SPARSE_CHECKPOINTS = CheckpointPolicy(interval_seconds=4.7 * 3600, save_seconds=60.0)

#: High-frequency checkpointing deployed with C4D (every 10 minutes).
FREQUENT_CHECKPOINTS = CheckpointPolicy(interval_seconds=600.0, save_seconds=2.0)
