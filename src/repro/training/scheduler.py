"""Cluster scheduler: job placement and the backup-node pool.

Implements the paper's provisioning strategy (§III-A): "we have
allocated 64 backup GPUs across 8 servers for every 1024 GPUs on 128
servers, ensuring consistent communication and performance for parallel
training on any of the 128 servers within this 136-server pool."  The
scheduler partitions the cluster into an active pool and a backup pool
(1 backup server per 16 active by default), places jobs on contiguous
healthy nodes (topology-aware placement keeps ring edges short), and
swaps isolated nodes for backups when C4D's steering service asks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import ClusterTopology


@dataclass(frozen=True)
class Allocation:
    """A job's node grant."""

    job_name: str
    nodes: tuple[int, ...]


class SchedulingError(RuntimeError):
    """Raised when a request cannot be satisfied."""


class ClusterScheduler:
    """Node accounting for a shared training cluster.

    Parameters
    ----------
    topology:
        The cluster.
    backup_ratio:
        Fraction of nodes reserved as spares; the paper's 8-per-128 is
        1/16.  The highest-numbered nodes form the backup pool.
    """

    def __init__(self, topology: ClusterTopology, backup_ratio: float = 1 / 16) -> None:
        if not 0 <= backup_ratio < 1:
            raise ValueError("backup_ratio must be in [0, 1)")
        self.topology = topology
        total = topology.spec.num_nodes
        num_backups = math.ceil(total * backup_ratio) if backup_ratio > 0 else 0
        self._active_pool: list[int] = list(range(total - num_backups))
        self.backup_pool: list[int] = list(range(total - num_backups, total))
        self._allocations: dict[str, Allocation] = {}
        self._busy: set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_capacity(self) -> int:
        """Schedulable nodes in the active pool."""
        return len(self.free_nodes())

    def free_nodes(self) -> list[int]:
        """Active-pool nodes that are healthy and unallocated."""
        return [
            node_id
            for node_id in self._active_pool
            if node_id not in self._busy and self.topology.node(node_id).is_schedulable
        ]

    def allocation_of(self, job_name: str) -> Optional[Allocation]:
        """The job's current grant, if any."""
        return self._allocations.get(job_name)

    def utilization(self) -> float:
        """Busy fraction of the active pool."""
        if not self._active_pool:
            return 0.0
        return len(self._busy & set(self._active_pool)) / len(self._active_pool)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def allocate(self, job_name: str, num_nodes: int) -> Allocation:
        """Grant ``num_nodes`` nodes, preferring a contiguous run.

        Contiguity keeps node-ring edges between near neighbours — the
        topology-aware scheduling the paper lists as a first-line
        collision mitigation.  Falls back to the lowest-numbered free
        nodes when no contiguous run exists.
        """
        if job_name in self._allocations:
            raise SchedulingError(f"job {job_name!r} already has an allocation")
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        free = self.free_nodes()
        if len(free) < num_nodes:
            raise SchedulingError(
                f"need {num_nodes} nodes, only {len(free)} free in the active pool"
            )
        chosen = self._contiguous_run(free, num_nodes) or free[:num_nodes]
        allocation = Allocation(job_name=job_name, nodes=tuple(chosen))
        self._allocations[job_name] = allocation
        self._busy.update(chosen)
        return allocation

    def release(self, job_name: str) -> None:
        """Return a job's nodes to the pool."""
        allocation = self._allocations.pop(job_name, None)
        if allocation is None:
            raise SchedulingError(f"no allocation for job {job_name!r}")
        self._busy.difference_update(allocation.nodes)

    @staticmethod
    def _contiguous_run(free: list[int], count: int) -> Optional[list[int]]:
        run: list[int] = []
        for node_id in free:
            if run and node_id != run[-1] + 1:
                run = []
            run.append(node_id)
            if len(run) == count:
                return run
        return None

    # ------------------------------------------------------------------
    # Failure handling (driven by C4D steering)
    # ------------------------------------------------------------------
    def replace_node(self, job_name: str, failed_node: int) -> Optional[int]:
        """Swap an isolated node for a backup in a job's allocation.

        Returns the replacement node id, or None when the backup pool is
        empty (the job keeps the hole; callers decide whether to shrink
        or queue).  The failed node is *not* returned to any pool — it
        goes to repair via :meth:`return_repaired`.
        """
        allocation = self._allocations.get(job_name)
        if allocation is None or failed_node not in allocation.nodes:
            raise SchedulingError(
                f"node {failed_node} is not allocated to job {job_name!r}"
            )
        self._busy.discard(failed_node)
        replacement: Optional[int] = None
        if self.backup_pool:
            replacement = self.backup_pool.pop(0)
            self._busy.add(replacement)
        new_nodes = tuple(
            replacement if node_id == failed_node else node_id
            for node_id in allocation.nodes
            if replacement is not None or node_id != failed_node
        )
        self._allocations[job_name] = Allocation(job_name=job_name, nodes=new_nodes)
        return replacement

    def return_repaired(self, node_id: int) -> None:
        """A repaired node re-enters service as a backup."""
        self.topology.node(node_id).restore()
        if node_id not in self.backup_pool:
            self.backup_pool.append(node_id)
