"""Distributed-training model: BSP jobs on the simulated cluster.

Provides the workloads of the paper's evaluation: GPT/Llama model
configurations, TP/PP/DP parallelization plans, a step engine that runs
compute phases and collective communication on the simulated fabric
(Fig. 14, Fig. 3), checkpoint policies, and the month-scale job-lifetime
Monte-Carlo behind the downtime accounting of Tables I and III.
"""

from repro.training.checkpoint import CheckpointPolicy
from repro.training.job import JobSpec, StepBreakdown, TrainingJob
from repro.training.lifetime import (
    BASELINE_OPERATIONS,
    C4D_OPERATIONS,
    DowntimeBreakdown,
    LifetimeConfig,
    OperationsModel,
    simulate_lifetime,
)
from repro.training.memory_checkpoint import InMemoryCheckpointer, Snapshot
from repro.training.models import GPT_175B, GPT_22B, LLAMA_13B, LLAMA_7B, ModelConfig
from repro.training.parallelism import ParallelismPlan
from repro.training.recovery import RecoveryEvent, RecoveryOrchestrator, RecoveryReport
from repro.training.scheduler import Allocation, ClusterScheduler, SchedulingError

__all__ = [
    "ModelConfig",
    "GPT_22B",
    "GPT_175B",
    "LLAMA_7B",
    "LLAMA_13B",
    "ParallelismPlan",
    "TrainingJob",
    "JobSpec",
    "StepBreakdown",
    "CheckpointPolicy",
    "InMemoryCheckpointer",
    "Snapshot",
    "Allocation",
    "ClusterScheduler",
    "SchedulingError",
    "RecoveryEvent",
    "RecoveryOrchestrator",
    "RecoveryReport",
    "LifetimeConfig",
    "DowntimeBreakdown",
    "OperationsModel",
    "BASELINE_OPERATIONS",
    "C4D_OPERATIONS",
    "simulate_lifetime",
]
