"""The BSP training-job step engine.

A :class:`TrainingJob` runs optimizer steps on the simulated cluster:
each step is a compute phase (analytic, per-node skew from degraded
GPUs/hosts) followed by the data-parallel gradient exchange executed as
real collective operations on the fabric — so communication cost
reflects whatever path selection, collisions, failures and load
balancing the fabric currently exhibits.  Tensor-parallel traffic stays
on NVLink and is folded into the effective compute throughput; pipeline
activations can be modelled explicitly via ``pp_activation_bits``.

Throughput is reported in samples/s, the unit of the paper's Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.collective.algorithms import OpType
from repro.collective.communicator import Communicator
from repro.collective.context import CollectiveContext, OpHandle
from repro.training.memory_checkpoint import InMemoryCheckpointer
from repro.training.models import DEFAULT_EFFECTIVE_FLOPS, ModelConfig, compute_seconds
from repro.training.parallelism import ParallelismPlan


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to run one training job.

    Attributes
    ----------
    name:
        Job label (shows up in communicator ids).
    model:
        The model being trained.
    plan:
        TP/PP/DP decomposition.
    global_batch:
        Samples per optimizer step across all replicas.
    effective_flops:
        Per-GPU effective FLOP/s (peak x MFU).
    pp_activation_bits:
        Activation payload crossing each pipeline-stage boundary per
        micro-batch (0 disables explicit PP traffic).
    ep_alltoall_bits:
        Token payload each rank exchanges within its expert-parallel
        group per step (dispatch + combine folded together; 0 disables
        EP traffic).
    ep_imbalance_std:
        Relative standard deviation of per-rank expert load: each step,
        each rank's compute is stretched by ``max(0, N(0, std))`` of the
        base compute time — the random token-routing imbalance that
        makes naive straggler detection misfire on MoE jobs (paper §V).
    """

    name: str
    model: ModelConfig
    plan: ParallelismPlan
    global_batch: float
    effective_flops: float = DEFAULT_EFFECTIVE_FLOPS
    pp_activation_bits: float = 0.0
    ep_alltoall_bits: float = 0.0
    ep_imbalance_std: float = 0.0


@dataclass
class StepBreakdown:
    """Timing of one completed optimizer step."""

    step_index: int
    start_time: float
    compute_seconds: float
    comm_seconds: float
    end_time: float

    @property
    def step_seconds(self) -> float:
        """Wall-clock (simulated) duration of the step."""
        return self.end_time - self.start_time


class TrainingJob:
    """One job's step loop bound to a collective context and nodes."""

    def __init__(
        self,
        spec: JobSpec,
        context: CollectiveContext,
        nodes: list[int],
        seed: int = 0,
        checkpointer: Optional["InMemoryCheckpointer"] = None,
        start_step: int = 0,
    ) -> None:
        gpus_per_node = context.topology.spec.gpus_per_node
        if len(nodes) < spec.plan.nodes_required(gpus_per_node):
            raise ValueError(
                f"job {spec.name!r} needs {spec.plan.nodes_required(gpus_per_node)} nodes, "
                f"got {len(nodes)}"
            )
        self.spec = spec
        self.context = context
        self.nodes = list(nodes)
        self.steps: list[StepBreakdown] = []
        self._gpus_per_node = gpus_per_node
        self._rng = np.random.default_rng(seed)
        self.checkpointer = checkpointer
        #: Nodes whose worker processes have died; their ranks never
        #: enter subsequent collectives, so the next operation hangs —
        #: the crash syndrome C4D detects.
        self.crashed_nodes: set[int] = set()
        self._dp_comms: list[Communicator] = []
        self._ep_comms: list[Communicator] = []
        self._build_communicators()
        self._pending_ops = 0
        self._step_index = start_step
        self._step_start = 0.0
        self._compute_done_at = 0.0
        self._target_steps = 0
        self._on_all_done: Optional[Callable[[], None]] = None

    def _build_communicators(self) -> None:
        plan = self.spec.plan
        groups = plan.dp_groups(self.nodes, self._gpus_per_node)
        for index, group in enumerate(groups):
            if len(group) < 2:
                continue  # dp=1: no gradient exchange
            self._dp_comms.append(
                self.context.communicator(group, comm_id=f"{self.spec.name}/dp{index}")
            )
        if plan.ep > 1 and self.spec.ep_alltoall_bits > 0:
            for index, group in enumerate(plan.ep_groups(self.nodes, self._gpus_per_node)):
                self._ep_comms.append(
                    self.context.communicator(group, comm_id=f"{self.spec.name}/ep{index}")
                )

    # ------------------------------------------------------------------
    # Step loop
    # ------------------------------------------------------------------
    def run_steps(self, count: int, on_all_done: Optional[Callable[[], None]] = None) -> None:
        """Queue ``count`` optimizer steps starting now.

        The caller drives ``context.network.run()``; completed steps
        accumulate in :attr:`steps`.  Step indices are absolute (a job
        restored from a checkpoint continues its global step count).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        self._target_steps = self._step_index + count
        self._on_all_done = on_all_done
        self._begin_step()

    def crash_node(self, node_id: int) -> None:
        """Kill the worker processes of one node.

        The node's ranks stop entering collectives; the job's next step
        hangs at the BSP barrier (exactly how a CUDA/ECC error surfaces
        to peers as an opaque NCCL error).
        """
        if node_id not in self.nodes:
            raise ValueError(f"node {node_id} is not part of this job")
        self.crashed_nodes.add(node_id)

    @property
    def is_stalled(self) -> bool:
        """True once a crash has poisoned the step loop."""
        return bool(self.crashed_nodes)

    @property
    def current_step(self) -> int:
        """The absolute step index currently in flight (or next to run)."""
        return self._step_index

    def _absent_ranks_of(self, comm: Communicator) -> list[int]:
        if not self.crashed_nodes:
            return []
        return [
            rank
            for rank, location in enumerate(comm.ranks)
            if location.node in self.crashed_nodes
        ]

    def _compute_time_of_node(self, node_id: int, base: float) -> float:
        node = self.context.topology.node(node_id)
        return base / node.worst_gpu_scale() * node.host_slowdown

    def _begin_step(self) -> None:
        network = self.context.network
        self._step_start = network.now
        base_compute = compute_seconds(
            self.spec.model,
            self.spec.global_batch,
            self.spec.plan.world_size,
            self.spec.effective_flops,
        )
        per_node_compute = {
            node_id: self._compute_time_of_node(node_id, base_compute)
            for node_id in self.nodes
        }
        # Expert load imbalance: random per-rank compute stretch (token
        # routing varies step to step).
        ep_jitter: dict[tuple[int, int], float] = {}
        if self.spec.ep_imbalance_std > 0:
            for node_id in self.nodes:
                for gpu in range(self._gpus_per_node):
                    stretch = abs(self._rng.normal(0.0, self.spec.ep_imbalance_std))
                    ep_jitter[(node_id, gpu)] = base_compute * stretch
        self._compute_done_at = self._step_start + max(per_node_compute.values()) + (
            max(ep_jitter.values()) if ep_jitter else 0.0
        )

        if not self._dp_comms and not self._ep_comms:
            network.schedule_at(self._compute_done_at, self._step_done_no_comm)
            return

        def rank_offset(rank) -> float:
            return per_node_compute[rank.node] + ep_jitter.get((rank.node, rank.gpu), 0.0)

        grad_bits = self.spec.model.grad_bits(self.spec.plan.dp_shard_fraction)
        pp_pairs = []
        if self.spec.plan.pp > 1 and self.spec.pp_activation_bits > 0:
            pp_pairs = self.spec.plan.pp_boundaries(self.nodes, self._gpus_per_node)
        self._pending_ops = len(self._dp_comms) + len(self._ep_comms) + len(pp_pairs)
        for comm in self._dp_comms:
            offsets = [rank_offset(rank) for rank in comm.ranks]
            self.context.run_op(
                comm,
                OpType.ALLREDUCE,
                grad_bits,
                entry_offsets=offsets,
                on_complete=self._op_done,
                absent_ranks=self._absent_ranks_of(comm),
            )
        # Expert token exchange (dispatch + combine) within each EP group.
        for comm in self._ep_comms:
            offsets = [rank_offset(rank) for rank in comm.ranks]
            self.context.run_op(
                comm,
                OpType.ALLTOALL,
                self.spec.ep_alltoall_bits,
                entry_offsets=offsets,
                on_complete=self._op_done,
                absent_ranks=self._absent_ranks_of(comm),
            )
        # Pipeline activations: one aggregate transfer per stage boundary
        # per step (micro-batch pipelining is folded into the payload).
        for src, dst in pp_pairs:
            self.context.run_send_recv(
                src,
                dst,
                self.spec.pp_activation_bits * self.spec.plan.grad_accumulation,
                comm=self._dp_comms[0] if self._dp_comms else self.context.communicator([src, dst]),
                on_complete=self._op_done,
            )

    def _op_done(self, handle: OpHandle) -> None:
        self._pending_ops -= 1
        if self._pending_ops == 0:
            self._finish_step()

    def _step_done_no_comm(self) -> None:
        self._finish_step()

    def _finish_step(self) -> None:
        now = self.context.network.now
        compute = self._compute_done_at - self._step_start
        self.steps.append(
            StepBreakdown(
                step_index=self._step_index,
                start_time=self._step_start,
                compute_seconds=compute,
                comm_seconds=max(0.0, now - self._compute_done_at),
                end_time=now,
            )
        )
        save_cost = 0.0
        if self.checkpointer is not None:
            save_cost = self.checkpointer.maybe_save(self._step_index, now)
        self._step_index += 1
        if self._step_index < self._target_steps:
            if save_cost > 0:
                self.context.network.schedule(save_cost, self._begin_step)
            else:
                self._begin_step()
        elif self._on_all_done is not None:
            self._on_all_done()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def throughput_samples_per_second(self, skip: int = 0) -> float:
        """Mean samples/s over completed steps (optionally skipping warmup)."""
        steps = self.steps[skip:]
        if not steps:
            raise RuntimeError("no completed steps to report")
        total_time = sum(s.step_seconds for s in steps)
        return self.spec.global_batch * len(steps) / total_time

    def mean_comm_fraction(self, skip: int = 0) -> float:
        """Average share of step time spent in exposed communication."""
        steps = self.steps[skip:]
        if not steps:
            raise RuntimeError("no completed steps to report")
        return sum(s.comm_seconds / s.step_seconds for s in steps) / len(steps)
