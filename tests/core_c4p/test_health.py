"""Tests for the link health state machine and flap damping."""

import pytest

from repro.core.c4p.health import LinkHealthConfig, LinkHealthState, LinkHealthTracker

LINK = ("lup", 0, 0, 3, 1)


def tracker(**kwargs):
    return LinkHealthTracker(LinkHealthConfig(**kwargs)) if kwargs else LinkHealthTracker()


def test_unknown_link_is_healthy():
    t = tracker()
    assert t.state_of(LINK) is LinkHealthState.HEALTHY
    assert t.quarantined_until(LINK) == float("-inf")


def test_failure_quarantines_with_base_holddown():
    t = tracker(hold_down_base=30.0)
    hold = t.record_failure(LINK, now=100.0)
    assert hold == 30.0
    assert t.state_of(LINK) is LinkHealthState.QUARANTINED
    assert t.quarantined_until(LINK) == 130.0


def test_repeat_failures_escalate_exponentially():
    t = tracker(hold_down_base=30.0, hold_down_max=480.0, flap_window=900.0)
    assert t.record_failure(LINK, 0.0) == 30.0
    assert t.record_failure(LINK, 50.0) == 60.0
    assert t.record_failure(LINK, 100.0) == 120.0
    assert t.record_failure(LINK, 150.0) == 240.0
    assert t.record_failure(LINK, 200.0) == 480.0
    assert t.record_failure(LINK, 250.0) == 480.0  # capped


def test_failures_age_out_of_flap_window():
    t = tracker(hold_down_base=30.0, flap_window=100.0)
    t.record_failure(LINK, 0.0)
    t.record_failure(LINK, 10.0)
    # Both old failures are outside the window by now: back to base.
    assert t.record_failure(LINK, 500.0) == 30.0


def test_probes_during_holddown_are_ignored_both_ways():
    t = tracker(hold_down_base=100.0)
    t.record_failure(LINK, 0.0)
    # A flap's transient "up" must not start recovery...
    assert t.record_probe(LINK, 10.0, healthy=True) is LinkHealthState.QUARANTINED
    # ...and a still-dead link must not escalate once per probe tick.
    assert t.record_probe(LINK, 20.0, healthy=False) is LinkHealthState.QUARANTINED
    assert t.failures_in_window(LINK, 20.0) == 1
    assert t.quarantined_until(LINK) == 100.0  # unchanged


def test_recovery_requires_probation_streak():
    t = tracker(hold_down_base=30.0, probation_probes=3)
    t.record_failure(LINK, 0.0)
    assert t.record_probe(LINK, 31.0, True) is LinkHealthState.PROBATION
    assert t.record_probe(LINK, 32.0, True) is LinkHealthState.PROBATION
    assert t.record_probe(LINK, 33.0, True) is LinkHealthState.HEALTHY
    assert t.state_of(LINK) is LinkHealthState.HEALTHY
    assert t.tracked_links() == []


def test_failed_probe_in_probation_requarantines_escalated():
    t = tracker(hold_down_base=30.0)
    t.record_failure(LINK, 0.0)
    assert t.record_probe(LINK, 31.0, True) is LinkHealthState.PROBATION
    assert t.record_probe(LINK, 32.0, False) is LinkHealthState.QUARANTINED
    # Second failure in the window: escalated hold-down.
    assert t.quarantined_until(LINK) == 32.0 + 60.0


def test_relapse_after_recovery_resumes_escalation():
    t = tracker(hold_down_base=30.0, probation_probes=1, flap_window=900.0)
    t.record_failure(LINK, 0.0)
    assert t.record_probe(LINK, 31.0, True) is LinkHealthState.HEALTHY
    # History survives recovery: the relapse is the second failure.
    assert t.record_failure(LINK, 40.0) == 60.0


def test_config_validation():
    with pytest.raises(ValueError):
        LinkHealthConfig(hold_down_base=0.0)
    with pytest.raises(ValueError):
        LinkHealthConfig(hold_down_base=100.0, hold_down_max=50.0)
    with pytest.raises(ValueError):
        LinkHealthConfig(flap_window=-1.0)
    with pytest.raises(ValueError):
        LinkHealthConfig(probation_probes=0)
