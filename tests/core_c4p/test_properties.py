"""Property-based tests (hypothesis) for C4P's registry and probing."""

from hypothesis import given, settings, strategies as st

from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.core.c4p.registry import PathRegistry
from repro.netsim.network import FlowNetwork


def build_registry(spines=4, ports=2):
    spec = ClusterSpec(
        num_nodes=4, spines_per_rail=spines, uplink_ports_per_spine=ports
    )
    topo = ClusterTopology(spec, FlowNetwork(), ecmp_seed=0)
    return PathRegistry(topo)


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1)),  # (rail, side)
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=100, deadline=None)
def test_registry_loads_stay_balanced(acquires):
    registry = build_registry()
    per_leaf: dict[tuple[int, int], int] = {}
    for rail, side in acquires:
        registry.acquire(rail, side)
        per_leaf[(rail, side)] = per_leaf.get((rail, side), 0) + 1
    # Invariant: on every leaf, uplink loads differ by at most 1 and sum
    # to the number of acquisitions from that leaf.
    for (rail, side), count in per_leaf.items():
        loads = [
            registry.load_of(link) for link in registry.topology.leaf_uplinks(rail, side)
        ]
        assert sum(loads) == count
        assert max(loads) - min(loads) <= 1


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1)),
        min_size=1,
        max_size=60,
    ),
    st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_registry_acquire_release_conserves(acquires, rng):
    registry = build_registry()
    held = []
    for rail, side in acquires:
        held.append((rail, registry.acquire(rail, side)))
        # Randomly release something we hold.
        if held and rng.random() < 0.4:
            index = rng.randrange(len(held))
            rail_r, choice = held.pop(index)
            registry.release(rail_r, choice)
    for rail, choice in held:
        registry.release(rail, choice)
    assert all(load == 0 for load in registry.link_load.values())


@given(st.integers(0, 3), st.integers(0, 1), st.integers(min_value=0, max_value=7))
@settings(max_examples=60, deadline=None)
def test_registry_never_hands_out_dead_links(rail, side, dead_index):
    registry = build_registry(spines=4, ports=2)
    uplinks = registry.topology.leaf_uplinks(rail, side)
    dead = uplinks[dead_index % len(uplinks)]
    registry.mark_dead(dead)
    for _ in range(3 * len(uplinks)):
        choice = registry.acquire(rail, side)
        chosen = registry.topology.leaf_up(rail, side, choice.spine, choice.up_port)
        assert chosen != dead
