"""Property-based tests (hypothesis) for C4P's registry, master and probing."""

from hypothesis import given, settings, strategies as st

from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest
from repro.core.c4p.master import C4PMaster
from repro.core.c4p.registry import PathRegistry
from repro.netsim.network import FlowNetwork


def build_registry(spines=4, ports=2):
    spec = ClusterSpec(
        num_nodes=4, spines_per_rail=spines, uplink_ports_per_spine=ports
    )
    topo = ClusterTopology(spec, FlowNetwork(), ecmp_seed=0)
    return PathRegistry(topo)


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1)),  # (rail, side)
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=100, deadline=None)
def test_registry_loads_stay_balanced(acquires):
    registry = build_registry()
    per_leaf: dict[tuple[int, int], int] = {}
    for rail, side in acquires:
        registry.acquire(rail, side)
        per_leaf[(rail, side)] = per_leaf.get((rail, side), 0) + 1
    # Invariant: on every leaf, uplink loads differ by at most 1 and sum
    # to the number of acquisitions from that leaf.
    for (rail, side), count in per_leaf.items():
        loads = [
            registry.load_of(link) for link in registry.topology.leaf_uplinks(rail, side)
        ]
        assert sum(loads) == count
        assert max(loads) - min(loads) <= 1


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1)),
        min_size=1,
        max_size=60,
    ),
    st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_registry_acquire_release_conserves(acquires, rng):
    registry = build_registry()
    held = []
    for rail, side in acquires:
        held.append((rail, registry.acquire(rail, side)))
        # Randomly release something we hold.
        if held and rng.random() < 0.4:
            index = rng.randrange(len(held))
            rail_r, choice = held.pop(index)
            registry.release(rail_r, choice)
    for rail, choice in held:
        registry.release(rail, choice)
    assert all(load == 0 for load in registry.link_load.values())


@given(st.integers(0, 3), st.integers(0, 1), st.integers(min_value=0, max_value=7))
@settings(max_examples=60, deadline=None)
def test_registry_never_hands_out_dead_links(rail, side, dead_index):
    registry = build_registry(spines=4, ports=2)
    uplinks = registry.topology.leaf_uplinks(rail, side)
    dead = uplinks[dead_index % len(uplinks)]
    registry.mark_dead(dead)
    for _ in range(3 * len(uplinks)):
        choice = registry.acquire(rail, side)
        chosen = registry.topology.leaf_up(rail, side, choice.spine, choice.up_port)
        assert chosen != dead


def build_master():
    spec = ClusterSpec(num_nodes=4, spines_per_rail=4, uplink_ports_per_spine=2)
    topo = ClusterTopology(spec, FlowNetwork(), ecmp_seed=0)
    return C4PMaster(topo, search_ports=False)


def _master_books(master):
    """Link loads and reverse index recomputed from the allocation table."""
    loads: dict[tuple, int] = {}
    qps: dict[tuple, set[int]] = {}
    for record in master._allocated.values():
        for link in master.registry.links_of(record.rail, record.alloc.choice):
            loads[link] = loads.get(link, 0) + 1
            qps.setdefault(link, set()).add(record.alloc.qp_num)
    return loads, qps


@given(
    st.lists(st.integers(0, 4), min_size=1, max_size=60),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_master_books_match_live_allocations(ops, rng):
    """Any interleaving of allocate/release/reallocate/fail keeps the
    registry's link_load exactly equal to the loads recomputed from the
    live allocation table, keeps the reverse index in lockstep, and never
    leaves a live allocation routed over a dead link."""
    master = build_master()
    live = []  # (request, allocations)
    failures = 0
    counter = 0
    for op in ops:
        if op <= 1 or not live:  # allocate
            counter += 1
            req = PathRequest(
                comm_id=f"c{counter}", job_id="j",
                src_node=counter % 4, src_nic=0,
                dst_node=(counter + 1) % 4, dst_nic=0, num_qps=2,
            )
            live.append((req, master.allocate(req)))
        elif op == 2:  # release
            req, allocs = live.pop(rng.randrange(len(live)))
            master.release(req, allocs)
        elif op == 3:  # reallocate one QP in place
            req, allocs = live[rng.randrange(len(live))]
            master.reallocate(req, allocs[rng.randrange(len(allocs))])
        elif failures < 2:  # fail a loaded link and drain it
            loaded = sorted(
                link for link in master._link_qps if master.qps_on_link(link)
            )
            if loaded:
                link = loaded[rng.randrange(len(loaded))]
                report = master.notify_link_failure(link, now=float(failures))
                # 8 uplinks per plane, at most 2 dead: never exhausted.
                assert report.stranded == ()
                failures += 1
        expected_loads, expected_qps = _master_books(master)
        assert {k: v for k, v in master.registry.link_load.items() if v} == expected_loads
        assert {
            link: set(qs) for link, qs in master._link_qps.items() if qs
        } == expected_qps
        assert all(v >= 0 for v in master.registry.link_load.values())
        for record in master._allocated.values():
            for link in master.registry.links_of(record.rail, record.alloc.choice):
                assert link not in master.registry.dead_links
