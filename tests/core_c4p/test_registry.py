"""Tests for the C4P path registry."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.core.c4p.registry import PathPoolExhausted, PathRegistry
from repro.netsim.network import FlowNetwork


@pytest.fixture
def registry():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=0)
    return PathRegistry(topo)


def test_acquire_preserves_plane_by_default(registry):
    choice = registry.acquire(rail=0, src_side=1)
    assert choice.src_side == 1
    assert choice.dst_side == 1


def test_acquire_counts_load(registry):
    choice = registry.acquire(0, 0)
    up = registry.topology.leaf_up(0, 0, choice.spine, choice.up_port)
    down = registry.topology.spine_down(0, choice.spine, choice.dst_side, choice.down_port)
    assert registry.load_of(up) == 1
    assert registry.load_of(down) == 1


def test_release_returns_load(registry):
    choice = registry.acquire(0, 0)
    registry.release(0, choice)
    up = registry.topology.leaf_up(0, 0, choice.spine, choice.up_port)
    assert registry.load_of(up) == 0


def test_double_release_detected(registry):
    choice = registry.acquire(0, 0)
    registry.release(0, choice)
    with pytest.raises(AssertionError):
        registry.release(0, choice)


def test_allocations_balance_across_uplinks(registry):
    spec = TESTBED_16_NODES
    fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
    for _ in range(fanout):
        registry.acquire(0, 0)
    loads = [
        registry.load_of(link) for link in registry.topology.leaf_uplinks(0, 0)
    ]
    assert max(loads) == 1  # perfectly balanced first wave
    for _ in range(fanout):
        registry.acquire(0, 0)
    loads = [
        registry.load_of(link) for link in registry.topology.leaf_uplinks(0, 0)
    ]
    assert max(loads) == 2


def test_dead_links_avoided(registry):
    dead = registry.topology.leaf_up(0, 0, 2, 1)
    registry.mark_dead(dead)
    spec = TESTBED_16_NODES
    fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
    for _ in range(3 * fanout):
        choice = registry.acquire(0, 0)
        assert (choice.spine, choice.up_port) != (2, 1)


def test_mark_alive_restores(registry):
    link = registry.topology.leaf_up(0, 0, 2, 1)
    registry.mark_dead(link)
    registry.mark_alive(link)
    assert registry.is_usable(link)


def test_all_dead_raises(registry):
    spec = TESTBED_16_NODES
    for spine in range(spec.spines_per_rail):
        for k in range(spec.uplink_ports_per_spine):
            registry.mark_dead(registry.topology.leaf_up(0, 0, spine, k))
    with pytest.raises(RuntimeError):
        registry.acquire(0, 0)


def test_sides_tracked_independently(registry):
    left = registry.acquire(0, 0)
    right = registry.acquire(0, 1)
    assert left.src_side == 0 and right.src_side == 1
    up_left = registry.topology.leaf_up(0, 0, left.spine, left.up_port)
    up_right = registry.topology.leaf_up(0, 1, right.spine, right.up_port)
    assert registry.load_of(up_left) == 1
    assert registry.load_of(up_right) == 1


def test_explicit_cross_plane_allowed_when_requested(registry):
    choice = registry.acquire(0, 0, dst_side=1)
    assert choice.dst_side == 1


def test_all_dead_raises_typed_error(registry):
    spec = TESTBED_16_NODES
    for spine in range(spec.spines_per_rail):
        for k in range(spec.uplink_ports_per_spine):
            registry.mark_dead(registry.topology.leaf_up(0, 0, spine, k))
    with pytest.raises(PathPoolExhausted):
        registry.acquire(0, 0)


def test_tie_break_rotates_over_equal_loads(registry):
    # Regression: with every load zero (acquire immediately released),
    # static tie-breaking would pin every choice to spine 0 port 0.  The
    # round-robin scan start must spread the first wave near-uniformly.
    spec = TESTBED_16_NODES
    fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
    up_hits: dict[tuple, int] = {}
    down_hits: dict[int, int] = {}
    for _ in range(fanout):
        choice = registry.acquire(0, 0)
        registry.release(0, choice)
        up_hits[(choice.spine, choice.up_port)] = (
            up_hits.get((choice.spine, choice.up_port), 0) + 1
        )
        down_hits[choice.down_port] = down_hits.get(choice.down_port, 0) + 1
    # Every uplink hit exactly once across one full rotation...
    assert len(up_hits) == fanout
    assert set(up_hits.values()) == {1}
    # ...and downlink ports cycle too instead of pinning to port 0.
    assert len(down_hits) == spec.uplink_ports_per_spine


def test_reinstate_restores_exact_route_load(registry):
    choice = registry.acquire(0, 0)
    registry.release(0, choice)
    registry.reinstate(0, choice)
    for link in registry.links_of(0, choice):
        assert registry.load_of(link) == 1


def test_links_of_names_both_tiers(registry):
    choice = registry.acquire(0, 1)
    up, down = registry.links_of(0, choice)
    assert up == registry.topology.leaf_up(0, 1, choice.spine, choice.up_port)
    assert down == registry.topology.spine_down(
        0, choice.spine, choice.dst_side, choice.down_port
    )
