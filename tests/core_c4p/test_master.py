"""Tests for the C4P master's allocation rules."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest
from repro.core.c4p.master import C4PMaster
from repro.netsim.network import FlowNetwork
from repro.netsim.routing import FiveTuple


def build(enforce_plane=True, search_ports=True):
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=3)
    return topo, C4PMaster(topo, enforce_plane=enforce_plane, search_ports=search_ports)


def request(src=0, dst=1, nic=0, qps=2, comm="c0"):
    return PathRequest(
        comm_id=comm, job_id="j", src_node=src, src_nic=nic,
        dst_node=dst, dst_nic=nic, num_qps=qps,
    )


def test_plane_rule_enforced():
    _topo, master = build()
    allocs = master.allocate(request(qps=4))
    for alloc in allocs:
        assert alloc.choice.src_side == alloc.choice.dst_side


def test_qps_split_across_ports():
    _topo, master = build()
    allocs = master.allocate(request(qps=2))
    assert {a.choice.src_side for a in allocs} == {0, 1}


def test_source_ports_actually_steer():
    # The authentic property: the returned port makes plain ECMP hashing
    # reproduce the planned route.
    topo, master = build()
    alloc = master.allocate(request())[0]
    choice = topo.ecmp_choice(
        0, 0, 1, 0, alloc.five_tuple, src_side=alloc.choice.src_side
    )
    assert choice == alloc.choice


def test_synthetic_ports_mode():
    _topo, master = build(search_ports=False)
    allocs = master.allocate(request(qps=4))
    assert len({a.src_port for a in allocs}) == 4


def test_balanced_across_spines():
    topo, master = build(search_ports=False)
    spine_counts = {}
    for i in range(64):
        for alloc in master.allocate(request(src=i % 16, dst=(i + 1) % 16, comm=f"c{i}")):
            key = (alloc.choice.src_side, alloc.choice.spine, alloc.choice.up_port)
            spine_counts[key] = spine_counts.get(key, 0) + 1
    assert max(spine_counts.values()) - min(spine_counts.values()) <= 1


def test_release_frees_load():
    topo, master = build(search_ports=False)
    req = request()
    allocs = master.allocate(req)
    loads_before = dict(master.registry.link_load)
    master.release(req, allocs)
    assert all(v == 0 for v in master.registry.link_load.values())
    assert any(v > 0 for v in loads_before.values())


def test_catalog_excludes_failed_links():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=3)
    dead = topo.leaf_up(0, 0, 4, 2)
    topo.network.fail_link(dead)
    master = C4PMaster(topo, search_ports=False)
    assert dead in master.registry.dead_links
    for i in range(128):
        alloc = master.allocate(request(comm=f"c{i}", qps=1))[0]
        assert (alloc.choice.spine, alloc.choice.up_port) != (4, 2) or alloc.choice.src_side != 0


def test_notify_link_failure():
    _topo, master = build(search_ports=False)
    link = master.topology.leaf_up(1, 0, 0, 0)
    master.notify_link_failure(link)
    assert link in master.registry.dead_links


def test_reallocate_moves_route():
    topo, master = build(search_ports=False)
    req = request()
    alloc = master.allocate(req)[0]
    old_choice = alloc.choice
    # Kill the allocated uplink, notify, reallocate.
    dead = topo.leaf_up(0, old_choice.src_side, old_choice.spine, old_choice.up_port)
    topo.network.fail_link(dead)
    master.notify_link_failure(dead)
    master.reallocate(req, alloc)
    assert (alloc.choice.spine, alloc.choice.up_port) != (
        old_choice.spine,
        old_choice.up_port,
    )
    assert alloc.choice.src_side == old_choice.src_side  # plane preserved
    for link_id in alloc.path:
        assert topo.network.link(link_id).is_up


def test_disabled_spines_excluded():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=3)
    for spine in (4, 5, 6, 7):
        topo.disable_spine(0, spine)
    master = C4PMaster(topo, search_ports=False)
    for i in range(32):
        alloc = master.allocate(request(comm=f"c{i}", qps=1))[0]
        assert alloc.choice.spine < 4
