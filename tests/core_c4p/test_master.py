"""Tests for the C4P master's allocation rules and fault handling."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES, ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest
from repro.core.c4p.health import LinkHealthState
from repro.core.c4p.master import C4PMaster
from repro.core.c4p.registry import PathPoolExhausted
from repro.netsim.network import FlowNetwork


def build(enforce_plane=True, search_ports=True):
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=3)
    return topo, C4PMaster(topo, enforce_plane=enforce_plane, search_ports=search_ports)


def request(src=0, dst=1, nic=0, qps=2, comm="c0"):
    return PathRequest(
        comm_id=comm, job_id="j", src_node=src, src_nic=nic,
        dst_node=dst, dst_nic=nic, num_qps=qps,
    )


def test_plane_rule_enforced():
    _topo, master = build()
    allocs = master.allocate(request(qps=4))
    for alloc in allocs:
        assert alloc.choice.src_side == alloc.choice.dst_side


def test_qps_split_across_ports():
    _topo, master = build()
    allocs = master.allocate(request(qps=2))
    assert {a.choice.src_side for a in allocs} == {0, 1}


def test_source_ports_actually_steer():
    # The authentic property: the returned port makes plain ECMP hashing
    # reproduce the planned route.
    topo, master = build()
    alloc = master.allocate(request())[0]
    choice = topo.ecmp_choice(
        0, 0, 1, 0, alloc.five_tuple, src_side=alloc.choice.src_side
    )
    assert choice == alloc.choice


def test_synthetic_ports_mode():
    _topo, master = build(search_ports=False)
    allocs = master.allocate(request(qps=4))
    assert len({a.src_port for a in allocs}) == 4


def test_balanced_across_spines():
    topo, master = build(search_ports=False)
    spine_counts = {}
    for i in range(64):
        for alloc in master.allocate(request(src=i % 16, dst=(i + 1) % 16, comm=f"c{i}")):
            key = (alloc.choice.src_side, alloc.choice.spine, alloc.choice.up_port)
            spine_counts[key] = spine_counts.get(key, 0) + 1
    assert max(spine_counts.values()) - min(spine_counts.values()) <= 1


def test_release_frees_load():
    topo, master = build(search_ports=False)
    req = request()
    allocs = master.allocate(req)
    loads_before = dict(master.registry.link_load)
    master.release(req, allocs)
    assert all(v == 0 for v in master.registry.link_load.values())
    assert any(v > 0 for v in loads_before.values())


def test_catalog_excludes_failed_links():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=3)
    dead = topo.leaf_up(0, 0, 4, 2)
    topo.network.fail_link(dead)
    master = C4PMaster(topo, search_ports=False)
    assert dead in master.registry.dead_links
    for i in range(128):
        alloc = master.allocate(request(comm=f"c{i}", qps=1))[0]
        assert (alloc.choice.spine, alloc.choice.up_port) != (4, 2) or alloc.choice.src_side != 0


def test_notify_link_failure():
    _topo, master = build(search_ports=False)
    link = master.topology.leaf_up(1, 0, 0, 0)
    master.notify_link_failure(link)
    assert link in master.registry.dead_links


def test_reallocate_moves_route():
    topo, master = build(search_ports=False)
    req = request()
    alloc = master.allocate(req)[0]
    old_choice = alloc.choice
    # Kill the allocated uplink, notify, reallocate.
    dead = topo.leaf_up(0, old_choice.src_side, old_choice.spine, old_choice.up_port)
    topo.network.fail_link(dead)
    master.notify_link_failure(dead)
    master.reallocate(req, alloc)
    assert (alloc.choice.spine, alloc.choice.up_port) != (
        old_choice.spine,
        old_choice.up_port,
    )
    assert alloc.choice.src_side == old_choice.src_side  # plane preserved
    for link_id in alloc.path:
        assert topo.network.link(link_id).is_up


def test_disabled_spines_excluded():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=3)
    for spine in (4, 5, 6, 7):
        topo.disable_spine(0, spine)
    master = C4PMaster(topo, search_ports=False)
    for i in range(32):
        alloc = master.allocate(request(comm=f"c{i}", qps=1))[0]
        assert alloc.choice.spine < 4


# ----------------------------------------------------------------------
# Runtime fault tolerance: reverse index, drain-and-migrate, re-probe
# ----------------------------------------------------------------------
def books_of(master):
    """Expected link loads recomputed from the live allocation table."""
    expected = {}
    for record in master._allocated.values():
        for link in master.registry.links_of(record.rail, record.alloc.choice):
            expected[link] = expected.get(link, 0) + 1
    return expected


def test_reverse_index_tracks_allocations():
    _topo, master = build(search_ports=False)
    req = request()
    allocs = master.allocate(req)
    for alloc in allocs:
        rail = master.topology.rail_of(req.src_nic)
        for link in master.registry.links_of(rail, alloc.choice):
            assert alloc.qp_num in master.qps_on_link(link)
    master.release(req, allocs)
    for alloc in allocs:
        rail = master.topology.rail_of(req.src_nic)
        for link in master.registry.links_of(rail, alloc.choice):
            assert master.qps_on_link(link) == ()


def test_reallocate_rolls_back_on_exhaustion():
    spec = TESTBED_16_NODES
    _topo, master = build(search_ports=False)
    req = request(qps=1)
    alloc = master.allocate(req)[0]
    # Kill every uplink of the QP's plane: no healthy route remains.
    for spine in range(spec.spines_per_rail):
        for k in range(spec.uplink_ports_per_spine):
            master.registry.mark_dead(master.topology.leaf_up(0, 0, spine, k))
    loads_before = dict(master.registry.link_load)
    choice_before = alloc.choice
    with pytest.raises(PathPoolExhausted):
        master.reallocate(req, alloc)
    # Crash-safe: books and allocation read exactly as before the attempt.
    assert master.registry.link_load == loads_before
    assert alloc.choice == choice_before
    assert master.allocation_count() == 1
    rail = master.topology.rail_of(req.src_nic)
    for link in master.registry.links_of(rail, alloc.choice):
        assert alloc.qp_num in master.qps_on_link(link)
    assert {k: v for k, v in master.registry.link_load.items() if v} == books_of(master)


def test_drain_migrates_every_qp_and_resets_weights():
    _topo, master = build(search_ports=False)
    requests = []
    for i in range(48):
        req = request(src=i % 16, dst=(i + 1) % 16, comm=f"c{i}")
        requests.append((req, master.allocate(req)))
    # Pick a loaded uplink and skew some weights so the reset is visible.
    victim_alloc = requests[0][1][0]
    rail = 0
    link = master.registry.links_of(rail, victim_alloc.choice)[0]
    victims = master.qps_on_link(link)
    assert victims
    victim_alloc.weight = 3.0
    migrated_seen = []
    master.migration_listener = lambda req, alloc: migrated_seen.append(alloc.qp_num)
    master.topology.network.fail_link(link)
    report = master.notify_link_failure(link)
    assert report.stranded == ()
    assert {a.qp_num for a in report.migrated} == set(victims)
    assert master.qps_on_link(link) == ()
    assert master.residual_qps_on_dead_links() == ()
    assert all(a.weight == 1.0 for a in report.migrated)
    assert sorted(migrated_seen) == sorted(victims)
    assert {k: v for k, v in master.registry.link_load.items() if v} == books_of(master)


def test_notify_without_drain_leaves_qps_in_place():
    _topo, master = build(search_ports=False)
    req = request(qps=1)
    alloc = master.allocate(req)[0]
    link = master.registry.links_of(0, alloc.choice)[0]
    report = master.notify_link_failure(link, drain=False)
    assert report.migrated == () and report.stranded == ()
    assert alloc.qp_num in master.qps_on_link(link)
    assert link in master.registry.dead_links


def test_maintenance_detects_silent_failure_and_drains():
    topo, master = build(search_ports=False)
    req = request(qps=1)
    alloc = master.allocate(req)[0]
    link = master.registry.links_of(0, alloc.choice)[0]
    topo.network.fail_link(link)  # no notification reaches the master
    report = master.maintenance(now=10.0)
    assert link in report.newly_dead
    assert report.migrated_qps == 1
    assert master.qps_on_link(link) == ()
    for link_id in alloc.path:
        assert topo.network.link(link_id).is_up


def test_maintenance_readmits_link_after_probation():
    _topo, master = build(search_ports=False)
    link = master.topology.leaf_up(0, 0, 2, 1)
    # False accusation: the link is physically fine.
    master.notify_link_failure(link, now=0.0)
    assert link in master.registry.dead_links
    # Probes during the 30 s hold-down are ignored.
    master.maintenance(now=10.0)
    assert link in master.registry.dead_links
    # After the hold-down, three consecutive good probes readmit it.
    master.maintenance(now=35.0)
    master.maintenance(now=36.0)
    report = master.maintenance(now=37.0)
    assert link in report.recovered
    assert link not in master.registry.dead_links
    assert master.health.state_of(link) is LinkHealthState.HEALTHY


def test_connection_anomaly_strikes_quarantine_shared_link():
    # One spine, one port: every QP of a plane shares the same two
    # fabric links, so two distinct accused connections implicate them.
    spec = ClusterSpec(num_nodes=4, spines_per_rail=1, uplink_ports_per_spine=1)
    topo = ClusterTopology(spec, FlowNetwork(), ecmp_seed=1)
    master = C4PMaster(topo, search_ports=False, link_strike_threshold=2)
    master.allocate(request(src=0, dst=1, qps=1, comm="a"))
    master.allocate(request(src=2, dst=3, qps=1, comm="b"))
    shared = topo.leaf_up(0, 0, 0, 0)
    # First accusation (twice, from the same connection): below threshold.
    assert master.notify_connection_anomaly((0, 0), (1, 0), now=1.0) == ()
    assert master.notify_connection_anomaly((0, 0), (1, 0), now=2.0) == ()
    assert shared not in master.registry.dead_links
    # A second distinct connection implicating the same link: quarantine.
    quarantined = master.notify_connection_anomaly((2, 0), (3, 0), now=3.0)
    assert shared in quarantined
    assert shared in master.registry.dead_links
