"""Tests for path probing and source-port search."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology, PathChoice
from repro.core.c4p.probing import PathProber
from repro.netsim.network import FlowNetwork
from repro.netsim.routing import FiveTuple


@pytest.fixture
def prober():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=4)
    return PathProber(topo)


def test_find_source_port_steers_both_stages(prober):
    spec = TESTBED_16_NODES
    choice = PathChoice(src_side=0, spine=5, up_port=2, dst_side=0, down_port=3)
    port = prober.find_source_port("10.0.0.1", "10.0.0.2", rail=1, choice=choice)
    hasher = prober.topology.ecmp
    ft = FiveTuple(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=port, dst_port=4791)
    up_fanout = spec.spines_per_rail * spec.uplink_ports_per_spine
    up = hasher.choose(ft, up_fanout, stage="up:1:0")
    assert divmod(up, spec.uplink_ports_per_spine) == (5, 2)
    down = hasher.choose(ft, 2 * spec.uplink_ports_per_spine, stage="down:1:5")
    assert divmod(down, spec.uplink_ports_per_spine) == (0, 3)


def test_find_source_port_tiny_range_fails(prober):
    choice = PathChoice(0, 0, 0, 0, 0)
    with pytest.raises(LookupError):
        prober.find_source_port("a", "b", 0, choice, port_range=range(50000, 50002))


def test_probe_route_healthy(prober):
    choice = PathChoice(0, 0, 0, 0, 0)
    assert prober.probe_route(0, choice)


def test_probe_route_detects_dead_uplink(prober):
    choice = PathChoice(0, 3, 1, 0, 0)
    prober.topology.network.fail_link(prober.topology.leaf_up(0, 0, 3, 1))
    assert not prober.probe_route(0, choice)


def test_probe_route_detects_dead_downlink(prober):
    choice = PathChoice(0, 3, 0, 1, 2)
    prober.topology.network.fail_link(prober.topology.spine_down(0, 3, 1, 2))
    assert not prober.probe_route(0, choice)


def test_full_mesh_counts(prober):
    spec = TESTBED_16_NODES
    results = prober.full_mesh(0)
    expected = 2 * spec.spines_per_rail * spec.uplink_ports_per_spine * 2 * spec.uplink_ports_per_spine
    assert len(results) == expected
    assert all(r.healthy for r in results)


def test_full_mesh_flags_failed_links(prober):
    prober.topology.network.fail_link(prober.topology.leaf_up(0, 0, 2, 0))
    results = prober.full_mesh(0)
    unhealthy = [r for r in results if not r.healthy]
    assert unhealthy
    assert all(
        r.choice.src_side == 0 and r.choice.spine == 2 and r.choice.up_port == 0
        for r in unhealthy
    )


def test_full_mesh_with_port_search(prober):
    results = prober.full_mesh(0, find_ports=True)
    healthy = [r for r in results if r.healthy]
    assert all(49152 <= r.src_port < 65536 for r in healthy)


def test_reprobe_reports_per_link_state(prober):
    topo = prober.topology
    dead = topo.leaf_up(0, 0, 2, 0)
    alive_up = topo.leaf_up(0, 1, 3, 1)
    alive_down = topo.spine_down(0, 4, 0, 2)
    topo.network.fail_link(dead)
    verdict = prober.reprobe([dead, alive_up, alive_down])
    assert verdict == {dead: False, alive_up: True, alive_down: True}
    # Restoring the link flips the next probe back to healthy.
    topo.network.restore_link(dead)
    assert prober.reprobe([dead]) == {dead: True}


def test_reprobe_empty_is_noop(prober):
    assert prober.reprobe([]) == {}
