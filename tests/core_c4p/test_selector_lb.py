"""Tests for the C4P selector and the dynamic load balancer."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext
from repro.collective.placement import contiguous_ranks
from repro.core.c4p.load_balance import DynamicLoadBalancer, LoadBalancerConfig
from repro.core.c4p.master import C4PMaster
from repro.core.c4p.selector import C4PSelector
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GIB


def build(dynamic=True, seed=5):
    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=seed)
    master = C4PMaster(topo, search_ports=False)
    selector = C4PSelector(master, dynamic=dynamic)
    ctx = CollectiveContext(topo, selector=selector)
    return net, topo, master, ctx


def test_c4p_reaches_nvlink_cap():
    net, _topo, _master, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(8), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert handle.busbw_per_nic_gbps == pytest.approx(362.0, rel=0.01)


def test_dynamic_reroute_on_failure():
    net, topo, master, ctx = build(dynamic=True)
    comm = ctx.communicator(contiguous_ranks(range(8), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 100 * GIB)

    def kill():
        # Kill every uplink currently used on rail 0 side 0 spine 0.
        net.fail_link(topo.leaf_up(0, 0, 0, 0))

    net.schedule(0.05, kill)
    net.run()
    assert handle.done
    assert not net.stalled_flows()


def test_static_mode_falls_back_to_ecmp():
    net, topo, master, ctx = build(dynamic=False)
    comm = ctx.communicator(contiguous_ranks(range(8), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 100 * GIB)
    net.schedule(0.05, lambda: net.fail_link(topo.leaf_up(0, 0, 0, 0)))
    net.run()
    assert handle.done  # fabric ECMP rerouted the displaced flows


def test_failure_notifies_master_in_both_modes():
    for dynamic in (True, False):
        net, topo, master, ctx = build(dynamic=dynamic)
        comm = ctx.communicator(contiguous_ranks(range(4), 8))
        ctx.run_op(comm, OpType.ALLREDUCE, 100 * GIB)
        link = topo.leaf_up(0, 0, 0, 0)
        net.schedule(0.01, lambda l=link: net.fail_link(l))
        net.run()
        assert link in master.registry.dead_links


def test_load_balancer_requires_context():
    with pytest.raises(ValueError):
        DynamicLoadBalancer([])


def test_load_balancer_shifts_weights():
    net, topo, _master, ctx = build()
    # Degrade one physical port so its QP measures a lower rate.
    topo.set_port_scale(0, 0, 0, 0.25)
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    balancer = DynamicLoadBalancer([ctx], LoadBalancerConfig(interval=0.005))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run(until=1.0)
    balancer.start()
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    # The balancer timer keeps the loop alive, so run with a bound.
    net.run(until=2.0)
    balancer.stop()
    degraded_conns = [
        c for c in ctx.connections if c.key == (0, 0, 1, 0)
    ]
    assert degraded_conns
    conn = degraded_conns[0]
    weights = {a.choice.src_side: a.weight for a in conn.allocations}
    assert weights[1] > weights[0]  # healthy side carries more load
    assert balancer.adjustments > 0


def test_balancer_hysteresis_leaves_balanced_alone():
    net, _topo, _master, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    balancer = DynamicLoadBalancer([ctx], LoadBalancerConfig(interval=0.005))
    for conn in ctx.connections:
        assert not balancer.rebalance_connection(conn)


def test_balancer_weight_clamps():
    net, topo, _master, ctx = build()
    topo.set_port_scale(0, 0, 0, 0.01)
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    config = LoadBalancerConfig(min_weight=0.1, max_weight=4.0)
    balancer = DynamicLoadBalancer([ctx], config)
    for conn in ctx.connections:
        balancer.rebalance_connection(conn)
        for alloc in conn.allocations:
            assert 0.1 <= alloc.weight <= 4.0
