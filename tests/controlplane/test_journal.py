"""Tests for the journal store: write-ahead order, fencing, compaction."""

import pytest

from repro.controlplane import FencedOut, JournalStore, jsonable, state_digest
from repro.obs.metrics import MetricsRegistry


def store():
    return JournalStore(metrics=MetricsRegistry())


def test_append_assigns_monotonic_seq():
    s = store()
    epoch = s.open_epoch()
    first = s.append("op", {"x": 1}, epoch)
    second = s.append("op", {"x": 2}, epoch)
    assert (first.seq, second.seq) == (0, 1)
    assert first.epoch == second.epoch == epoch


def test_stale_epoch_is_fenced():
    s = store()
    old = s.open_epoch()
    s.open_epoch()  # a successor claimed writership
    with pytest.raises(FencedOut):
        s.append("op", {}, old)
    with pytest.raises(FencedOut):
        s.snapshot({}, old)
    # The current writer is unaffected.
    s.append("op", {}, s.epoch)


def test_entries_after_uses_absolute_seq_across_compaction():
    s = store()
    epoch = s.open_epoch()
    for i in range(5):
        s.append("op", {"i": i}, epoch)
    s.snapshot({"n": 5}, epoch)
    for i in range(5, 8):
        s.append("op", {"i": i}, epoch)
    assert s.compact() == 5
    snap = s.latest_snapshot()
    assert [e.payload["i"] for e in s.entries_after(snap.seq)] == [5, 6, 7]
    # Sequence numbers keep counting after compaction — replay positions
    # stay stable even though the prefix storage is gone.
    assert s.append("op", {"i": 8}, epoch).seq == 8


def test_compact_without_snapshot_is_noop():
    s = store()
    epoch = s.open_epoch()
    s.append("op", {}, epoch)
    assert s.compact() == 0
    assert len(s.entries) == 1


def test_latest_snapshot_none_before_first():
    assert store().latest_snapshot() is None


def test_state_digest_is_canonical():
    # Tuples and lists encode identically; key order is irrelevant.
    assert state_digest({"a": (1, 2)}) == state_digest({"a": [1, 2]})
    assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})
    assert state_digest({"a": 1}) != state_digest({"a": 2})


def test_jsonable_converts_nested_tuples():
    assert jsonable({"k": (1, (2, 3))}) == {"k": [1, [2, 3]]}
