"""Tests for the journaled, fenced, recoverable C4D control plane."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import CommunicatorRecord, OpLaunchRecord
from repro.controlplane import C4DControlPlane, JournalStore, LeaseTable
from repro.core.c4d.detectors import DetectorConfig
from repro.netsim.network import FlowNetwork
from repro.obs.metrics import MetricsRegistry

RANKS = tuple(RankLocation(i, 0) for i in range(4))


def build_plane(store, leases, metrics, executed=None, **kwargs):
    # Each incarnation gets a fresh topology: physical node state is not
    # journaled (isolations are never re-executed by replay).
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=0)
    sink = executed if executed is not None else []

    def listener(action, coverage):
        sink.append((action, coverage))

    return C4DControlPlane(
        topo,
        backup_nodes=[14, 15],
        store=store,
        leases=leases,
        detector_config=DetectorConfig(hang_timeout=30.0),
        action_listener=listener,
        metrics=metrics,
        **kwargs,
    )


def feed_hang(plane, comm_id, now):
    """A communicator where rank 3 never launches: a NONCOMM_HANG."""
    plane.ingest_communicator(CommunicatorRecord(comm_id, 4, RANKS), now=now)
    for rank in range(3):
        plane.ingest_launch(
            OpLaunchRecord(comm_id, 0, OpType.ALLREDUCE, rank, RANKS[rank], now)
        )


@pytest.fixture
def env():
    metrics = MetricsRegistry()
    store = JournalStore(metrics=metrics)
    leases = LeaseTable(lease_seconds=60.0, metrics=metrics)
    for node in range(4):
        leases.register(node, 0.0)
    return store, leases, metrics


def test_evaluate_executes_and_journals(env):
    store, leases, metrics = env
    executed = []
    plane = build_plane(store, leases, metrics, executed=executed)
    feed_hang(plane, "c", 0.0)
    for node in range(4):
        leases.heartbeat(node, 20.0)  # keep coverage above the degraded gate
    fresh = plane.evaluate(60.0)
    assert len(fresh) == 1
    assert len(executed) == 1
    action, coverage = executed[0]
    assert action.isolated_nodes == (3,)
    # Ingestions are journaled write-ahead, the pass with its outcome.
    kinds = [entry.kind for entry in store.entries]
    assert kinds == ["communicator", "launch", "launch", "launch", "evaluate"]
    evaluate_entry = store.entries[-1]
    assert evaluate_entry.payload["coverage"] == coverage
    assert len(evaluate_entry.payload["actions"]) == 1


def test_cold_restart_replays_to_identical_digest(env):
    store, leases, metrics = env
    executed = []
    plane = build_plane(store, leases, metrics, executed=executed)
    feed_hang(plane, "c", 0.0)
    for node in range(4):
        leases.heartbeat(node, 20.0)
    plane.evaluate(60.0)
    assert plane.snapshot()
    feed_hang(plane, "c2", 61.0)
    plane.evaluate(70.0)
    digest = plane.state_digest()

    relaunched = []
    successor = build_plane(store, leases, metrics, executed=relaunched, active=False)
    info = successor.recover(now=80.0)
    assert info["digest"] == digest
    assert successor.state_digest() == digest
    # Replay re-derives bookkeeping only: no physical re-execution.
    assert relaunched == []
    assert successor.recoveries == 1
    assert successor.failovers == 0  # a cold restart is not a failover
    # Snapshot bounded the replay to the post-snapshot suffix.
    snap = store.latest_snapshot()
    assert info["entries_replayed"] == len(store.entries_after(snap.seq))


def test_standby_promotion_counts_failover(env):
    store, leases, metrics = env
    plane = build_plane(store, leases, metrics)
    feed_hang(plane, "c", 0.0)
    standby = build_plane(store, leases, metrics, active=False, standby=True)
    standby.recover(now=10.0)
    assert standby.failovers == 1
    assert standby.recoveries == 1


def test_stale_plane_demotes_silently(env):
    store, leases, metrics = env
    plane = build_plane(store, leases, metrics)
    feed_hang(plane, "c", 0.0)
    successor = build_plane(store, leases, metrics, active=False)
    successor.recover(now=10.0)

    entries_before = len(store.entries)
    # The stale plane's writes are rejected without raising: ingestion
    # paths are called from agent callbacks that must not explode.
    plane.ingest_communicator(CommunicatorRecord("late", 4, RANKS), now=11.0)
    assert plane.evaluate(12.0) == []
    assert plane.snapshot() is False
    assert len(store.entries) == entries_before
    assert plane.active is False
    assert plane.stale_rejections >= 3


def test_degraded_mode_suppresses_under_blackout(env):
    store, leases, metrics = env
    executed = []
    plane = build_plane(store, leases, metrics, executed=executed)
    feed_hang(plane, "c", 100.0)
    # Only node 0 still beats; 3 of 4 leases expire -> coverage 0.25,
    # below the 0.6 gate.
    leases.heartbeat(0, 130.0)
    fresh = plane.evaluate(150.0)
    assert fresh == []
    assert executed == []
    assert plane.master.degraded_anomalies
    assert plane.master.degraded_anomalies[-1].evidence["degraded"] is True
