"""Tests for agent heartbeat leases and the derived coverage view."""

import pytest

from repro.controlplane import LeaseTable
from repro.obs.metrics import MetricsRegistry


def table(lease_seconds=30.0):
    return LeaseTable(lease_seconds=lease_seconds, metrics=MetricsRegistry())


def test_register_and_expiry():
    t = table()
    t.register(0, 0.0)
    t.register(1, 0.0)
    assert t.live(10.0) == [0, 1]
    assert t.blind_nodes(10.0) == []
    # Expiry is inclusive at now >= expiry.
    assert t.live(30.0) == []
    assert t.blind_nodes(30.0) == [0, 1]


def test_heartbeat_renews_and_auto_registers():
    t = table()
    t.register(0, 0.0)
    t.heartbeat(0, 20.0)
    assert t.live(40.0) == [0]
    # A heartbeat from an unknown node is a registration — the recovery
    # path after a master restart needs no explicit handshake.
    t.heartbeat(7, 40.0)
    assert 7 in t.registered()
    assert 7 in t.live(41.0)


def test_coverage_fraction():
    t = table()
    assert t.coverage(0.0) == 1.0  # vacuously covered with no agents
    for node in range(4):
        t.register(node, 0.0)
    t.heartbeat(0, 25.0)
    assert t.coverage(40.0) == pytest.approx(0.25)
    assert t.blind_nodes(40.0) == [1, 2, 3]


def test_deregister_drops_lease():
    t = table()
    t.register(0, 0.0)
    t.deregister(0)
    assert t.registered() == []
    t.deregister(0)  # idempotent


def test_rejects_nonpositive_lease():
    with pytest.raises(ValueError):
        LeaseTable(lease_seconds=0.0, metrics=MetricsRegistry())
