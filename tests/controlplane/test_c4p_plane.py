"""Tests for the journaled, fenced, recoverable C4P master."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest
from repro.controlplane import FencedOut, ResilientC4PMaster
from repro.netsim.network import FlowNetwork
from repro.obs.metrics import MetricsRegistry


def topo():
    return ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=1)


def request(comm="comm0", src=0, dst=4, num_qps=4):
    return PathRequest(
        comm, "job0", src_node=src, src_nic=0, dst_node=dst, dst_nic=0, num_qps=num_qps
    )


def exercised_master(metrics):
    """A master with allocations, a release, a failure, and maintenance."""
    master = ResilientC4PMaster(topo(), metrics=metrics)
    allocs = master.allocate(request())
    extra = master.allocate(request(src=1, dst=5, num_qps=2))
    master.release(request(src=1, dst=5, num_qps=2), extra[:1])
    master.notify_link_failure(allocs[0].path[0], now=10.0)
    master.snapshot()
    master.notify_connection_anomaly((0, 0), (4, 0), now=20.0)
    master.maintenance(now=30.0)
    return master


def recovery_instance(master, metrics):
    return ResilientC4PMaster(
        topo(), store=master.store, active=False, refresh_on_init=False, metrics=metrics
    )


def test_recovery_replays_to_identical_digest():
    metrics = MetricsRegistry()
    master = exercised_master(metrics)
    digest = master.state_digest()
    successor = recovery_instance(master, metrics)
    info = successor.recover(now=40.0)
    assert info["digest"] == digest
    # The mid-history snapshot bounded replay to the suffix.
    snap = master.store.latest_snapshot()
    assert info["entries_replayed"] == len(master.store.entries_after(snap.seq))
    assert successor.recoveries == 1


def test_stale_master_is_fenced():
    metrics = MetricsRegistry()
    master = exercised_master(metrics)
    successor = recovery_instance(master, metrics)
    successor.recover(now=40.0)
    # A zombie C4P master may neither allocate nor strike links.
    with pytest.raises(FencedOut):
        master.allocate(request(comm="comm1", src=2, dst=6))
    with pytest.raises(FencedOut):
        master.notify_link_failure(("x", "y"), now=50.0)
    assert master.active is False
    assert master.stale_rejections == 2


def test_recovered_master_allocates_fresh_qp_numbers():
    metrics = MetricsRegistry()
    master = exercised_master(metrics)
    replayed_qps = set(master._allocated)
    successor = recovery_instance(master, metrics)
    successor.recover(now=40.0)
    assert set(successor._allocated) == replayed_qps
    fresh = successor.allocate(request(comm="comm1", src=2, dst=6, num_qps=2))
    # The global QP counter survives the journal round-trip: new
    # allocations never collide with replayed ones.
    assert not replayed_qps.intersection(a.qp_num for a in fresh)


def test_compound_operations_journal_one_entry_per_cause():
    metrics = MetricsRegistry()
    master = ResilientC4PMaster(topo(), metrics=metrics)
    master.allocate(request())
    before = [e.kind for e in master.store.entries]
    master.notify_connection_anomaly((0, 0), (4, 0), now=5.0)
    master.maintenance(now=6.0)
    after = [e.kind for e in master.store.entries]
    # Nested quarantines/drains inside the compound ops journal nothing
    # of their own — replay re-derives them from the single cause entry.
    assert after == before + ["connection_anomaly", "maintenance"]
