"""Tests for the closed-loop recovery orchestrator (Fig. 4)."""

import pytest

from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.steering import SteeringConfig
from repro.training.job import JobSpec
from repro.training.memory_checkpoint import InMemoryCheckpointer
from repro.training.models import GPT_22B
from repro.training.parallelism import ParallelismPlan
from repro.training.recovery import RecoveryOrchestrator
from repro.training.scheduler import ClusterScheduler
from repro.workloads.generator import build_cluster

SPEC = JobSpec("train", GPT_22B, ParallelismPlan(tp=8, dp=4), global_batch=64)


def build_orchestrator(checkpoint_interval=3):
    scenario = build_cluster(ecmp_seed=2)
    scheduler = ClusterScheduler(scenario.topology, backup_ratio=1 / 16)
    orchestrator = RecoveryOrchestrator(
        scenario.topology,
        scheduler,
        SPEC,
        detector_config=DetectorConfig(hang_timeout=20.0),
        steering_config=SteeringConfig(isolation_seconds=30, restart_seconds=30),
        checkpointer=InMemoryCheckpointer(interval_steps=checkpoint_interval, save_seconds=0.1),
        evaluation_interval=5.0,
    )
    return scenario, scheduler, orchestrator


def test_run_without_faults_completes():
    scenario, _scheduler, orchestrator = build_orchestrator()
    report = orchestrator.start(num_nodes=4, total_steps=6)
    scenario.network.run(until=200.0)
    assert report.finished
    assert report.events == []


def test_crash_is_detected_isolated_and_survived():
    scenario, scheduler, orchestrator = build_orchestrator()
    report = orchestrator.start(num_nodes=4, total_steps=20)
    scenario.network.schedule(8.0, lambda: orchestrator.crash_node(2))
    scenario.network.run(until=500.0)

    assert report.finished
    assert len(report.events) == 1
    event = report.events[0]
    # Detection within hang timeout + evaluation cadence ("tens of
    # seconds", not PyTorch's 30 minutes).
    assert event.detection_seconds <= 30.0
    assert event.isolated_nodes == (2,)
    assert event.replacement_nodes == (15,)  # the testbed's backup node
    # Post-checkpoint loss bounded by the snapshot cadence.
    assert event.lost_steps <= 3
    # The cluster state reflects the swap.
    assert not scenario.topology.node(2).is_schedulable
    allocation = scheduler.allocation_of("job")
    assert 2 not in allocation.nodes and 15 in allocation.nodes


def test_restart_resumes_from_snapshot():
    scenario, _scheduler, orchestrator = build_orchestrator(checkpoint_interval=2)
    report = orchestrator.start(num_nodes=4, total_steps=12)
    scenario.network.schedule(16.0, lambda: orchestrator.crash_node(1))
    scenario.network.run(until=500.0)
    assert report.finished
    event = report.events[0]
    assert event.restored_step > 0  # a snapshot existed before the crash
    assert event.lost_steps <= 2


def test_double_start_rejected():
    scenario, _scheduler, orchestrator = build_orchestrator()
    orchestrator.start(num_nodes=4, total_steps=2)
    with pytest.raises(RuntimeError):
        orchestrator.start(num_nodes=4, total_steps=2)


def test_crash_without_job_rejected():
    _scenario, _scheduler, orchestrator = build_orchestrator()
    with pytest.raises(RuntimeError):
        orchestrator.crash_node(0)


def test_second_crash_uses_no_more_backups_gracefully():
    # Only one backup node exists; a second crash shrinks the job.
    scenario, scheduler, orchestrator = build_orchestrator()
    report = orchestrator.start(num_nodes=4, total_steps=30)
    scenario.network.schedule(8.0, lambda: orchestrator.crash_node(2))
    scenario.network.schedule(150.0, lambda: orchestrator.crash_node(0))
    scenario.network.run(until=900.0)
    assert len(report.events) == 2
    second = report.events[1]
    assert second.isolated_nodes == (0,)
    assert second.replacement_nodes == ()  # pool exhausted
    allocation = scheduler.allocation_of("job")
    assert len(allocation.nodes) == 3
