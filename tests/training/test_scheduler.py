"""Tests for the cluster scheduler and backup-pool provisioning."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES, ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.netsim.network import FlowNetwork
from repro.training.scheduler import ClusterScheduler, SchedulingError


def build(num_nodes=16, backup_ratio=1 / 16):
    spec = TESTBED_16_NODES if num_nodes == 16 else ClusterSpec(num_nodes=num_nodes)
    topo = ClusterTopology(spec, FlowNetwork(), ecmp_seed=0)
    return topo, ClusterScheduler(topo, backup_ratio=backup_ratio)


def test_paper_backup_provisioning():
    # 136-node pool -> 128 active + 8 backups at the paper's 1/16 ratio.
    topo, scheduler = build(num_nodes=16, backup_ratio=1 / 16)
    assert len(scheduler.backup_pool) == 1
    assert scheduler.active_capacity == 15


def test_zero_backup_ratio():
    _topo, scheduler = build(backup_ratio=0.0)
    assert scheduler.backup_pool == []
    assert scheduler.active_capacity == 16


def test_invalid_ratio():
    topo, _ = build()
    with pytest.raises(ValueError):
        ClusterScheduler(topo, backup_ratio=1.0)


def test_allocate_contiguous():
    _topo, scheduler = build()
    allocation = scheduler.allocate("job", 4)
    assert allocation.nodes == (0, 1, 2, 3)


def test_allocations_disjoint():
    _topo, scheduler = build()
    a = scheduler.allocate("a", 4)
    b = scheduler.allocate("b", 4)
    assert not set(a.nodes) & set(b.nodes)


def test_duplicate_job_rejected():
    _topo, scheduler = build()
    scheduler.allocate("job", 2)
    with pytest.raises(SchedulingError):
        scheduler.allocate("job", 2)


def test_capacity_exhaustion():
    _topo, scheduler = build()
    scheduler.allocate("big", 15)
    with pytest.raises(SchedulingError):
        scheduler.allocate("more", 1)


def test_release_returns_nodes():
    _topo, scheduler = build()
    scheduler.allocate("job", 4)
    scheduler.release("job")
    assert scheduler.active_capacity == 15
    assert scheduler.allocation_of("job") is None


def test_release_unknown_job():
    _topo, scheduler = build()
    with pytest.raises(SchedulingError):
        scheduler.release("ghost")


def test_allocation_skips_isolated_nodes():
    topo, scheduler = build()
    topo.node(1).isolate()
    allocation = scheduler.allocate("job", 4)
    assert 1 not in allocation.nodes
    # Falls back to non-contiguous-from-zero: next contiguous run is 2-5.
    assert allocation.nodes == (2, 3, 4, 5)


def test_fragmented_fallback():
    topo, scheduler = build()
    for node in (1, 3, 5, 7, 9, 11, 13):
        topo.node(node).isolate()
    allocation = scheduler.allocate("job", 4)
    assert len(allocation.nodes) == 4  # lowest free even nodes


def test_replace_node_uses_backup():
    topo, scheduler = build()
    allocation = scheduler.allocate("job", 4)
    failed = allocation.nodes[2]
    topo.node(failed).isolate()
    replacement = scheduler.replace_node("job", failed)
    assert replacement == 15  # the testbed's single backup
    new_allocation = scheduler.allocation_of("job")
    assert failed not in new_allocation.nodes
    assert replacement in new_allocation.nodes
    assert len(new_allocation.nodes) == 4


def test_replace_node_pool_empty_shrinks():
    topo, scheduler = build(backup_ratio=0.0)
    allocation = scheduler.allocate("job", 4)
    failed = allocation.nodes[0]
    replacement = scheduler.replace_node("job", failed)
    assert replacement is None
    assert len(scheduler.allocation_of("job").nodes) == 3


def test_replace_node_validates_membership():
    _topo, scheduler = build()
    scheduler.allocate("job", 2)
    with pytest.raises(SchedulingError):
        scheduler.replace_node("job", 10)


def test_return_repaired_restores_and_pools():
    topo, scheduler = build()
    allocation = scheduler.allocate("job", 4)
    failed = allocation.nodes[0]
    topo.node(failed).isolate()
    scheduler.replace_node("job", failed)
    scheduler.return_repaired(failed)
    assert topo.node(failed).is_schedulable
    assert failed in scheduler.backup_pool


def test_utilization():
    _topo, scheduler = build()
    assert scheduler.utilization() == 0.0
    scheduler.allocate("job", 5)
    assert scheduler.utilization() == pytest.approx(5 / 15)
