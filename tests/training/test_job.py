"""Tests for the training-job step engine."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.context import CollectiveContext
from repro.netsim.network import FlowNetwork
from repro.training.job import JobSpec, TrainingJob
from repro.training.models import GPT_22B, LLAMA_7B
from repro.training.parallelism import ParallelismPlan


def build_job(spec, seed=2, nodes=None):
    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=seed)
    ctx = CollectiveContext(topo, job_id=spec.name)
    nodes = nodes or list(range(spec.plan.nodes_required(8)))
    return net, topo, TrainingJob(spec, ctx, nodes=nodes)


JOB1 = JobSpec("job1", GPT_22B, ParallelismPlan(tp=8, dp=16), global_batch=256)


def test_requires_enough_nodes():
    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net)
    ctx = CollectiveContext(topo)
    with pytest.raises(ValueError):
        TrainingJob(JOB1, ctx, nodes=[0, 1])


def test_steps_complete_and_are_timed():
    net, _topo, job = build_job(JOB1)
    job.run_steps(3)
    net.run()
    assert len(job.steps) == 3
    for step in job.steps:
        assert step.compute_seconds > 0
        assert step.comm_seconds > 0
        assert step.step_seconds == pytest.approx(
            step.compute_seconds + step.comm_seconds, rel=1e-6
        )


def test_steps_are_back_to_back():
    net, _topo, job = build_job(JOB1)
    job.run_steps(2)
    net.run()
    assert job.steps[1].start_time == pytest.approx(job.steps[0].end_time)


def test_throughput_positive():
    net, _topo, job = build_job(JOB1)
    job.run_steps(3)
    net.run()
    assert job.throughput_samples_per_second(skip=1) > 0


def test_throughput_requires_steps():
    net, _topo, job = build_job(JOB1)
    with pytest.raises(RuntimeError):
        job.throughput_samples_per_second()


def test_run_steps_validates_count():
    _net, _topo, job = build_job(JOB1)
    with pytest.raises(ValueError):
        job.run_steps(0)


def test_slow_gpu_inflates_compute():
    net, topo, job = build_job(JOB1)
    topo.node(5).gpus[3].compute_scale = 0.5
    job.run_steps(1)
    net.run()
    slowed = job.steps[0].compute_seconds

    net2, _topo2, job2 = build_job(JOB1)
    job2.run_steps(1)
    net2.run()
    healthy = job2.steps[0].compute_seconds
    assert slowed == pytest.approx(2 * healthy)


def test_host_slowdown_inflates_compute():
    net, topo, job = build_job(JOB1)
    topo.node(2).host_slowdown = 3.0
    job.run_steps(1)
    net.run()
    assert job.steps[0].compute_seconds > 0
    net2, _topo2, job2 = build_job(JOB1)
    job2.run_steps(1)
    net2.run()
    assert job.steps[0].compute_seconds == pytest.approx(
        3 * job2.steps[0].compute_seconds
    )


def test_dp1_job_has_no_comm():
    spec = JobSpec("solo", LLAMA_7B, ParallelismPlan(tp=8, dp=1), global_batch=8)
    net, _topo, job = build_job(spec, nodes=[0])
    job.run_steps(2)
    net.run()
    assert all(step.comm_seconds == 0 for step in job.steps)


def test_grad_accumulation_amortizes_comm():
    # Same plan; 4x the batch => ~4x compute but identical comm volume,
    # so the comm *fraction* must shrink.
    small = JobSpec("s", GPT_22B, ParallelismPlan(tp=8, dp=16), global_batch=64)
    large = JobSpec("l", GPT_22B, ParallelismPlan(tp=8, dp=16), global_batch=256)
    net1, _t1, job_small = build_job(small)
    job_small.run_steps(2)
    net1.run()
    net2, _t2, job_large = build_job(large)
    job_large.run_steps(2)
    net2.run()
    assert job_large.mean_comm_fraction() < job_small.mean_comm_fraction()


def test_pp_traffic_runs_when_configured():
    spec = JobSpec(
        "pp",
        GPT_22B,
        ParallelismPlan(tp=8, pp=2, dp=2),
        global_batch=64,
        pp_activation_bits=1e9,
    )
    net, _topo, job = build_job(spec)
    job.run_steps(1)
    net.run()
    assert len(job.steps) == 1


def test_on_all_done_callback():
    net, _topo, job = build_job(JOB1)
    done = []
    job.run_steps(2, on_all_done=lambda: done.append(True))
    net.run()
    assert done == [True]
