"""Tests for the multi-seed fault campaign driver."""

import pytest

from repro.training.campaign import CampaignResult, ComponentStats, reduction_factor, run_campaign
from repro.training.lifetime import BASELINE_OPERATIONS, C4D_OPERATIONS, LifetimeConfig


def test_requires_two_runs():
    with pytest.raises(ValueError):
        run_campaign(BASELINE_OPERATIONS, runs=1)


def test_campaign_statistics_shape():
    result = run_campaign(BASELINE_OPERATIONS, runs=8)
    assert result.runs == 8
    assert len(result.crash_counts) == 8
    assert set(result.components) == {
        "Post-Checkpoint", "Detection", "Diagnosis & Isolation",
        "Re-Initialization", "Total",
    }
    total = result.total
    assert 0.15 < total.mean < 0.5
    assert total.ci95 > 0
    assert total.low <= total.mean <= total.high


def test_campaign_is_deterministic():
    a = run_campaign(BASELINE_OPERATIONS, runs=5)
    b = run_campaign(BASELINE_OPERATIONS, runs=5)
    assert a.total.mean == b.total.mean


def test_seeds_actually_vary():
    result = run_campaign(BASELINE_OPERATIONS, runs=8)
    assert len(set(result.crash_counts)) > 1


def test_reduction_factor_with_error_bars():
    before = run_campaign(BASELINE_OPERATIONS, LifetimeConfig(seed=100), runs=10)
    after = run_campaign(C4D_OPERATIONS, LifetimeConfig(seed=100), runs=10)
    factor = reduction_factor(before, after)
    # Paper: ~30x; the CI must comfortably exclude "no improvement".
    assert 10 < factor.mean < 100
    assert factor.low > 5


def test_component_stats_bounds():
    stats = ComponentStats(mean=0.01, ci95=0.05)
    assert stats.low == 0.0  # clamped
    assert stats.high == pytest.approx(0.06)


def test_reduction_rejects_zero_after():
    before = run_campaign(BASELINE_OPERATIONS, runs=3)
    fake_after = CampaignResult(
        operations_name="zero",
        runs=3,
        components={"Total": ComponentStats(mean=0.0, ci95=0.0)},
        crash_counts=(0, 0, 0),
    )
    with pytest.raises(ValueError):
        reduction_factor(before, fake_after)
