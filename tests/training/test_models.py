"""Tests for model configs and the compute model."""

import pytest

from repro.training.models import (
    GPT_175B,
    GPT_22B,
    LLAMA_13B,
    LLAMA_7B,
    ModelConfig,
    compute_seconds,
)


def test_paper_models_present():
    assert GPT_22B.params == pytest.approx(22e9)
    assert GPT_175B.params == pytest.approx(175e9)
    assert LLAMA_7B.params == pytest.approx(7e9)
    assert LLAMA_13B.params == pytest.approx(13e9)


def test_flops_per_sample():
    model = ModelConfig(name="m", params=1e9, seq_len=1000)
    assert model.flops_per_sample == pytest.approx(6e12)


def test_grad_bits_full_model():
    model = ModelConfig(name="m", params=1e9, seq_len=1, grad_bytes_per_param=2.0)
    assert model.grad_bits() == pytest.approx(16e9)


def test_grad_bits_sharded():
    model = ModelConfig(name="m", params=1e9, seq_len=1)
    assert model.grad_bits(0.125) == pytest.approx(model.grad_bits() / 8)


def test_grad_bits_validates_fraction():
    with pytest.raises(ValueError):
        GPT_22B.grad_bits(0.0)


def test_compute_seconds_scales_inverse_with_gpus():
    t1 = compute_seconds(GPT_22B, 64, 64)
    t2 = compute_seconds(GPT_22B, 64, 128)
    assert t2 == pytest.approx(t1 / 2)


def test_compute_seconds_scales_with_samples():
    t1 = compute_seconds(GPT_22B, 32, 64)
    t2 = compute_seconds(GPT_22B, 64, 64)
    assert t2 == pytest.approx(2 * t1)


def test_compute_seconds_validates():
    with pytest.raises(ValueError):
        compute_seconds(GPT_22B, 1, 0)
    with pytest.raises(ValueError):
        compute_seconds(GPT_22B, 0, 1)
