"""Tests for the month-scale lifetime Monte-Carlo (Table III)."""

import pytest

from repro.core.c4d.classifier import CauseBucket
from repro.training.lifetime import (
    BASELINE_OPERATIONS,
    C4D_OPERATIONS,
    LifetimeConfig,
    OperationsModel,
    simulate_lifetime,
)


def test_baseline_downtime_matches_paper_ballpark():
    breakdown = simulate_lifetime(LifetimeConfig(seed=7), BASELINE_OPERATIONS)
    total = breakdown.fraction(breakdown.total_seconds)
    # Paper (June 2023): 31.19% total error-induced downtime.
    assert 0.20 < total < 0.45


def test_c4d_downtime_matches_paper_ballpark():
    breakdown = simulate_lifetime(LifetimeConfig(seed=7), C4D_OPERATIONS)
    total = breakdown.fraction(breakdown.total_seconds)
    # Paper (December 2023): 1.16%.
    assert total < 0.03


def test_c4d_reduction_factor():
    cfg = LifetimeConfig(seed=3)
    before = simulate_lifetime(cfg, BASELINE_OPERATIONS).total_seconds
    after = simulate_lifetime(cfg, C4D_OPERATIONS).total_seconds
    # Paper reports ~30x; accept an order-of-magnitude band.
    assert 10 < before / after < 100


def test_diagnosis_dominates_baseline():
    breakdown = simulate_lifetime(LifetimeConfig(seed=5), BASELINE_OPERATIONS)
    assert breakdown.diagnosis_seconds > breakdown.post_checkpoint_seconds
    assert breakdown.post_checkpoint_seconds > breakdown.detection_seconds
    assert breakdown.detection_seconds > breakdown.reinit_seconds


def test_crash_counts_scale_with_error_rate():
    cfg = LifetimeConfig(seed=1)
    before = simulate_lifetime(cfg, BASELINE_OPERATIONS)
    after = simulate_lifetime(cfg, C4D_OPERATIONS)
    assert after.crash_count < before.crash_count


def test_deterministic_given_seed():
    cfg = LifetimeConfig(seed=9)
    a = simulate_lifetime(cfg, BASELINE_OPERATIONS)
    b = simulate_lifetime(cfg, BASELINE_OPERATIONS)
    assert a.total_seconds == b.total_seconds


def test_bucket_breakdown_sums_to_diagnosis():
    breakdown = simulate_lifetime(LifetimeConfig(seed=2), BASELINE_OPERATIONS)
    assert sum(breakdown.diagnosis_by_bucket.values()) == pytest.approx(
        breakdown.diagnosis_seconds
    )


def test_gpu_buckets_dominate_baseline_diagnosis():
    # Table III: ECC/NVLink + CUDA are ~2/3 of diagnosis overhead.
    breakdown = simulate_lifetime(
        LifetimeConfig(seed=4, duration_seconds=120 * 24 * 3600.0), BASELINE_OPERATIONS
    )
    gpu = breakdown.diagnosis_by_bucket.get(
        CauseBucket.ECC_NVLINK, 0.0
    ) + breakdown.diagnosis_by_bucket.get(CauseBucket.CUDA_ERROR, 0.0)
    assert gpu / breakdown.diagnosis_seconds > 0.3


def test_as_table_keys():
    breakdown = simulate_lifetime(LifetimeConfig(seed=0), BASELINE_OPERATIONS)
    table = breakdown.as_table()
    for key in ("Post-Checkpoint", "Detection", "Diagnosis & Isolation",
                "Re-Initialization", "Total"):
        assert key in table


def test_coverage_validation():
    with pytest.raises(ValueError):
        OperationsModel(
            name="bad", auto_detection=1, auto_diagnosis=1, manual_detection=1,
            manual_diagnosis=1, reinit=1,
            checkpoints=BASELINE_OPERATIONS.checkpoints, coverage=1.5,
        )


def test_partial_coverage_between_extremes():
    cfg = LifetimeConfig(seed=11)
    half = OperationsModel(
        name="half",
        auto_detection=C4D_OPERATIONS.auto_detection,
        auto_diagnosis=C4D_OPERATIONS.auto_diagnosis,
        manual_detection=C4D_OPERATIONS.manual_detection,
        manual_diagnosis=C4D_OPERATIONS.manual_diagnosis,
        reinit=C4D_OPERATIONS.reinit,
        checkpoints=C4D_OPERATIONS.checkpoints,
        coverage=0.5,
        error_rate_scale=C4D_OPERATIONS.error_rate_scale,
    )
    full = simulate_lifetime(cfg, C4D_OPERATIONS).diagnosis_seconds
    partial = simulate_lifetime(cfg, half).diagnosis_seconds
    assert partial >= full
