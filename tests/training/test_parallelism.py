"""Tests for parallelization plans."""

import pytest

from repro.training.parallelism import ParallelismPlan


def test_world_size():
    plan = ParallelismPlan(tp=8, pp=2, dp=4)
    assert plan.world_size == 64
    assert plan.gpus_required() == 64


def test_validation():
    with pytest.raises(ValueError):
        ParallelismPlan(tp=0)
    with pytest.raises(ValueError):
        ParallelismPlan(grad_accumulation=0)


def test_nodes_required():
    assert ParallelismPlan(tp=8, dp=16).nodes_required(8) == 16
    assert ParallelismPlan(tp=4).nodes_required(8) == 1


def test_dp_shard_fraction():
    plan = ParallelismPlan(tp=8, pp=8, dp=2)
    assert plan.dp_shard_fraction == pytest.approx(1 / 64)


def test_dp_groups_tp8_are_rail_aligned():
    plan = ParallelismPlan(tp=8, dp=4)
    groups = plan.dp_groups(list(range(4)), 8)
    assert len(groups) == 8
    for offset, group in enumerate(groups):
        assert len(group) == 4
        assert all(rank.gpu == offset for rank in group)
        assert [rank.node for rank in group] == [0, 1, 2, 3]


def test_dp_groups_pure_dp_single_group():
    plan = ParallelismPlan(dp=16)
    groups = plan.dp_groups(list(range(2)), 8)
    assert len(groups) == 1
    assert len(groups[0]) == 16


def test_dp_groups_tp_pp():
    # GPT-175B job: tp8 pp8 dp2 on 16 nodes.
    plan = ParallelismPlan(tp=8, pp=8, dp=2)
    groups = plan.dp_groups(list(range(16)), 8)
    assert len(groups) == 64
    for group in groups:
        assert len(group) == 2
        # Replica stride: second member 8 nodes after the first.
        assert group[1].node - group[0].node == 8
        assert group[0].gpu == group[1].gpu


def test_dp_groups_validates_capacity():
    plan = ParallelismPlan(tp=8, dp=16)
    with pytest.raises(ValueError):
        plan.dp_groups(list(range(4)), 8)


def test_tp_must_fit_in_node():
    plan = ParallelismPlan(tp=16)
    with pytest.raises(ValueError):
        plan.dp_groups(list(range(2)), 8)


def test_pp_boundaries():
    plan = ParallelismPlan(tp=8, pp=4, dp=1)
    pairs = plan.pp_boundaries(list(range(4)), 8)
    assert len(pairs) == 3
    assert [(s.node, d.node) for s, d in pairs] == [(0, 1), (1, 2), (2, 3)]


def test_pp_boundaries_multiple_replicas():
    plan = ParallelismPlan(tp=8, pp=2, dp=2)
    pairs = plan.pp_boundaries(list(range(4)), 8)
    assert len(pairs) == 2
    assert [(s.node, d.node) for s, d in pairs] == [(0, 1), (2, 3)]


def test_no_pp_boundaries_without_pp():
    assert ParallelismPlan(dp=4).pp_boundaries([0, 1], 8) == []


def test_ep_must_divide_world():
    with pytest.raises(ValueError):
        ParallelismPlan(dp=10, ep=3)


def test_ep_groups_contiguous_blocks():
    plan = ParallelismPlan(dp=32, ep=16)
    groups = plan.ep_groups(list(range(4)), 8)
    assert len(groups) == 2
    first = groups[0]
    assert len(first) == 16
    assert {r.node for r in first} == {0, 1}
    assert [r.gpu for r in first[:8]] == list(range(8))


def test_ep_one_means_no_groups():
    assert ParallelismPlan(dp=8).ep_groups(list(range(1)), 8) == []
