"""Tests for the in-memory checkpoint engine."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.context import CollectiveContext
from repro.netsim.network import FlowNetwork
from repro.training.job import JobSpec, TrainingJob
from repro.training.memory_checkpoint import InMemoryCheckpointer
from repro.training.models import GPT_22B
from repro.training.parallelism import ParallelismPlan


def test_validation():
    with pytest.raises(ValueError):
        InMemoryCheckpointer(interval_steps=0)
    with pytest.raises(ValueError):
        InMemoryCheckpointer(save_seconds=-1)
    with pytest.raises(ValueError):
        InMemoryCheckpointer(capacity=0)


def test_saves_on_cadence():
    ckpt = InMemoryCheckpointer(interval_steps=10, save_seconds=0.5)
    costs = [ckpt.maybe_save(step, now=float(step)) for step in range(25)]
    assert costs[9] == 0.5 and costs[19] == 0.5
    assert sum(1 for c in costs if c > 0) == 2
    assert ckpt.saves == 2


def test_capacity_evicts_oldest():
    ckpt = InMemoryCheckpointer(interval_steps=1, capacity=2, state_bits=10.0)
    for step in range(5):
        ckpt.maybe_save(step, now=float(step))
    assert len(ckpt.snapshots) == 2
    assert ckpt.snapshots[0].step == 3
    assert ckpt.memory_bits == 20.0


def test_latest_respects_crash_time():
    ckpt = InMemoryCheckpointer(interval_steps=1, capacity=10)
    for step in range(3):
        ckpt.maybe_save(step, now=float(step))
    # Crash at t=1.5: the snapshot at t=2 does not exist yet.
    snapshot = ckpt.latest(before_time=1.5)
    assert snapshot is not None and snapshot.step == 1


def test_latest_none_before_first_save():
    ckpt = InMemoryCheckpointer(interval_steps=10)
    assert ckpt.latest() is None
    assert ckpt.lost_steps(7, crash_time=100.0) == 7


def test_lost_steps():
    ckpt = InMemoryCheckpointer(interval_steps=5, capacity=10)
    for step in range(20):
        ckpt.maybe_save(step, now=float(step))
    # Last snapshot before t=17.5 is step 14 (saved at t=14).
    assert ckpt.lost_steps(crash_step=18, crash_time=17.5) == 3


def test_restore_counts():
    ckpt = InMemoryCheckpointer(interval_steps=1)
    ckpt.maybe_save(0, now=0.0)
    assert ckpt.restore(crash_time=5.0) is not None
    assert ckpt.restores == 1


def test_negative_step_rejected():
    with pytest.raises(ValueError):
        InMemoryCheckpointer().maybe_save(-1, now=0.0)


def test_training_job_pays_save_cost():
    def run(checkpointer):
        net = FlowNetwork()
        topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=2)
        ctx = CollectiveContext(topo, job_id="ck")
        spec = JobSpec("ck", GPT_22B, ParallelismPlan(tp=8, dp=4), global_batch=32)
        job = TrainingJob(spec, ctx, nodes=[0, 1, 2, 3], checkpointer=checkpointer)
        job.run_steps(4)
        net.run()
        return net.now

    plain = run(None)
    ckpt = InMemoryCheckpointer(interval_steps=2, save_seconds=1.0)
    with_saves = run(ckpt)
    # Saves after steps 2 and 4; only the step-2 save delays a following
    # step inside the run.
    assert with_saves == pytest.approx(plain + 1.0, rel=1e-6)
    assert ckpt.saves == 2


# ----------------------------------------------------------------------
# Integrity validation and the restore fallback chain
# ----------------------------------------------------------------------
def test_snapshot_corruption_detected():
    ckpt = InMemoryCheckpointer(interval_steps=1)
    ckpt.maybe_save(0, now=0.0)
    snapshot = ckpt.snapshots[0]
    assert snapshot.is_valid
    snapshot.corrupt()
    assert not snapshot.is_valid


def test_restore_falls_back_past_corrupted_snapshot():
    ckpt = InMemoryCheckpointer(interval_steps=1, capacity=4)
    for step in range(3):
        ckpt.maybe_save(step, now=float(step))
    assert ckpt.corrupt_latest() == 1
    snapshot = ckpt.restore(crash_time=10.0)
    assert snapshot is not None and snapshot.step == 1
    assert ckpt.last_restore_fallbacks == 1
    assert ckpt.fallbacks == 1


def test_restore_cold_starts_when_all_corrupted():
    ckpt = InMemoryCheckpointer(interval_steps=1, capacity=4)
    for step in range(2):
        ckpt.maybe_save(step, now=float(step))
    assert ckpt.corrupt_latest(count=2) == 2
    assert ckpt.restore(crash_time=10.0) is None
    assert ckpt.last_restore_fallbacks == 2


def test_lost_steps_ignores_corrupted_snapshots():
    ckpt = InMemoryCheckpointer(interval_steps=1, capacity=4)
    for step in range(3):
        ckpt.maybe_save(step, now=float(step))
    assert ckpt.lost_steps(crash_step=5, crash_time=10.0) == 2
    ckpt.corrupt_latest()
    # The newest snapshot no longer counts as a restore point.
    assert ckpt.lost_steps(crash_step=5, crash_time=10.0) == 3
