"""Tests for checkpoint policies."""

import pytest

from repro.training.checkpoint import FREQUENT_CHECKPOINTS, SPARSE_CHECKPOINTS, CheckpointPolicy


def test_validation():
    with pytest.raises(ValueError):
        CheckpointPolicy(interval_seconds=0)
    with pytest.raises(ValueError):
        CheckpointPolicy(interval_seconds=10, save_seconds=-1)
    with pytest.raises(ValueError):
        CheckpointPolicy(interval_seconds=10, save_seconds=10)


def test_lost_work_capped_at_interval():
    policy = CheckpointPolicy(interval_seconds=600)
    assert policy.lost_work(100) == 100
    assert policy.lost_work(1e9) == 600


def test_lost_work_rejects_negative():
    with pytest.raises(ValueError):
        CheckpointPolicy(interval_seconds=600).lost_work(-1)


def test_expected_lost_work():
    assert CheckpointPolicy(interval_seconds=600).expected_lost_work() == 300


def test_overhead_fraction():
    policy = CheckpointPolicy(interval_seconds=600, save_seconds=6)
    assert policy.overhead_fraction() == pytest.approx(0.01)


def test_paper_presets_ordering():
    # The deployed fix checkpoints ~28x more often than the June regime.
    ratio = SPARSE_CHECKPOINTS.interval_seconds / FREQUENT_CHECKPOINTS.interval_seconds
    assert ratio > 20
