"""Tests for the C4D -> C4P feed: connection-level anomalies reach TE.

When the delay matrix localizes a *single connection* (one hot cell, not
a whole row or column), the fault lives in the fabric, so the C4D master
forwards the worker pair to the C4P master, which strike-counts the
links under that connection.
"""

from repro.cluster.specs import ClusterSpec
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import PathRequest
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.events import Anomaly, AnomalyType, Suspect, SuspectKind
from repro.core.c4d.master import C4DMaster
from repro.core.c4p.master import C4PMaster
from repro.netsim.network import FlowNetwork
from repro.telemetry.collector import CentralCollector


class StubDetector:
    """Replays a fixed list of anomalies once, then goes quiet."""

    def __init__(self, anomalies):
        self._anomalies = list(anomalies)

    def evaluate(self, now):
        out, self._anomalies = self._anomalies, []
        return out


class RecordingC4P:
    def __init__(self):
        self.calls = []

    def notify_connection_anomaly(self, src, dst, now=None):
        self.calls.append((src, dst, now))
        return ()


def connection_anomaly(src=0, dst=1, atype=AnomalyType.COMM_SLOW, comm="c0"):
    return Anomaly(
        anomaly_type=atype,
        comm_id=comm,
        detected_at=10.0,
        suspects=(
            Suspect(
                kind=SuspectKind.CONNECTION,
                node=src,
                device=0,
                peer_node=dst,
                peer_device=0,
            ),
        ),
    )


def make_master(anomalies, c4p):
    master = C4DMaster(
        CentralCollector(),
        config=DetectorConfig(debounce_evaluations=1),
        c4p=c4p,
    )
    master.detectors = [StubDetector(anomalies)]
    return master


def test_connection_suspect_forwarded_to_c4p():
    c4p = RecordingC4P()
    master = make_master([connection_anomaly(src=2, dst=5)], c4p)
    fresh = master.evaluate(now=42.0)
    assert len(fresh) == 1
    assert c4p.calls == [((2, 0), (5, 0), 42.0)]


def test_non_connection_suspects_not_forwarded():
    c4p = RecordingC4P()
    worker = Anomaly(
        anomaly_type=AnomalyType.COMM_SLOW,
        comm_id="c0",
        detected_at=10.0,
        suspects=(Suspect(kind=SuspectKind.WORKER, node=3, device=0),),
    )
    master = make_master([worker], c4p)
    master.evaluate(now=42.0)
    assert c4p.calls == []


def test_non_comm_slow_anomalies_not_forwarded():
    c4p = RecordingC4P()
    hang = connection_anomaly(atype=AnomalyType.COMM_HANG)
    master = make_master([hang], c4p)
    master.evaluate(now=42.0)
    assert c4p.calls == []


def test_no_c4p_attached_is_safe():
    master = make_master([connection_anomaly()], c4p=None)
    master.c4p = None
    assert len(master.evaluate(now=42.0)) == 1


def test_feed_drives_real_c4p_quarantine():
    # End to end against the real traffic-engineering plane: two distinct
    # accused connections share one uplink on a 1-spine/1-port spec, so
    # the second forwarded anomaly quarantines it.
    spec = ClusterSpec(num_nodes=4, spines_per_rail=1, uplink_ports_per_spine=1)
    topo = ClusterTopology(spec, FlowNetwork(), ecmp_seed=1)
    c4p = C4PMaster(topo, search_ports=False, link_strike_threshold=2)
    allocs = []
    for src, dst, comm in ((0, 1, "a"), (2, 3, "b")):
        allocs += c4p.allocate(
            PathRequest(
                comm_id=comm, job_id="j", src_node=src, src_nic=0,
                dst_node=dst, dst_nic=0, num_qps=1,
            )
        )
    master = make_master(
        [connection_anomaly(0, 1, comm="a"), connection_anomaly(2, 3, comm="b")],
        c4p,
    )
    master.evaluate(now=50.0)
    shared = topo.leaf_up(0, 0, 0, 0)
    assert shared in c4p.registry.dead_links
    # The one-spine spec offers no alternative route, so the drain cannot
    # migrate: both QPs are reported stranded rather than silently kept.
    assert c4p.residual_qps_on_dead_links() == tuple(
        sorted(a.qp_num for a in allocs)
    )
