"""End-to-end C4D: injected faults detected from monitoring records only.

These tests close the loop the paper's Fig. 4/5 describe: faults are
injected into the simulated cluster, collectives run, the agents ship
records to the collector, and the master must localize the injected
component without ever reading ground truth.
"""

import numpy as np

from repro.cluster.faults import FaultInjector
from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.placement import contiguous_ranks
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.events import AnomalyType
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.steering import JobSteeringService
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GIB
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector


def build(seed=11):
    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=seed)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: net.now)
    ctx = CollectiveContext(topo, sink=plane)
    return net, topo, collector, ctx


def test_degraded_nic_localized_as_comm_slow():
    net, topo, collector, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(8), 8), comm_id="dp")
    FaultInjector(seed=0).degrade_nic_port(topo, node=3, nic=5, side=0, scale=0.25)
    FaultInjector(seed=0).degrade_nic_port(topo, node=3, nic=5, side=1, scale=0.25)
    runner = RepeatedOp(ctx, comm, OpType.ALLREDUCE, 1 * GIB, max_ops=5)
    runner.start()
    net.run()
    master = C4DMaster(collector, DetectorConfig(slow_window=1e9))
    anomalies = master.evaluate(net.now)
    slow = [a for a in anomalies if a.anomaly_type is AnomalyType.COMM_SLOW]
    assert slow, anomalies
    assert any(s.node == 3 and s.device == 5 for s in slow[0].suspects)


def test_straggler_node_localized_as_noncomm_slow():
    net, topo, collector, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(8), 8), comm_id="dp")
    rng = np.random.default_rng(1)
    straggler_rank = 21  # node 2, gpu 5

    counter = {"n": 0}

    def run_once():
        offsets = list(rng.uniform(0.0, 0.002, comm.size))
        offsets[straggler_rank] += 0.4
        ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB, entry_offsets=offsets, on_complete=done)

    def done(_handle):
        counter["n"] += 1
        if counter["n"] < 4:
            run_once()

    run_once()
    net.run()
    master = C4DMaster(collector)
    anomalies = master.evaluate(net.now)
    slow = [a for a in anomalies if a.anomaly_type is AnomalyType.NONCOMM_SLOW]
    assert slow
    assert any(s.node == 2 and s.device == 5 for s in slow[0].suspects)


def test_crashed_worker_detected_and_steered():
    net, topo, collector, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(4), 8), comm_id="dp")
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    # Worker (node1, gpu2) crashes before the next collective.
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB, absent_ranks=[10])
    net.schedule(120.0, lambda: None)
    net.run()
    steering = JobSteeringService(topo, backup_nodes=[15])
    master = C4DMaster(collector, steering=steering)
    anomalies = master.evaluate(net.now)
    hangs = [a for a in anomalies if a.anomaly_type is AnomalyType.NONCOMM_HANG]
    assert hangs
    assert hangs[0].suspect_nodes == [1]
    assert steering.actions[0].isolated_nodes == (1,)
    assert steering.actions[0].replacement_nodes == (15,)
    assert not topo.node(1).is_schedulable


def test_healthy_run_produces_no_anomalies():
    net, _topo, collector, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(8), 8), comm_id="dp")
    runner = RepeatedOp(ctx, comm, OpType.ALLREDUCE, 1 * GIB, max_ops=5)
    runner.start()
    net.run()
    master = C4DMaster(collector, DetectorConfig(slow_window=1e9))
    assert master.evaluate(net.now) == []


def test_detection_latency_tens_of_seconds():
    # The paper's headline: detection drops from ~30 min (elastic agent)
    # to tens of seconds.  With a 30s hang timeout and 10s evaluation
    # cadence the anomaly must be caught within ~40s of the hang.
    net, topo, collector, ctx = build()
    comm = ctx.communicator(contiguous_ranks(range(4), 8), comm_id="dp")
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    hang_started_at = net.now
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB, absent_ranks=[0])
    master = C4DMaster(collector, DetectorConfig(hang_timeout=30.0))
    master.attach_to(net, interval=10.0, until=net.now + 300.0)
    net.run(until=hang_started_at + 300.0)
    assert master.anomalies
    latency = master.anomalies[0].detected_at - hang_started_at
    assert latency <= 45.0
