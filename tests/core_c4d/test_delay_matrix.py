"""Tests for the Fig. 7 delay-matrix analysis."""

import pytest

from repro.collective.monitoring import MessageRecord
from repro.core.c4d.delay_matrix import DelayMatrix, analyze_delay_matrix, build_delay_matrix
from repro.core.c4d.events import SuspectKind


def message(src, dst, duration, size=100.0, src_nic=0, dst_nic=0):
    return MessageRecord(
        comm_id="c", seq=0, src_node=src, src_nic=src_nic, dst_node=dst, dst_nic=dst_nic,
        src_ip="a", dst_ip="b", qp_num=1, src_port=1, message_index=0,
        size_bits=size, post_time=0.0, complete_time=duration,
    )


def ring_messages(num_nodes, base_duration=1.0, overrides=None):
    """A ring of worker pairs with optional per-edge duration overrides."""
    overrides = overrides or {}
    records = []
    for i in range(num_nodes):
        j = (i + 1) % num_nodes
        duration = overrides.get((i, j), base_duration)
        for _ in range(4):
            records.append(message(i, j, duration))
    return records


def test_build_matrix_normalizes_by_size():
    records = [message(0, 1, 1.0, size=100.0), message(1, 2, 2.0, size=200.0)]
    matrix = build_delay_matrix(records)
    assert matrix.scores[((0, 0), (1, 0))] == pytest.approx(0.01)
    assert matrix.scores[((1, 0), (2, 0))] == pytest.approx(0.01)


def test_build_matrix_skips_degenerate_records():
    records = [message(0, 1, 0.0), message(0, 1, 1.0, size=0.0)]
    assert build_delay_matrix(records).scores == {}


def test_healthy_matrix_not_anomalous():
    finding = analyze_delay_matrix(build_delay_matrix(ring_messages(8)))
    assert not finding.is_anomalous
    assert finding.suspects == ()


def test_empty_matrix():
    finding = analyze_delay_matrix(DelayMatrix())
    assert not finding.is_anomalous


def test_single_slow_connection_flags_pair():
    records = ring_messages(8, overrides={(2, 3): 4.0})
    finding = analyze_delay_matrix(build_delay_matrix(records))
    assert finding.is_anomalous
    assert ((2, 0), (3, 0)) in finding.flagged_pairs


def test_slow_worker_row_and_column():
    # Worker (3, 0) is slow as both source and destination -> WORKER suspect.
    records = ring_messages(8, overrides={(3, 4): 4.0, (2, 3): 4.0})
    finding = analyze_delay_matrix(build_delay_matrix(records))
    workers = [s for s in finding.suspects if s.kind is SuspectKind.WORKER]
    assert any(s.node == 3 and s.device == 0 for s in workers)


def test_connection_suspect_when_no_worker_pattern():
    records = ring_messages(8, overrides={(5, 6): 5.0})
    finding = analyze_delay_matrix(build_delay_matrix(records))
    conns = [s for s in finding.suspects if s.kind is SuspectKind.CONNECTION]
    assert len(conns) == 1
    assert conns[0].node == 5 and conns[0].peer_node == 6


def test_node_promotion_when_multiple_workers_slow():
    # Two NICs of node 3 slow in both directions -> NODE suspect.
    records = []
    for nic in (0, 1):
        for i in range(8):
            j = (i + 1) % 8
            duration = 4.0 if 3 in (i, j) else 1.0
            for _ in range(4):
                records.append(message(i, j, duration, src_nic=nic, dst_nic=nic))
    finding = analyze_delay_matrix(build_delay_matrix(records))
    nodes = [s for s in finding.suspects if s.kind is SuspectKind.NODE]
    assert any(s.node == 3 for s in nodes)


def test_threshold_controls_sensitivity():
    records = ring_messages(8, overrides={(2, 3): 1.5})
    matrix = build_delay_matrix(records)
    strict = analyze_delay_matrix(matrix, threshold=1.2)
    lax = analyze_delay_matrix(matrix, threshold=2.0)
    assert strict.is_anomalous
    assert not lax.is_anomalous


def test_max_ratio_reported():
    records = ring_messages(8, overrides={(2, 3): 4.0})
    finding = analyze_delay_matrix(build_delay_matrix(records))
    assert finding.max_ratio == pytest.approx(4.0, rel=0.01)


def test_baseline_is_median():
    matrix = build_delay_matrix(ring_messages(8, overrides={(0, 1): 10.0}))
    assert matrix.baseline() == pytest.approx(0.01)


def test_workers_enumeration():
    matrix = build_delay_matrix(ring_messages(4))
    assert len(matrix.workers) == 4
