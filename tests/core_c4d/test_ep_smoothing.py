"""Expert-parallel load imbalance vs C4D's smoothed slow detection.

The paper (§V): "In the case of EP, load imbalance among workers may
occur, which can be mitigated by averaging collected data over a
predefined period to smooth out random variations and highlight
systemic issues."  These tests reproduce that exact situation: an MoE
job whose per-rank compute jitters randomly every step (token routing),
with and without a genuinely slow GPU underneath.
"""

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.context import CollectiveContext
from repro.collective.monitoring import OpRecord
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.events import AnomalyType
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.wait_chain import analyze_wait_chain_smoothed
from repro.netsim.units import GIB
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.training.job import JobSpec, TrainingJob
from repro.training.models import LLAMA_7B
from repro.training.parallelism import ParallelismPlan
from repro.workloads.generator import build_cluster


def run_moe_job(slow_node: int | None, smooth_window: int, steps: int = 8):
    scenario = build_cluster(ecmp_seed=3)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    spec = JobSpec(
        "moe",
        LLAMA_7B,
        ParallelismPlan(dp=64, ep=16),
        global_batch=128,
        ep_alltoall_bits=0.2 * GIB,
        ep_imbalance_std=0.1,
    )
    context = CollectiveContext(scenario.topology, sink=plane, job_id="moe")
    job = TrainingJob(spec, context, nodes=list(range(8)), seed=5)
    if slow_node is not None:
        scenario.topology.node(slow_node).gpus[2].compute_scale = 0.8
    job.run_steps(steps)
    scenario.network.run()
    config = DetectorConfig(wait_min_lateness=0.1, smooth_window_ops=smooth_window)
    master = C4DMaster(collector, config)
    return [
        anomaly
        for anomaly in master.evaluate(scenario.network.now)
        if anomaly.anomaly_type is AnomalyType.NONCOMM_SLOW
    ]


def test_smoothing_eliminates_ep_false_positives():
    # A healthy MoE job: random imbalance only.  The smoothed detector
    # must stay quiet.
    assert run_moe_job(slow_node=None, smooth_window=6) == []


def test_naive_detection_misfires_on_ep_imbalance():
    # The same healthy job trips the per-op persistence detector — the
    # failure mode the paper's smoothing exists to fix.
    assert run_moe_job(slow_node=None, smooth_window=0) != []


def test_smoothing_still_localizes_systemic_slowness():
    anomalies = run_moe_job(slow_node=4, smooth_window=6)
    assert anomalies
    assert all(a.suspect_nodes == [4] for a in anomalies)


def test_ep_traffic_runs_alltoall():
    scenario = build_cluster(ecmp_seed=3)
    spec = JobSpec(
        "moe",
        LLAMA_7B,
        ParallelismPlan(dp=32, ep=16),
        global_batch=64,
        ep_alltoall_bits=0.1 * GIB,
    )
    context = CollectiveContext(scenario.topology, job_id="moe")
    job = TrainingJob(spec, context, nodes=list(range(4)), seed=1)
    job.run_steps(2)
    scenario.network.run()
    assert len(job.steps) == 2
    assert all(step.comm_seconds > 0 for step in job.steps)


# ----------------------------------------------------------------------
# Unit-level behaviour of the smoothed analyzer.
# ----------------------------------------------------------------------
def _op_group(seq, launches):
    start = max(launches)
    return [
        OpRecord(
            comm_id="c", seq=seq, op_type=OpType.ALLREDUCE, algorithm=Algorithm.RING,
            dtype="fp16", element_count=1, rank=rank, location=RankLocation(rank // 8, rank % 8),
            launch_time=launch, start_time=start, end_time=start + 0.1,
        )
        for rank, launch in enumerate(launches)
    ]


def test_smoothed_averages_out_rotating_stragglers():
    import numpy as np

    rng = np.random.default_rng(0)
    groups = []
    for seq in range(8):
        launches = list(rng.normal(0.0, 0.02, 16))
        launches[seq % 16] += 0.5  # a different rank is late each op
        groups.append(_op_group(seq, launches))
    finding = analyze_wait_chain_smoothed(groups, min_lateness=0.2)
    assert not finding.is_anomalous


def test_smoothed_catches_consistent_small_lateness():
    import numpy as np

    rng = np.random.default_rng(1)
    groups = []
    for seq in range(8):
        launches = list(rng.normal(0.0, 0.05, 16))
        launches[11] += 0.3  # always somewhat late, sometimes within noise
        groups.append(_op_group(seq, launches))
    finding = analyze_wait_chain_smoothed(groups, min_lateness=0.1)
    assert finding.is_anomalous
    assert any(s.node == 1 and s.device == 3 for s in finding.suspects)


def test_smoothed_empty_input():
    finding = analyze_wait_chain_smoothed([])
    assert not finding.is_anomalous


def test_smoothed_skips_tiny_groups():
    finding = analyze_wait_chain_smoothed([_op_group(0, [0.0, 1.0])])
    assert not finding.is_anomalous
