"""Tests for the C4D master, steering service, classifier and RCA."""

import pytest

from repro.cluster.faults import FaultClass, FaultEvent, FaultType
from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import CommunicatorRecord, OpLaunchRecord
from repro.core.c4d.classifier import CauseBucket, classify_anomaly, classify_fault
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.events import Anomaly, AnomalyType, Suspect, SuspectKind
from repro.core.c4d.master import C4DMaster
from repro.core.c4d.rca import RootCauseAnalyzer
from repro.core.c4d.steering import JobSteeringService, SteeringConfig, SteeringFaultModel
from repro.netsim.network import FlowNetwork
from repro.telemetry.collector import CentralCollector


def anomaly(node=3, kind=SuspectKind.WORKER, atype=AnomalyType.NONCOMM_HANG):
    return Anomaly(
        anomaly_type=atype,
        comm_id="c",
        detected_at=10.0,
        suspects=(Suspect(kind=kind, node=node, device=0),),
    )


@pytest.fixture
def topo():
    return ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=0)


def test_steering_isolates_and_replaces(topo):
    service = JobSteeringService(topo, backup_nodes=[14, 15])
    action = service.handle(anomaly(node=3), now=100.0)
    assert action.isolated_nodes == (3,)
    assert action.replacement_nodes == (14,)
    assert not topo.node(3).is_schedulable
    assert action.ready_at == pytest.approx(100.0 + 300.0)


def test_steering_dedups_repeated_verdict(topo):
    service = JobSteeringService(topo, backup_nodes=[14])
    service.handle(anomaly(node=3), now=0.0)
    # Same fault key inside the dedup window: suppressed, not re-executed.
    assert service.handle(anomaly(node=3), now=1.0) is None
    assert service.dedup_hits == 1
    assert service.backup_pool == []
    assert len(service.executed_actions) == 1


def test_steering_dedup_window_expires(topo):
    service = JobSteeringService(topo, backup_nodes=[14, 15], dedup_window=100.0)
    service.handle(anomaly(node=3), now=0.0)
    # Outside the window the same fault key may be acted on again; the
    # node is already isolated so the action is an idempotent no-op.
    action = service.handle(anomaly(node=3), now=200.0)
    assert action is not None
    assert action.isolated_nodes == ()


def test_steering_dedup_ignores_epoch(topo):
    service = JobSteeringService(topo, backup_nodes=[14, 15])
    service.handle(anomaly(node=3), now=0.0, epoch=0)
    # A restarted (higher-epoch) master re-deriving the verdict is
    # still a duplicate — epochs fence stale writers, not dedup.
    assert service.handle(anomaly(node=3), now=5.0, epoch=3) is None


def test_steering_pool_exhaustion(topo):
    service = JobSteeringService(topo, backup_nodes=[])
    action = service.handle(anomaly(node=5), now=0.0)
    assert action.isolated_nodes == (5,)
    assert action.replacement_nodes == ()


def test_return_to_pool_restores(topo):
    service = JobSteeringService(topo, backup_nodes=[])
    service.handle(anomaly(node=2), now=0.0)
    service.return_to_pool(2)
    assert topo.node(2).is_schedulable
    assert 2 in service.backup_pool


def test_steering_config_latencies(topo):
    service = JobSteeringService(
        topo, backup_nodes=[], config=SteeringConfig(isolation_seconds=10, restart_seconds=20)
    )
    action = service.handle(anomaly(node=1), now=5.0)
    assert action.ready_at == 35.0


def test_classify_fault_buckets():
    event = FaultEvent(0.0, FaultType.ECC_NVLINK_ERROR, FaultClass.CRASH, True, 1, 2)
    assert classify_fault(event) is CauseBucket.ECC_NVLINK
    other = FaultEvent(0.0, FaultType.NETWORK_OTHER, FaultClass.CRASH, False)
    assert classify_fault(other) is CauseBucket.UNKNOWN


def test_classify_anomaly_by_syndrome():
    assert classify_anomaly(anomaly(atype=AnomalyType.NONCOMM_HANG)) is CauseBucket.CUDA_ERROR
    assert classify_anomaly(anomaly(atype=AnomalyType.COMM_HANG)) is CauseBucket.ACK_TIMEOUT
    assert classify_anomaly(anomaly(atype=AnomalyType.COMM_SLOW)) is CauseBucket.CCL_TIMEOUT


def test_classify_anomaly_hint_dominates():
    result = classify_anomaly(
        anomaly(atype=AnomalyType.COMM_HANG), device_error_hint=FaultType.CUDA_ERROR
    )
    assert result is CauseBucket.CUDA_ERROR


def test_rca_report():
    rca = RootCauseAnalyzer()
    rca.submit(anomaly(atype=AnomalyType.COMM_HANG))
    rca.submit(anomaly(atype=AnomalyType.COMM_HANG))
    rca.submit(
        anomaly(atype=AnomalyType.NONCOMM_HANG),
        fault_context=FaultEvent(0.0, FaultType.CUDA_ERROR, FaultClass.CRASH, True, 1),
    )
    report = rca.report()
    assert report.total_cases == 3
    assert report.proportion(CauseBucket.ACK_TIMEOUT) == pytest.approx(2 / 3)
    assert report.proportion(CauseBucket.CUDA_ERROR) == pytest.approx(1 / 3)


def _hang_collector():
    collector = CentralCollector()
    ranks = tuple(RankLocation(i, 0) for i in range(4))
    collector.ingest_communicator(CommunicatorRecord("c", 4, ranks), now=0.0)
    for rank in range(3):  # rank 3 never launches
        collector.ingest_launch(
            OpLaunchRecord("c", 0, OpType.ALLREDUCE, rank, ranks[rank], 0.0)
        )
    return collector


def test_master_detects_and_steers(topo):
    collector = _hang_collector()
    steering = JobSteeringService(topo, backup_nodes=[15])
    rca = RootCauseAnalyzer()
    master = C4DMaster(collector, DetectorConfig(hang_timeout=30.0), steering=steering, rca=rca)
    fresh = master.evaluate(now=60.0)
    assert len(fresh) == 1
    assert fresh[0].anomaly_type is AnomalyType.NONCOMM_HANG
    assert steering.actions and steering.actions[0].isolated_nodes == (3,)
    assert rca.report().total_cases == 1


def test_master_cooldown_suppresses_repeats(topo):
    collector = _hang_collector()
    master = C4DMaster(collector, DetectorConfig(hang_timeout=30.0), cooldown=300.0)
    assert len(master.evaluate(now=60.0)) == 1
    assert master.evaluate(now=70.0) == []
    assert len(master.evaluate(now=400.0)) == 1


def test_master_attach_to_event_loop(topo):
    collector = _hang_collector()
    master = C4DMaster(collector, DetectorConfig(hang_timeout=30.0))
    net = FlowNetwork()
    master.attach_to(net, interval=10.0, until=100.0)
    net.run(until=100.0)
    assert master.anomalies
    assert master.anomalies[0].detected_at <= 40.0


def _multi_comm_straggler_collector():
    """Two communicators both implicating node 3 as a straggler."""
    from repro.collective.algorithms import Algorithm
    from repro.collective.monitoring import OpRecord

    collector = CentralCollector()
    for comm_id in ("dp0", "dp1"):
        ranks = tuple(RankLocation(i, 0) for i in range(8))
        collector.ingest_communicator(
            CommunicatorRecord(comm_id, 8, ranks), now=0.0
        )
        for seq in range(3):
            launches = [float(seq)] * 8
            launches[3] = seq + 1.0
            start = max(launches)
            for rank in range(8):
                collector.ingest_op(
                    OpRecord(
                        comm_id=comm_id, seq=seq, op_type=OpType.ALLREDUCE,
                        algorithm=Algorithm.RING, dtype="fp16", element_count=1,
                        rank=rank, location=ranks[rank],
                        launch_time=launches[rank], start_time=start,
                        end_time=start + 0.5,
                    )
                )
    return collector


def test_master_aggregates_cross_communicator_suspects():
    collector = _multi_comm_straggler_collector()
    master = C4DMaster(collector)
    fresh = master.evaluate(now=10.0)
    # Two per-communicator NONCOMM_SLOW anomalies fuse into one
    # node-scoped anomaly.
    assert len(fresh) == 1
    anomaly = fresh[0]
    assert anomaly.comm_id == "<multiple>"
    assert anomaly.suspects[0].kind is SuspectKind.NODE
    assert anomaly.suspects[0].node == 3
    assert set(anomaly.evidence["comm_ids"]) == {"dp0", "dp1"}


# ----------------------------------------------------------------------
# Hardened steering: idempotency, pool exhaustion, retries, DOA spares
# ----------------------------------------------------------------------
def test_return_to_pool_rejects_never_isolated(topo):
    service = JobSteeringService(topo, backup_nodes=[])
    with pytest.raises(ValueError):
        service.return_to_pool(7)


def test_return_to_pool_is_idempotent(topo):
    service = JobSteeringService(topo, backup_nodes=[])
    service.handle(anomaly(node=2), now=0.0)
    assert service.return_to_pool(2) is True
    assert service.return_to_pool(2) is False  # second call is a no-op
    assert service.backup_pool == [2]  # no duplicate id


def test_pool_exhaustion_sets_structured_field(topo, caplog):
    service = JobSteeringService(topo, backup_nodes=[14])
    both = Anomaly(
        anomaly_type=AnomalyType.NONCOMM_HANG,
        comm_id="c",
        detected_at=10.0,
        suspects=(
            Suspect(kind=SuspectKind.WORKER, node=3, device=0),
            Suspect(kind=SuspectKind.WORKER, node=5, device=0),
        ),
    )
    with caplog.at_level("WARNING"):
        action = service.handle(both, now=0.0)
    assert action.pool_exhausted is True
    assert action.isolated_nodes == (3, 5)
    assert action.replacement_nodes == (14,)
    assert any("exhausted" in r.message for r in caplog.records)


def test_pool_not_exhausted_flag_false(topo):
    service = JobSteeringService(topo, backup_nodes=[14, 15])
    action = service.handle(anomaly(node=3), now=0.0)
    assert action.pool_exhausted is False


def test_isolation_retries_with_capped_backoff(topo):
    # seed 0 draws ~0.64, 0.27, 0.04 — all below 0.99, so every
    # attempt fails deterministically and the node stays in the job.
    service = JobSteeringService(
        topo,
        backup_nodes=[15],
        faults=SteeringFaultModel(isolation_failure_rate=0.99, seed=0),
    )
    action = service.handle(anomaly(node=3), now=0.0)
    assert action.failed_isolations == (3,)
    assert action.isolated_nodes == ()
    assert action.attempts == 3
    # Backoff between attempts: 15 + 30 (capped exponential, base 15).
    assert action.backoff_seconds == pytest.approx(45.0)
    assert action.ready_at == pytest.approx(300.0 + 45.0)
    assert topo.node(3).is_schedulable  # isolation never landed
    assert service.backup_pool == [15]  # no replacement drawn


def test_dead_on_arrival_replacements_are_recorded(topo):
    service = JobSteeringService(
        topo,
        backup_nodes=[14, 15],
        faults=SteeringFaultModel(replacement_doa_rate=0.99, seed=0),
    )
    action = service.handle(anomaly(node=3), now=0.0)
    assert action.isolated_nodes == (3,)
    assert action.replacement_nodes == ()
    assert action.doa_replacements == (14, 15)
    assert action.pool_exhausted is True
    # DOA spares are isolated too (they are broken hardware).
    assert not topo.node(14).is_schedulable
    assert not topo.node(15).is_schedulable


def test_retry_backoff_is_capped():
    config = SteeringConfig(backoff_base_seconds=15.0, backoff_cap_seconds=120.0)
    assert config.retry_backoff(0) == 15.0
    assert config.retry_backoff(2) == 60.0
    assert config.retry_backoff(10) == 120.0  # capped


# ----------------------------------------------------------------------
# Master robustness gates: debounce and per-node action hysteresis
# ----------------------------------------------------------------------
def test_debounce_requires_consecutive_sightings(topo):
    collector = _hang_collector()
    steering = JobSteeringService(topo, backup_nodes=[15])
    master = C4DMaster(
        collector,
        DetectorConfig(hang_timeout=30.0, debounce_evaluations=2),
        steering=steering,
    )
    assert master.evaluate(now=60.0) == []  # first sighting held back
    fresh = master.evaluate(now=70.0)  # second consecutive one passes
    assert len(fresh) == 1
    assert steering.actions[0].isolated_nodes == (3,)


def test_debounce_resets_on_gap():
    collector = _hang_collector()
    master = C4DMaster(
        collector, DetectorConfig(hang_timeout=30.0, debounce_evaluations=3)
    )
    assert master.evaluate(now=60.0) == []
    assert master.evaluate(now=70.0) == []
    assert len(master.evaluate(now=80.0)) == 1


def test_node_action_cooldown_suppresses_reisolation(topo):
    collector = _hang_collector()
    steering = JobSteeringService(topo, backup_nodes=[14, 15])
    master = C4DMaster(
        collector,
        DetectorConfig(hang_timeout=30.0, node_action_cooldown=600.0),
        steering=steering,
    )
    assert len(master.evaluate(now=60.0)) == 1
    # A second incarnation hangs on the same node: a different comm_id
    # defeats the per-key cooldown, but the node-level hysteresis holds.
    ranks = tuple(RankLocation(i, 0) for i in range(4))
    collector.ingest_communicator(CommunicatorRecord("c2", 4, ranks), now=61.0)
    for rank in range(3):
        collector.ingest_launch(
            OpLaunchRecord("c2", 0, OpType.ALLREDUCE, rank, ranks[rank], 61.0)
        )
    assert master.evaluate(now=120.0) == []
    assert len(steering.actions) == 1
    # After the cooldown expires, the node is actionable again.
    assert len(master.evaluate(now=700.0)) == 1
