"""Tests for the syndrome detectors over the collector."""

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import CommunicatorRecord, MessageRecord, OpLaunchRecord, OpRecord
from repro.core.c4d.detectors import (
    CommSlowDetector,
    DetectorConfig,
    HangDetector,
    NonCommSlowDetector,
)
from repro.core.c4d.events import AnomalyType, SuspectKind
from repro.telemetry.collector import CentralCollector


SIZE = 8


def make_collector():
    collector = CentralCollector()
    ranks = tuple(RankLocation(i // 4, i % 4) for i in range(SIZE))
    collector.ingest_communicator(CommunicatorRecord("c", SIZE, ranks), now=0.0)
    return collector


def complete_op(collector, seq, end, launches=None):
    launches = launches or [end - 1.0] * SIZE
    start = max(launches)
    for rank in range(SIZE):
        collector.ingest_launch(
            OpLaunchRecord("c", seq, OpType.ALLREDUCE, rank, RankLocation(rank // 4, rank % 4), launches[rank])
        )
        collector.ingest_op(
            OpRecord(
                comm_id="c", seq=seq, op_type=OpType.ALLREDUCE, algorithm=Algorithm.RING,
                dtype="fp16", element_count=1, rank=rank,
                location=RankLocation(rank // 4, rank % 4),
                launch_time=launches[rank], start_time=start, end_time=end,
            )
        )


def launch_only(collector, seq, time, ranks):
    for rank in ranks:
        collector.ingest_launch(
            OpLaunchRecord("c", seq, OpType.ALLREDUCE, rank, RankLocation(rank // 4, rank % 4), time)
        )


def test_no_hang_when_progressing():
    collector = make_collector()
    complete_op(collector, 0, end=1.0)
    detector = HangDetector(collector, DetectorConfig(hang_timeout=30.0))
    assert detector.evaluate(now=5.0) == []


def test_no_hang_when_nothing_outstanding():
    collector = make_collector()
    complete_op(collector, 0, end=1.0)
    detector = HangDetector(collector, DetectorConfig(hang_timeout=30.0))
    assert detector.evaluate(now=1000.0) == []


def test_comm_hang_all_launched():
    collector = make_collector()
    complete_op(collector, 0, end=1.0)
    launch_only(collector, 1, 1.1, range(SIZE))
    detector = HangDetector(collector, DetectorConfig(hang_timeout=30.0))
    anomalies = detector.evaluate(now=60.0)
    assert len(anomalies) == 1
    assert anomalies[0].anomaly_type is AnomalyType.COMM_HANG
    assert anomalies[0].suspects[0].kind is SuspectKind.UNKNOWN


def test_noncomm_hang_localizes_missing_rank():
    collector = make_collector()
    complete_op(collector, 0, end=1.0)
    launch_only(collector, 1, 1.1, [r for r in range(SIZE) if r != 6])
    detector = HangDetector(collector, DetectorConfig(hang_timeout=30.0))
    anomalies = detector.evaluate(now=60.0)
    assert len(anomalies) == 1
    anomaly = anomalies[0]
    assert anomaly.anomaly_type is AnomalyType.NONCOMM_HANG
    assert len(anomaly.suspects) == 1
    assert (anomaly.suspects[0].node, anomaly.suspects[0].device) == (1, 2)


def test_hang_respects_timeout():
    collector = make_collector()
    complete_op(collector, 0, end=1.0)
    launch_only(collector, 1, 1.1, range(SIZE))
    detector = HangDetector(collector, DetectorConfig(hang_timeout=30.0))
    assert detector.evaluate(now=10.0) == []
    assert detector.evaluate(now=31.5) != []


def message(seq, src, dst, duration, complete):
    return MessageRecord(
        comm_id="c", seq=seq, src_node=src, src_nic=0, dst_node=dst, dst_nic=0,
        src_ip="a", dst_ip="b", qp_num=1, src_port=1, message_index=0,
        size_bits=100.0, post_time=complete - duration, complete_time=complete,
    )


def test_comm_slow_detector_needs_enough_ops():
    collector = make_collector()
    for i in range(4):
        collector.ingest_message(message(0, i, i + 1, 1.0, complete=1.0))
    detector = CommSlowDetector(collector, DetectorConfig(min_ops_for_slow=2))
    assert detector.evaluate(now=2.0) == []


def test_comm_slow_detector_flags_degraded_pair():
    collector = make_collector()
    for seq in (0, 1):
        for i in range(8):
            j = (i + 1) % 8
            duration = 4.0 if (i, j) == (2, 3) else 1.0
            collector.ingest_message(message(seq, i, j, duration, complete=seq + 1.0))
    detector = CommSlowDetector(collector, DetectorConfig(min_ops_for_slow=2, slow_window=100.0))
    anomalies = detector.evaluate(now=2.0)
    assert len(anomalies) == 1
    assert anomalies[0].anomaly_type is AnomalyType.COMM_SLOW


def test_comm_slow_detector_window_excludes_old_records():
    collector = make_collector()
    for seq in (0, 1):
        for i in range(8):
            duration = 4.0 if i == 2 else 1.0
            collector.ingest_message(message(seq, i, (i + 1) % 8, duration, complete=1.0))
    detector = CommSlowDetector(collector, DetectorConfig(min_ops_for_slow=2, slow_window=10.0))
    assert detector.evaluate(now=1000.0) == []


def test_noncomm_slow_requires_persistence():
    collector = make_collector()
    launches_straggler = [0.0] * SIZE
    launches_straggler[5] = 1.0
    # Straggler only in one of the two ops -> not persistent.
    complete_op(collector, 0, end=2.0, launches=launches_straggler)
    complete_op(collector, 1, end=4.0, launches=[3.0] * SIZE)
    detector = NonCommSlowDetector(collector, DetectorConfig(min_ops_for_slow=2))
    assert detector.evaluate(now=5.0) == []


def test_noncomm_slow_detects_persistent_straggler():
    collector = make_collector()
    for seq in range(3):
        launches = [float(seq)] * SIZE
        launches[5] = seq + 1.0
        complete_op(collector, seq, end=seq + 2.0, launches=launches)
    detector = NonCommSlowDetector(collector, DetectorConfig(min_ops_for_slow=2))
    anomalies = detector.evaluate(now=10.0)
    assert len(anomalies) == 1
    suspect = anomalies[0].suspects[0]
    assert (suspect.node, suspect.device) == (1, 1)
