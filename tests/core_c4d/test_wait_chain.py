"""Tests for the wait-chain straggler analysis."""

import pytest

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import OpRecord
from repro.core.c4d.wait_chain import analyze_wait_chain


def records_with_launches(launches, comm="c"):
    start = max(launches)
    return [
        OpRecord(
            comm_id=comm, seq=0, op_type=OpType.ALLREDUCE, algorithm=Algorithm.RING,
            dtype="fp16", element_count=1, rank=rank, location=RankLocation(rank // 8, rank % 8),
            launch_time=launch, start_time=start, end_time=start + 1.0,
        )
        for rank, launch in enumerate(launches)
    ]


def test_uniform_launches_no_straggler():
    finding = analyze_wait_chain(records_with_launches([0.0] * 16))
    assert not finding.is_anomalous


def test_jitter_tolerated():
    import numpy as np

    rng = np.random.default_rng(0)
    launches = list(rng.uniform(0.0, 0.01, 16))
    finding = analyze_wait_chain(records_with_launches(launches), min_lateness=0.05)
    assert not finding.is_anomalous


def test_single_straggler_identified():
    launches = [0.0] * 16
    launches[11] = 2.0
    finding = analyze_wait_chain(records_with_launches(launches))
    assert finding.is_anomalous
    assert len(finding.suspects) == 1
    suspect = finding.suspects[0]
    assert (suspect.node, suspect.device) == (1, 3)
    assert finding.lateness == pytest.approx(2.0)


def test_straggler_wait_semantics():
    # The straggler waits least; everyone else waits for it.
    launches = [0.0] * 8
    launches[2] = 1.0
    records = records_with_launches(launches)
    finding = analyze_wait_chain(records)
    assert finding.median_wait == pytest.approx(1.0)


def test_multiple_stragglers():
    launches = [0.0] * 16
    launches[3] = 1.5
    launches[9] = 1.4
    finding = analyze_wait_chain(records_with_launches(launches))
    nodes = {(s.node, s.device) for s in finding.suspects}
    assert (0, 3) in nodes and (1, 1) in nodes


def test_min_lateness_floor():
    launches = [0.0] * 8
    launches[1] = 0.02
    finding = analyze_wait_chain(records_with_launches(launches), min_lateness=0.05)
    assert not finding.is_anomalous


def test_too_few_records():
    finding = analyze_wait_chain(records_with_launches([0.0, 5.0]))
    assert not finding.is_anomalous
