"""Tests for the C4 agent plane."""

import pytest

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import CommunicatorRecord, MessageRecord, OpLaunchRecord, OpRecord
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector


def make_plane():
    collector = CentralCollector()
    return collector, AgentPlane(collector)


def test_agents_created_lazily_per_node():
    _collector, plane = make_plane()
    assert plane.agents == {}
    agent = plane.agent(3)
    assert agent.node_id == 3
    assert plane.agent(3) is agent


def test_records_routed_by_producing_node():
    collector, plane = make_plane()
    plane.on_communicator(
        CommunicatorRecord("c", 2, (RankLocation(4, 0), RankLocation(9, 0)))
    )
    plane.on_op(
        OpRecord(
            comm_id="c", seq=0, op_type=OpType.ALLREDUCE, algorithm=Algorithm.RING,
            dtype="fp16", element_count=1, rank=0, location=RankLocation(4, 0),
            launch_time=0.0, start_time=0.0, end_time=1.0,
        )
    )
    plane.on_message(
        MessageRecord(
            comm_id="c", seq=0, src_node=9, src_nic=0, dst_node=4, dst_nic=0,
            src_ip="a", dst_ip="b", qp_num=1, src_port=1, message_index=0,
            size_bits=1.0, post_time=0.0, complete_time=1.0,
        )
    )
    assert plane.agent(4).records_forwarded == 1
    assert plane.agent(9).records_forwarded == 1
    assert len(collector.ops("c")) == 1
    assert len(collector.messages("c")) == 1


def test_launch_records_forwarded():
    collector, plane = make_plane()
    plane.on_communicator(CommunicatorRecord("c", 1, (RankLocation(2, 0),)))
    plane.on_op_launch(
        OpLaunchRecord(
            comm_id="c", seq=0, op_type=OpType.ALLREDUCE, rank=0,
            location=RankLocation(2, 0), launch_time=1.0,
        )
    )
    assert plane.agent(2).records_forwarded == 1
    assert collector.progress["c"].max_launch_seq == 0


def test_clock_stamps_registration():
    collector = CentralCollector()
    now = {"t": 42.0}
    plane = AgentPlane(collector, clock=lambda: now["t"])
    plane.on_communicator(CommunicatorRecord("c", 1, (RankLocation(0, 0),)))
    assert collector.progress["c"].created_at == 42.0


def test_buffered_mode_requires_network():
    import pytest

    with pytest.raises(ValueError):
        AgentPlane(CentralCollector(), flush_interval=1.0)


def test_buffered_mode_delays_delivery():
    from repro.netsim.network import FlowNetwork

    net = FlowNetwork()
    collector = CentralCollector()
    plane = AgentPlane(collector, network=net, flush_interval=2.0)
    plane.on_communicator(CommunicatorRecord("c", 1, (RankLocation(0, 0),)))
    plane.on_op(
        OpRecord(
            comm_id="c", seq=0, op_type=OpType.ALLREDUCE, algorithm=Algorithm.RING,
            dtype="fp16", element_count=1, rank=0, location=RankLocation(0, 0),
            launch_time=0.0, start_time=0.0, end_time=0.1,
        )
    )
    # Not yet delivered.
    assert collector.ops("c") == []
    net.run(until=2.5)
    assert len(collector.ops("c")) == 1


def test_buffered_flush_all_is_manual_escape_hatch():
    from repro.netsim.network import FlowNetwork

    net = FlowNetwork()
    collector = CentralCollector()
    plane = AgentPlane(collector, network=net, flush_interval=100.0)
    plane.on_communicator(CommunicatorRecord("c", 1, (RankLocation(2, 0),)))
    plane.on_op_launch(
        OpLaunchRecord(
            comm_id="c", seq=0, op_type=OpType.ALLREDUCE, rank=0,
            location=RankLocation(2, 0), launch_time=0.0,
        )
    )
    assert collector.progress["c"].max_launch_seq == -1
    shipped = plane.flush_all()
    assert shipped == 1
    assert collector.progress["c"].max_launch_seq == 0


def test_buffered_flush_timer_disarms_when_idle():
    from repro.netsim.network import FlowNetwork

    net = FlowNetwork()
    collector = CentralCollector()
    plane = AgentPlane(collector, network=net, flush_interval=1.0)
    plane.on_communicator(CommunicatorRecord("c", 1, (RankLocation(0, 0),)))
    plane.on_op_launch(
        OpLaunchRecord(
            comm_id="c", seq=0, op_type=OpType.ALLREDUCE, rank=0,
            location=RankLocation(0, 0), launch_time=0.0,
        )
    )
    net.run()  # must terminate (timer disarms after the flush)
    assert net.now == pytest.approx(1.0)
