"""Tests for the lossy agent→master telemetry channel."""

import pytest

from repro.netsim.network import FlowNetwork
from repro.telemetry.unreliable import ChannelConfig, UnreliableChannel


def _run_channel(config, sends, seed=0):
    network = FlowNetwork()
    channel = UnreliableChannel(network, config, seed=seed)
    delivered = []
    for index in range(sends):
        channel.send(lambda index=index: delivered.append((index, network.now)))
    network.run(until=10_000.0)
    return channel, delivered


def test_perfect_channel_delivers_everything_with_latency():
    config = ChannelConfig(base_latency=0.5, jitter=0.0)
    channel, delivered = _run_channel(config, sends=20)
    assert len(delivered) == 20
    assert channel.delivered == 20
    assert channel.dropped_attempts == 0
    assert all(when == pytest.approx(0.5) for _i, when in delivered)


def test_drops_become_delays_not_losses():
    # At-least-once: a dropped attempt retransmits after the timeout,
    # so with bounded loss every record still arrives — late.
    config = ChannelConfig(drop_rate=0.5, retransmit_timeout=5.0, max_retries=32)
    channel, delivered = _run_channel(config, sends=200, seed=3)
    assert {i for i, _w in delivered} == set(range(200))
    assert channel.dropped_attempts > 0
    assert channel.abandoned == 0
    # Retransmitted records paid at least one timeout.
    assert max(when for _i, when in delivered) >= 5.0


def test_duplicates_are_delivered_twice():
    config = ChannelConfig(duplicate_rate=0.5)
    channel, delivered = _run_channel(config, sends=100, seed=1)
    assert channel.duplicated > 0
    assert len(delivered) == 100 + channel.duplicated


def test_retry_budget_exhaustion_abandons():
    config = ChannelConfig(drop_rate=0.95, retransmit_timeout=1.0, max_retries=1)
    channel, delivered = _run_channel(config, sends=100, seed=2)
    assert channel.abandoned > 0
    assert len(delivered) == 100 - channel.abandoned


def test_stats_and_in_flight_accounting():
    network = FlowNetwork()
    channel = UnreliableChannel(network, ChannelConfig(base_latency=1.0), seed=0)
    channel.send(lambda: None)
    assert channel.in_flight == 1
    network.run(until=10.0)
    assert channel.in_flight == 0
    stats = channel.stats()
    assert stats["sent"] == 1 and stats["delivered"] == 1


def test_deterministic_under_seed():
    config = ChannelConfig(drop_rate=0.3, duplicate_rate=0.2, jitter=0.4)
    channel_a, delivered_a = _run_channel(config, sends=150, seed=9)
    channel_b, delivered_b = _run_channel(config, sends=150, seed=9)
    assert delivered_a == delivered_b
    assert channel_a.stats() == channel_b.stats()


def test_config_validation():
    with pytest.raises(ValueError):
        ChannelConfig(drop_rate=1.5)
    with pytest.raises(ValueError):
        ChannelConfig(duplicate_rate=-0.1)
    with pytest.raises(ValueError):
        ChannelConfig(base_latency=-1.0)
    with pytest.raises(ValueError):
        ChannelConfig(max_retries=-1)
