"""Tests for the central collector."""

import pytest

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import (
    CommunicatorRecord,
    MessageRecord,
    OpLaunchRecord,
    OpRecord,
)
from repro.telemetry.collector import CentralCollector


def comm_record(comm="c", size=4):
    return CommunicatorRecord(
        comm_id=comm, size=size, ranks=tuple(RankLocation(0, i) for i in range(size))
    )


def op(comm="c", seq=0, rank=0, end=1.0):
    return OpRecord(
        comm_id=comm,
        seq=seq,
        op_type=OpType.ALLREDUCE,
        algorithm=Algorithm.RING,
        dtype="fp16",
        element_count=8,
        rank=rank,
        location=RankLocation(0, rank),
        launch_time=end - 1.0,
        start_time=end - 0.5,
        end_time=end,
    )


def launch(comm="c", seq=0, rank=0, t=0.0):
    return OpLaunchRecord(
        comm_id=comm, seq=seq, op_type=OpType.ALLREDUCE, rank=rank,
        location=RankLocation(0, rank), launch_time=t,
    )


def message(comm="c", seq=0, complete=1.0):
    return MessageRecord(
        comm_id=comm, seq=seq, src_node=0, src_nic=0, dst_node=1, dst_nic=0,
        src_ip="a", dst_ip="b", qp_num=1, src_port=50000, message_index=0,
        size_bits=10.0, post_time=complete - 0.5, complete_time=complete,
    )


def test_ingest_requires_registration():
    collector = CentralCollector()
    with pytest.raises(KeyError):
        collector.ingest_op(op())


def test_progress_tracking():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record(size=2), now=5.0)
    progress = collector.progress["c"]
    assert progress.created_at == 5.0
    assert progress.min_seq == -1
    collector.ingest_op(op(seq=0, rank=0))
    assert progress.max_seq == 0
    assert progress.min_seq == -1  # rank 1 hasn't completed
    collector.ingest_op(op(seq=0, rank=1))
    assert progress.min_seq == 0


def test_launch_tracking():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record(size=2))
    collector.ingest_launch(launch(seq=3, rank=0, t=9.0))
    progress = collector.progress["c"]
    assert progress.max_launch_seq == 3
    assert progress.last_launch_time == 9.0


def test_ops_since_filter():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=0, end=1.0))
    collector.ingest_op(op(seq=1, end=5.0))
    assert len(collector.ops("c", since=2.0)) == 1


def test_messages_since_filter():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_message(message(seq=0, complete=1.0))
    collector.ingest_message(message(seq=1, complete=9.0))
    assert len(collector.messages("c", since=5.0)) == 1


def test_ops_for_seq():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=2, rank=0))
    collector.ingest_op(op(seq=2, rank=1))
    collector.ingest_op(op(seq=3, rank=0))
    assert len(collector.ops_for_seq("c", 2)) == 2


def test_launches_for_seq():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_launch(launch(seq=1, rank=0))
    collector.ingest_launch(launch(seq=1, rank=1))
    assert len(collector.launches_for_seq("c", 1)) == 2


def test_latest_seqs():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    for seq in range(5):
        collector.ingest_op(op(seq=seq))
    assert collector.latest_seqs("c", 2) == [3, 4]


def test_window_bound():
    collector = CentralCollector(op_window=3)
    collector.ingest_communicator(comm_record())
    for seq in range(10):
        collector.ingest_op(op(seq=seq))
    assert len(collector.ops("c")) == 3


def test_comm_ids():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record("a"))
    collector.ingest_communicator(comm_record("b"))
    assert set(collector.comm_ids()) == {"a", "b"}


def test_drop_communicator_discards_stragglers():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=0))
    collector.drop_communicator("c")
    assert collector.comm_ids() == []
    # Records still in flight on a lossy channel arrive late: silently
    # discarded, not a KeyError.
    collector.ingest_op(op(seq=1))
    collector.ingest_launch(launch(seq=1, rank=0))
    assert collector.comm_ids() == []


def test_unregistered_communicator_still_raises():
    collector = CentralCollector()
    with pytest.raises(KeyError):
        collector.ingest_op(op(seq=0))


def test_reregistering_dropped_communicator_revives_it():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.drop_communicator("c")
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=0))
    assert collector.progress["c"].max_seq == 0
