"""Tests for the central collector."""

import pytest

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import CommunicatorRecord, MessageRecord, OpLaunchRecord, OpRecord
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.collector import CentralCollector


def comm_record(comm="c", size=4):
    return CommunicatorRecord(
        comm_id=comm, size=size, ranks=tuple(RankLocation(0, i) for i in range(size))
    )


def op(comm="c", seq=0, rank=0, end=1.0):
    return OpRecord(
        comm_id=comm,
        seq=seq,
        op_type=OpType.ALLREDUCE,
        algorithm=Algorithm.RING,
        dtype="fp16",
        element_count=8,
        rank=rank,
        location=RankLocation(0, rank),
        launch_time=end - 1.0,
        start_time=end - 0.5,
        end_time=end,
    )


def launch(comm="c", seq=0, rank=0, t=0.0):
    return OpLaunchRecord(
        comm_id=comm, seq=seq, op_type=OpType.ALLREDUCE, rank=rank,
        location=RankLocation(0, rank), launch_time=t,
    )


def message(comm="c", seq=0, complete=1.0):
    return MessageRecord(
        comm_id=comm, seq=seq, src_node=0, src_nic=0, dst_node=1, dst_nic=0,
        src_ip="a", dst_ip="b", qp_num=1, src_port=50000, message_index=0,
        size_bits=10.0, post_time=complete - 0.5, complete_time=complete,
    )


def test_ingest_requires_registration():
    collector = CentralCollector()
    with pytest.raises(KeyError):
        collector.ingest_op(op())


def test_progress_tracking():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record(size=2), now=5.0)
    progress = collector.progress["c"]
    assert progress.created_at == 5.0
    assert progress.min_seq == -1
    collector.ingest_op(op(seq=0, rank=0))
    assert progress.max_seq == 0
    assert progress.min_seq == -1  # rank 1 hasn't completed
    collector.ingest_op(op(seq=0, rank=1))
    assert progress.min_seq == 0


def test_launch_tracking():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record(size=2))
    collector.ingest_launch(launch(seq=3, rank=0, t=9.0))
    progress = collector.progress["c"]
    assert progress.max_launch_seq == 3
    assert progress.last_launch_time == 9.0


def test_ops_since_filter():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=0, end=1.0))
    collector.ingest_op(op(seq=1, end=5.0))
    assert len(collector.ops("c", since=2.0)) == 1


def test_messages_since_filter():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_message(message(seq=0, complete=1.0))
    collector.ingest_message(message(seq=1, complete=9.0))
    assert len(collector.messages("c", since=5.0)) == 1


def test_ops_for_seq():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=2, rank=0))
    collector.ingest_op(op(seq=2, rank=1))
    collector.ingest_op(op(seq=3, rank=0))
    assert len(collector.ops_for_seq("c", 2)) == 2


def test_launches_for_seq():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_launch(launch(seq=1, rank=0))
    collector.ingest_launch(launch(seq=1, rank=1))
    assert len(collector.launches_for_seq("c", 1)) == 2


def test_latest_seqs():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    for seq in range(5):
        collector.ingest_op(op(seq=seq))
    assert collector.latest_seqs("c", 2) == [3, 4]


def test_window_bound():
    collector = CentralCollector(op_window=3)
    collector.ingest_communicator(comm_record())
    for seq in range(10):
        collector.ingest_op(op(seq=seq))
    assert len(collector.ops("c")) == 3


def test_comm_ids():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record("a"))
    collector.ingest_communicator(comm_record("b"))
    assert set(collector.comm_ids()) == {"a", "b"}


def test_drop_communicator_discards_stragglers():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=0))
    collector.drop_communicator("c")
    assert collector.comm_ids() == []
    # Records still in flight on a lossy channel arrive late: silently
    # discarded, not a KeyError.
    collector.ingest_op(op(seq=1))
    collector.ingest_launch(launch(seq=1, rank=0))
    assert collector.comm_ids() == []


def test_unregistered_communicator_still_raises():
    collector = CentralCollector()
    with pytest.raises(KeyError):
        collector.ingest_op(op(seq=0))


def test_reregistering_dropped_communicator_revives_it():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.drop_communicator("c")
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=0))
    assert collector.progress["c"].max_seq == 0


# ----------------------------------------------------------------------
# Bounded-window eviction accounting
# ----------------------------------------------------------------------
def counter_value(registry, name, **labels):
    family = registry.counter(name, labels=tuple(labels))
    return (family.labels(**labels) if labels else family).value


def test_op_window_evictions_counted_only_on_overflow():
    registry = MetricsRegistry()
    collector = CentralCollector(op_window=3, metrics=registry)
    collector.ingest_communicator(comm_record())
    for seq in range(5):
        collector.ingest_op(op(seq=seq))
    # 5 ingested, window holds 3: exactly 2 evictions, and the window
    # keeps the newest records.
    assert len(collector.ops("c")) == 3
    assert [r.seq for r in collector.ops("c")] == [2, 3, 4]
    assert counter_value(registry, "telemetry_records_ingested_total", kind="op") == 5
    assert counter_value(registry, "telemetry_window_evictions_total", kind="op") == 2


def test_eviction_counters_are_per_kind():
    registry = MetricsRegistry()
    collector = CentralCollector(op_window=2, message_window=1, metrics=registry)
    collector.ingest_communicator(comm_record())
    collector.ingest_launch(launch(seq=0))
    collector.ingest_launch(launch(seq=1))
    collector.ingest_launch(launch(seq=2))  # launches share op_window
    collector.ingest_message(message(seq=0))
    collector.ingest_message(message(seq=1))
    assert counter_value(registry, "telemetry_window_evictions_total", kind="launch") == 1
    assert counter_value(registry, "telemetry_window_evictions_total", kind="message") == 1
    assert counter_value(registry, "telemetry_window_evictions_total", kind="op") == 0


def test_straggler_records_counted():
    registry = MetricsRegistry()
    collector = CentralCollector(metrics=registry)
    collector.ingest_communicator(comm_record())
    collector.drop_communicator("c")
    collector.ingest_op(op(seq=1))
    collector.ingest_message(message(seq=1))
    assert counter_value(registry, "telemetry_straggler_records_total") == 2
    # Stragglers are discarded, not ingested.
    assert counter_value(registry, "telemetry_records_ingested_total", kind="op") == 0


def test_registered_communicators_gauge_tracks_lifecycle():
    registry = MetricsRegistry()
    collector = CentralCollector(metrics=registry)
    gauge = registry.gauge("telemetry_registered_communicators")
    collector.ingest_communicator(comm_record("a"))
    collector.ingest_communicator(comm_record("b"))
    assert gauge.value == 2
    collector.drop_communicator("a")
    assert gauge.value == 1


# ----------------------------------------------------------------------
# Out-of-order records must not regress progress bookkeeping
# ----------------------------------------------------------------------
def test_out_of_order_ops_do_not_regress_progress():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record(size=2))
    collector.ingest_op(op(seq=5, rank=0, end=50.0))
    # A delayed record for an older op arrives late (lossy channel
    # reordering): the per-rank high-water marks must not move backward.
    collector.ingest_op(op(seq=2, rank=0, end=20.0))
    progress = collector.progress["c"]
    assert progress.last_seq[0] == 5
    assert progress.last_completion_time == 50.0
    assert progress.max_seq == 5
    assert progress.min_seq == -1  # rank 1 still silent


def test_out_of_order_launches_do_not_regress_progress():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record(size=2))
    collector.ingest_launch(launch(seq=4, rank=1, t=40.0))
    collector.ingest_launch(launch(seq=1, rank=1, t=10.0))
    progress = collector.progress["c"]
    assert progress.last_launch_seq[1] == 4
    assert progress.last_launch_time == 40.0
    assert progress.max_launch_seq == 4


def test_out_of_order_records_still_stored_for_queries():
    collector = CentralCollector()
    collector.ingest_communicator(comm_record())
    collector.ingest_op(op(seq=5, rank=0, end=50.0))
    collector.ingest_op(op(seq=2, rank=0, end=20.0))
    # Detectors query by seq regardless of arrival order.
    assert len(collector.ops_for_seq("c", 2)) == 1
    assert collector.latest_seqs("c", 10) == [2, 5]
