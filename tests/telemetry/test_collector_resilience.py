"""Collector resilience: tombstone eviction and out-of-order records
across a simulated master restart (snapshot -> restore round-trip)."""

import pytest

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import (
    CommunicatorRecord,
    MessageRecord,
    OpLaunchRecord,
    OpRecord,
)
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.collector import CentralCollector


def comm_record(comm="c", size=4):
    return CommunicatorRecord(
        comm_id=comm, size=size, ranks=tuple(RankLocation(0, i) for i in range(size))
    )


def op(comm="c", seq=0, rank=0, end=1.0):
    return OpRecord(
        comm_id=comm,
        seq=seq,
        op_type=OpType.ALLREDUCE,
        algorithm=Algorithm.RING,
        dtype="fp16",
        element_count=8,
        rank=rank,
        location=RankLocation(0, rank),
        launch_time=end - 1.0,
        start_time=end - 0.5,
        end_time=end,
    )


def launch(comm="c", seq=0, rank=0, t=0.0):
    return OpLaunchRecord(
        comm_id=comm, seq=seq, op_type=OpType.ALLREDUCE, rank=rank,
        location=RankLocation(0, rank), launch_time=t,
    )


def message(comm="c", seq=0, complete=1.0):
    return MessageRecord(
        comm_id=comm, seq=seq, src_node=0, src_nic=0, dst_node=1, dst_nic=0,
        src_ip="a", dst_ip="b", qp_num=1, src_port=50000, message_index=0,
        size_bits=10.0, post_time=complete - 0.5, complete_time=complete,
    )


def collector(**kwargs):
    return CentralCollector(metrics=MetricsRegistry(), **kwargs)


# ----------------------------------------------------------------------
# Tombstone eviction
# ----------------------------------------------------------------------
def test_tombstone_fifo_evicts_oldest():
    c = collector(tombstone_capacity=2)
    for comm in ("a", "b", "c"):
        c.ingest_communicator(comm_record(comm))
        c.drop_communicator(comm)
    # Capacity 2: "a" was evicted, so its straggler is a hard error
    # again, while "b"/"c" stragglers are silently discarded.
    with pytest.raises(KeyError):
        c.ingest_op(op(comm="a"))
    c.ingest_op(op(comm="b"))
    c.ingest_op(op(comm="c"))


def test_redropping_refreshes_tombstone_order():
    c = collector(tombstone_capacity=2)
    for comm in ("a", "b"):
        c.ingest_communicator(comm_record(comm))
        c.drop_communicator(comm)
    c.drop_communicator("a")  # refresh: "b" is now the oldest
    c.ingest_communicator(comm_record("d"))
    c.drop_communicator("d")
    with pytest.raises(KeyError):
        c.ingest_op(op(comm="b"))
    c.ingest_op(op(comm="a"))  # still tombstoned: silent


def test_reregistration_clears_tombstone():
    c = collector(tombstone_capacity=2)
    c.ingest_communicator(comm_record("a"))
    c.drop_communicator("a")
    c.ingest_communicator(comm_record("a"))  # a new incarnation
    c.ingest_op(op(comm="a", seq=0, rank=0))
    assert c.progress["a"].last_seq[0] == 0


# ----------------------------------------------------------------------
# Out-of-order records across a simulated restart
# ----------------------------------------------------------------------
def restart(c):
    """Snapshot the collector and restore into a fresh instance."""
    successor = collector()
    successor.restore_state(c.snapshot_state())
    return successor


def test_out_of_order_records_across_restart():
    c = collector()
    c.ingest_communicator(comm_record("c", size=2), now=0.0)
    # Records arrive out of order (a lossy channel reorders): seq 2
    # lands first, the restart happens, then the stragglers seq 0/1.
    c.ingest_launch(launch(seq=2, rank=0, t=2.0))
    c.ingest_op(op(seq=2, rank=0, end=3.0))

    c = restart(c)
    c.ingest_launch(launch(seq=0, rank=0, t=0.1))
    c.ingest_op(op(seq=0, rank=0, end=1.0))
    c.ingest_op(op(seq=1, rank=0, end=2.0))
    progress = c.progress["c"]
    # Progress watermarks are max-merged, so the late arrivals never
    # roll them back.
    assert progress.last_seq[0] == 2
    assert progress.last_launch_seq[0] == 2
    assert progress.last_completion_time == 3.0
    assert [r.seq for r in c.ops_for_seq("c", 2)] == [2]


def test_restart_preserves_state_verbatim():
    c = collector()
    c.ingest_communicator(comm_record("c", size=2), now=5.0)
    c.ingest_launch(launch(seq=0, rank=1, t=5.5))
    c.ingest_op(op(seq=0, rank=1, end=6.0))
    c.ingest_message(message(seq=0, complete=6.5))
    c.ingest_communicator(comm_record("gone", size=2), now=7.0)
    c.drop_communicator("gone")
    successor = restart(c)
    assert successor.snapshot_state() == c.snapshot_state()
    # The tombstone survived: stragglers stay silent after the restart.
    successor.ingest_op(op(comm="gone"))


def test_restart_keeps_windows_bounded():
    c = collector(op_window=4)
    c.ingest_communicator(comm_record("c", size=2))
    for seq in range(4):
        c.ingest_op(op(seq=seq, rank=0, end=float(seq)))
    successor = restart(c)
    successor.ingest_op(op(seq=4, rank=0, end=4.0))
    # The restored deque kept its maxlen: the oldest record fell out.
    assert [r.seq for r in successor.ops("c")] == [1, 2, 3, 4]
