"""Cross-package integration tests reproducing the paper's key shapes.

These are the load-bearing assertions of the reproduction: who wins, by
roughly what factor, and where behaviours cross over — mirrored from the
evaluation section and checked end-to-end through the full stack
(cluster + netsim + collective + C4D/C4P + telemetry).
"""

import pytest

from repro.cluster.faults import FaultInjector
from repro.collective.algorithms import OpType
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.placement import contiguous_ranks
from repro.core.c4d.detectors import DetectorConfig
from repro.core.c4d.events import AnomalyType
from repro.core.c4d.master import C4DMaster
from repro.core.c4p.load_balance import DynamicLoadBalancer, LoadBalancerConfig
from repro.netsim.units import GIB
from repro.telemetry.agent import AgentPlane
from repro.telemetry.collector import CentralCollector
from repro.workloads.generator import (
    allreduce_benchmark,
    build_cluster,
    concurrent_allreduce_jobs,
    fig12_spec,
    fig14_jobs,
)


def test_fig9_shape_c4p_beats_ecmp_by_50_percent():
    results = {}
    for use_c4p in (False, True):
        scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=9)
        runner = allreduce_benchmark(scenario, list(range(4)), max_ops=4, warmup_ops=1)
        runner.start()
        scenario.network.run()
        results[use_c4p] = runner.mean_busbw_gbps
    assert results[False] < 240.0  # paper: "lower than 240 Gbps in most cases"
    assert results[True] == pytest.approx(362.0, rel=0.02)  # NVLink-capped peak
    assert results[True] / results[False] > 1.4  # ">= 50% performance gain"


def test_fig10a_shape_uniformity_and_gain():
    means = {}
    for use_c4p in (False, True):
        scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=4)
        runners = concurrent_allreduce_jobs(scenario, max_ops=6, warmup_ops=2)
        for runner in runners:
            runner.start()
        scenario.network.run()
        series = [r.mean_busbw_gbps for r in runners]
        means[use_c4p] = series
    with_c4p, without = means[True], means[False]
    # With C4P all jobs sit at the peak with tiny spread.
    assert max(with_c4p) - min(with_c4p) < 15.0
    assert min(with_c4p) > 350.0
    # Without C4P: big spread, much lower throughput.
    assert max(without) - min(without) > 15.0
    avg_gain = (sum(with_c4p) / 8) / (sum(without) / 8)
    assert avg_gain > 1.5  # paper: +70.3%


def test_fig12_shape_dynamic_lb_recovers_link_failure():
    results = {}
    for dynamic in (False, True):
        # Static TE = planned paths, no chunk re-posting, no path moves.
        scenario = build_cluster(fig12_spec(), use_c4p=True, ecmp_seed=6)
        runners = concurrent_allreduce_jobs(
            scenario, max_ops=40, warmup_ops=0, dynamic=dynamic, qp_work_stealing=dynamic
        )
        for runner in runners:
            runner.start()
        if dynamic:
            contexts = [r.context for r in runners]
            balancer = DynamicLoadBalancer(contexts, LoadBalancerConfig(interval=0.02))
            balancer.start()
        # Fail one of the 8 uplinks mid-run.
        scenario.network.schedule(
            0.1, lambda: scenario.network.fail_link(("lup", 0, 0, 0, 0))
        )
        scenario.network.run(until=2.5)
        after_failure = [
            h.busbw_per_nic_gbps
            for r in runners
            for h in r.handles
            if h.start_time > 0.15
        ]
        results[dynamic] = sum(after_failure) / len(after_failure)
    # Paper: static TE avg 185.76 vs dynamic LB 301.46 (+62.3%); the
    # shape criterion is a clear win for dynamic load balancing, with
    # dynamic staying near the 7/8 ideal.
    assert results[True] > results[False] * 1.15
    assert results[True] > 310.0


def test_fig14_shape_comm_bound_jobs_gain_ga_job_does_not():
    gains = {}
    for which in ("job1", "job3"):
        throughputs = {}
        for use_c4p in (False, True):
            scenario = build_cluster(use_c4p=use_c4p, ecmp_seed=12)
            job = fig14_jobs(scenario, which)
            job.run_steps(3)
            scenario.network.run()
            throughputs[use_c4p] = job.throughput_samples_per_second(skip=1)
        gains[which] = throughputs[True] / throughputs[False] - 1.0
    assert gains["job1"] > 0.08  # communication-bound: real gain
    assert gains["job3"] < 0.05  # GA=16 amortizes comm: no visible gain
    assert gains["job1"] > gains["job3"]


def test_c4d_full_pipeline_on_training_job():
    # A training job with a degraded NIC: C4D must localize it from the
    # job's own telemetry.
    scenario = build_cluster(ecmp_seed=3)
    collector = CentralCollector()
    plane = AgentPlane(collector, clock=lambda: scenario.network.now)
    ctx = CollectiveContext(scenario.topology, sink=plane, job_id="train")
    comm = ctx.communicator(contiguous_ranks(range(8), 8), comm_id="dp")
    FaultInjector(seed=1).degrade_nic_port(scenario.topology, 6, 2, 0, 0.2)
    FaultInjector(seed=1).degrade_nic_port(scenario.topology, 6, 2, 1, 0.2)
    runner = RepeatedOp(ctx, comm, OpType.ALLREDUCE, 1 * GIB, max_ops=5)
    runner.start()
    scenario.network.run()
    master = C4DMaster(collector, DetectorConfig(slow_window=1e9))
    anomalies = master.evaluate(scenario.network.now)
    slow = [a for a in anomalies if a.anomaly_type is AnomalyType.COMM_SLOW]
    assert slow and any(s.node == 6 and s.device == 2 for s in slow[0].suspects)
