"""Engine-level tests: suppression semantics, JSON shape, path walking."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.engine import is_sim_path, suppressions_for

FIXTURES = Path(__file__).parent / "fixtures"


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_rule_specific_noqa_suppresses_only_that_rule() -> None:
    source = "import time\nnow = time.time()  # repro: noqa[SIM001]\n"
    diagnostics = lint_source(source, sim_path=True)
    assert [d.rule for d in diagnostics] == ["SIM001"]
    assert diagnostics[0].suppressed


def test_bare_noqa_suppresses_every_rule_on_the_line() -> None:
    source = "import time\nnow = time.monotonic()  # repro: noqa\n"
    diagnostics = lint_source(source, sim_path=True)
    assert diagnostics[0].suppressed


def test_non_matching_noqa_does_not_suppress() -> None:
    source = "import time\nnow = time.time()  # repro: noqa[SIM002]\n"
    diagnostics = lint_source(source, sim_path=True)
    assert [d.rule for d in diagnostics] == ["SIM001"]
    assert not diagnostics[0].suppressed


def test_suppressed_fixture_has_no_unsuppressed_diagnostics() -> None:
    source = (FIXTURES / "suppressed.py").read_text()
    diagnostics = lint_source(source, path="suppressed.py", sim_path=True)
    assert diagnostics, "the fixture is supposed to contain waived violations"
    assert all(d.suppressed for d in diagnostics)


def test_suppressions_for_parses_directives() -> None:
    source = "a = 1\nb = 2  # repro: noqa[SIM001, OBS001]\nc = 3  # repro: noqa\n"
    assert suppressions_for(source) == {
        2: frozenset({"SIM001", "OBS001"}),
        3: None,
    }


# ----------------------------------------------------------------------
# Scoping and rule selection
# ----------------------------------------------------------------------
def test_is_sim_path_matches_package_components() -> None:
    assert is_sim_path("src/repro/netsim/engine.py")
    assert is_sim_path("src/repro/chaos/fabric.py")
    assert not is_sim_path("src/repro/cli.py")
    assert not is_sim_path("tests/lint/fixtures/sim001_bad.py")


def test_rule_ids_filter_restricts_the_run() -> None:
    source = "import time\nnow = time.time()\nfor x in set(items):\n    use(x)\n"
    only_sim004 = lint_source(source, sim_path=True, rule_ids=["SIM004"])
    assert [d.rule for d in only_sim004] == ["SIM004"]


def test_unknown_rule_ids_raise() -> None:
    with pytest.raises(KeyError):
        lint_source("x = 1\n", rule_ids=["NOPE999"])


# ----------------------------------------------------------------------
# Report aggregation and JSON shape
# ----------------------------------------------------------------------
def test_lint_paths_walks_fixture_directory() -> None:
    report = lint_paths([FIXTURES])
    assert report.files_checked == len(list(FIXTURES.glob("*.py")))
    # Fixtures live outside the sim packages, so only the everywhere
    # rules (OBS001) fire via path inference.
    assert set(report.counts_by_rule()) == {"OBS001"}
    assert not report.ok


def test_json_report_shape() -> None:
    report = lint_paths([FIXTURES / "obs001_bad.py"])
    payload = json.loads(report.render_json())
    assert set(payload) == {
        "ok",
        "files_checked",
        "unsuppressed",
        "suppressed",
        "counts_by_rule",
        "rules",
        "diagnostics",
    }
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["counts_by_rule"] == {"OBS001": 1}
    assert set(payload["rules"]) >= {"SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "OBS001"}
    (diag,) = payload["diagnostics"]
    assert set(diag) == {"rule", "path", "line", "col", "message", "suppressed"}
    assert diag["rule"] == "OBS001"
    assert diag["path"].endswith("obs001_bad.py")


def test_render_is_stable_and_summarised() -> None:
    report = lint_paths([FIXTURES / "obs001_bad.py"])
    rendered = report.render()
    assert "OBS001" in rendered
    assert rendered.splitlines()[-1].startswith("repro lint: 1 files, 1 violation(s)")


def test_source_tree_is_lint_clean() -> None:
    """The CI contract, asserted locally: zero unsuppressed diagnostics."""
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    report = lint_paths([src])
    assert report.unsuppressed == [], report.render()
