# Fixture: SIM005-clean — callbacks schedule follow-up work instead.


def drive(network, until):
    def callback():
        network.schedule(1.0, callback)

    network.schedule(1.0, callback)
    network.run(until=until)
