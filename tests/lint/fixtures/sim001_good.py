# Fixture: SIM001-clean — time comes from the event loop.


def stamp(record, network):
    record["sim"] = network.now
    return network.now
