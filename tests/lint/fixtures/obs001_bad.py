# Fixture: OBS001 violation — metric registered inside a hot loop.


def observe(registry, flows):
    for flow in flows:
        registry.counter("flow_bytes_total", "Bytes").inc(flow.size)  # OBS001
