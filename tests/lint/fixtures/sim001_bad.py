# Fixture: SIM001 violations — wall-clock reads in a simulation path.
import time
from time import perf_counter  # SIM001: wall-clock import


def stamp(record):
    record["wall"] = time.time()  # SIM001: wall clock
    return perf_counter()
