# Fixture: SIM004 violations — iterating set-typed expressions unsorted.


def emit(queue, victims, survivors):
    for node in set(victims):  # SIM004: set() iteration
        queue.append(node)
    for node in set(victims) & set(survivors):  # SIM004: set algebra
        queue.append(node)
    return [n for n in {0, 1, 2}]  # SIM004: set-literal comprehension
