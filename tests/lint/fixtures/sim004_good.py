# Fixture: SIM004-clean — set iteration is always ordered via sorted().


def emit(queue, victims, survivors):
    for node in sorted(set(victims)):
        queue.append(node)
    if set(victims).intersection(survivors):
        queue.append("overlap")
    return [n for n in sorted({0, 1, 2})]
