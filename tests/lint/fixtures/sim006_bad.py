# Fixture: SIM006 violations — managed master state written outside the
# journaled mutation path (linted under a controlplane/ virtual path).


class Plane:
    def __init__(self, collector, master, steering):
        self.collector = collector
        self.master = master
        self.steering = steering
        self.epoch = 0

    def poke(self):
        self.master.epoch = 99  # SIM006: ad-hoc write bypasses the journal

    def patch_progress(self, comm_id):
        self.collector.progress[comm_id].min_seq += 1  # SIM006: subscripted write

    def clobber(self, nodes):
        self.steering.isolated = list(nodes)  # SIM006: replaces journaled state
