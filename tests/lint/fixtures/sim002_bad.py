# Fixture: SIM002 violations — unseeded / process-global RNG.
import random

import numpy as np


def sample():
    first = random.random()  # SIM002: global stdlib RNG
    rng = random.Random()  # SIM002: no seed
    gen = np.random.default_rng()  # SIM002: OS entropy
    noise = np.random.normal()  # SIM002: global numpy RNG
    return first, rng, gen, noise
