# Fixture: SIM006-clean — managed state touched only via the journaled
# mutation path or the allowed construction/replay writers.


class Plane:
    def __init__(self, collector, master, steering, store):
        self.collector = collector
        self.master = master
        self.steering = steering
        self.store = store
        self.epoch = 0
        self.master.epoch = 0  # construction-time wiring is allowed

    def _build(self):
        self.master.epoch = self.epoch

    def _replay_entry(self, entry):
        self.master.epoch = entry.epoch

    def recover(self):
        self.master.tracer = None

    def ingest_op(self, record):
        self.store.append("op", {"record": record}, self.epoch)
        self.collector.ingest_op(record)  # a method call, not a raw write

    def rewire(self, collector):
        self.collector = collector  # handle rebinding is construction
