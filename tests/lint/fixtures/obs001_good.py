# Fixture: OBS001-clean — the handle is registered once, reused in the loop.


def observe(registry, flows):
    counter = registry.counter("flow_bytes_total", "Bytes")
    for flow in flows:
        counter.inc(flow.size)
