# Fixture: SIM003 violations — exact equality on simulated-time floats.


def due(entry, network):
    if entry.time == network.now:  # SIM003: exact equality on sim time
        return True
    return entry.end_time != network.now  # SIM003 again
