# Fixture: SIM005 violation — event callback re-enters the event loop.


def drive(network, until):
    def callback():
        network.run(until=until)  # SIM005: re-entrant run from a callback

    network.schedule(1.0, callback)
    network.run(until=until)  # fine: top-level drive
