# Fixture: SIM002-clean — every generator is explicitly seeded.
import random

import numpy as np


def sample(seed: int):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    keyword = np.random.default_rng(seed=seed + 1)
    return rng.random(), gen.random(), keyword.random()
