# Fixture: suppression handling — every violation here carries a waiver.
import time


def stamp(record):
    # Wall clock feeds a log line only, never simulated behaviour.
    record["wall"] = time.time()  # repro: noqa[SIM001]
    record["all"] = time.monotonic()  # repro: noqa
    return record
