# Fixture: SIM003-clean — tolerant / ordered time comparisons.
import math


def due(entry, network):
    if math.isclose(entry.time, network.now):
        return True
    if entry.end_time is None:
        return False
    return entry.end_time <= network.now
