"""Fixture-backed tests for the simulation-safety rule pack.

Each rule has a known-bad and a known-good fixture under
``tests/lint/fixtures/``; the bad file must produce at least one
unsuppressed diagnostic of exactly that rule, the good file none.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (bad fixture, expected minimum violations, good fixture)
RULE_FIXTURES = {
    "SIM001": ("sim001_bad.py", 2, "sim001_good.py"),
    "SIM002": ("sim002_bad.py", 4, "sim002_good.py"),
    "SIM003": ("sim003_bad.py", 2, "sim003_good.py"),
    "SIM004": ("sim004_bad.py", 3, "sim004_good.py"),
    "SIM005": ("sim005_bad.py", 1, "sim005_good.py"),
    "SIM006": ("sim006_bad.py", 3, "sim006_good.py"),
    "OBS001": ("obs001_bad.py", 1, "obs001_good.py"),
}


def lint_fixture(name: str):
    source = (FIXTURES / name).read_text()
    # Fixtures live outside the package tree, so force sim-path scoping.
    # SIM006 additionally scopes to the controlplane package, so its
    # fixtures lint under a controlplane/ virtual path.
    path = f"controlplane/{name}" if name.startswith("sim006") else name
    return lint_source(source, path=path, sim_path=True)


def test_every_rule_has_a_fixture() -> None:
    assert set(RULE_FIXTURES) == set(all_rules())


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_bad_fixture_flags_rule(rule_id: str) -> None:
    bad, minimum, _good = RULE_FIXTURES[rule_id]
    diagnostics = [d for d in lint_fixture(bad) if not d.suppressed]
    matching = [d for d in diagnostics if d.rule == rule_id]
    assert len(matching) >= minimum, f"{bad}: expected >= {minimum} {rule_id}, got {diagnostics}"
    # The bad fixture must be bad in exactly one dimension.
    assert {d.rule for d in diagnostics} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_good_fixture_is_clean(rule_id: str) -> None:
    _bad, _minimum, good = RULE_FIXTURES[rule_id]
    assert lint_fixture(good) == []


def test_diagnostics_carry_location_and_message() -> None:
    diag = lint_fixture("sim001_bad.py")[0]
    assert diag.line > 0 and diag.col >= 0
    assert "wall" in diag.message.lower() or "clock" in diag.message.lower()
    assert diag.path == "sim001_bad.py"
    assert str(diag.line) in diag.format()


def test_sim_rules_skip_non_sim_paths() -> None:
    source = (FIXTURES / "sim001_bad.py").read_text()
    assert lint_source(source, path="sim001_bad.py", sim_path=False) == []


def test_obs001_applies_outside_sim_paths() -> None:
    source = (FIXTURES / "obs001_bad.py").read_text()
    diagnostics = lint_source(source, path="obs001_bad.py", sim_path=False)
    assert [d.rule for d in diagnostics] == ["OBS001"]


def test_sorted_wrapper_satisfies_sim004() -> None:
    clean = "for x in sorted(set(items)):\n    use(x)\n"
    assert lint_source(clean, sim_path=True) == []


def test_seeded_rng_satisfies_sim002() -> None:
    clean = "import numpy as np\nrng = np.random.default_rng(7)\n"
    assert lint_source(clean, sim_path=True) == []
