"""Racecheck tests: a planted ordering race must be caught, clean code not."""

from __future__ import annotations

import random

import pytest

from repro.lint import PerturbedEventQueue, perturbed_scheduling, racecheck
from repro.lint.racecheck import racecheck_scenario, scenario_names, timeline_digest
from repro.netsim.network import FlowNetwork


def racy_runner() -> list:
    """Toy consumer with a deliberate same-instant ordering race.

    Two timers are scheduled for t=1.0; the visible result depends on
    which fires first, i.e. purely on tie-break order.
    """
    order: list[str] = []
    network = FlowNetwork()
    network.schedule(1.0, lambda: order.append("a"))
    network.schedule(1.0, lambda: order.append("b"))
    network.run()
    return [{"order": order}]


def race_free_runner() -> list:
    """Same shape, but the timestamps differ so ordering is causal."""
    order: list[str] = []
    network = FlowNetwork()
    network.schedule(1.0, lambda: order.append("a"))
    network.schedule(2.0, lambda: order.append("b"))
    network.run()
    return [{"order": order}]


def test_racecheck_catches_planted_ordering_race() -> None:
    report = racecheck(racy_runner, replays=10, seed=3, target="toy-race")
    assert report.diverged
    assert report.divergences, "a diverging replay must pinpoint its first delta"
    first = report.divergences[0]
    assert first.index == 0
    assert first.baseline_event == {"order": ["a", "b"]}
    assert first.perturbed_event == {"order": ["b", "a"]}
    assert "DIVERGENT" in report.render()
    payload = report.to_dict()
    assert payload["diverged"] is True
    assert len(payload["replay_digests"]) == 10


def test_racecheck_passes_race_free_runner() -> None:
    report = racecheck(race_free_runner, replays=10, seed=3, target="toy-clean")
    assert not report.diverged
    assert report.replay_digests == [report.baseline_digest] * 10
    assert "no divergence" in report.render()


def test_perturbed_scheduling_restores_the_queue_class() -> None:
    import repro.netsim.network as network_module

    original = network_module.EventQueue
    with perturbed_scheduling(seed=1):
        assert network_module.EventQueue is not original
        queue = FlowNetwork()._queue
        assert isinstance(queue, PerturbedEventQueue)
    assert network_module.EventQueue is original
    assert not isinstance(FlowNetwork()._queue, PerturbedEventQueue)


def test_perturbed_queue_preserves_cross_timestamp_order() -> None:
    fired: list[str] = []
    queue = PerturbedEventQueue(random.Random(0))
    queue.schedule(2.0, lambda: fired.append("late"))
    queue.schedule(1.0, lambda: fired.append("early"))
    for callback in queue.pop_due(10.0):
        callback()
    assert fired == ["early", "late"]


def test_timeline_digest_is_content_addressed() -> None:
    a = [{"t": 1.0, "stage": "detect"}]
    assert timeline_digest(a) == timeline_digest([dict(a[0])])
    assert timeline_digest(a) != timeline_digest([{"t": 2.0, "stage": "detect"}])


def test_racecheck_scenario_rejects_unknown_names() -> None:
    with pytest.raises(KeyError):
        racecheck_scenario("no-such-scenario", replays=1)


def test_scenario_names_cover_the_chaos_catalogue() -> None:
    names = scenario_names()
    assert "link-down" in names and "flapping" in names


@pytest.mark.slow
def test_fabric_scenario_is_racecheck_clean() -> None:
    report = racecheck_scenario("link-down", replays=2, seed=0)
    assert not report.diverged, report.render()
