"""Tests for JSON/CSV export helpers."""

import json

import pytest

from repro.analysis.export import (
    downtime_to_dict,
    message_record_to_dict,
    op_record_to_dict,
    to_jsonable,
    write_json,
    write_records_json,
    write_series_csv,
)
from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import MessageRecord, OpRecord
from repro.training.lifetime import BASELINE_OPERATIONS, LifetimeConfig, simulate_lifetime


def op_record():
    return OpRecord(
        comm_id="c", seq=1, op_type=OpType.ALLREDUCE, algorithm=Algorithm.RING,
        dtype="fp16", element_count=8, rank=2, location=RankLocation(1, 3),
        launch_time=0.0, start_time=0.5, end_time=1.5,
    )


def message_record():
    return MessageRecord(
        comm_id="c", seq=1, src_node=0, src_nic=1, dst_node=2, dst_nic=1,
        src_ip="a", dst_ip="b", qp_num=9, src_port=50000, message_index=0,
        size_bits=128.0, post_time=0.0, complete_time=0.25,
    )


def test_op_record_dict_roundtrips_to_json():
    data = op_record_to_dict(op_record())
    assert json.loads(json.dumps(data)) == data
    assert data["op_type"] == "allreduce"
    assert data["node"] == 1 and data["gpu"] == 3
    assert data["wait_time"] == pytest.approx(0.5)


def test_message_record_dict():
    data = message_record_to_dict(message_record())
    assert data["duration"] == pytest.approx(0.25)
    assert data["qp_num"] == 9


def test_downtime_dict():
    breakdown = simulate_lifetime(LifetimeConfig(seed=1), BASELINE_OPERATIONS)
    data = downtime_to_dict(breakdown)
    assert data["crash_count"] == breakdown.crash_count
    assert data["total_fraction"] == pytest.approx(
        breakdown.total_seconds / breakdown.duration_seconds
    )
    json.dumps(data)  # must be serializable


def test_write_records_json(tmp_path):
    path = write_records_json(
        tmp_path / "records.json", ops=[op_record()], messages=[message_record()]
    )
    payload = json.loads(path.read_text())
    assert len(payload["ops"]) == 1
    assert len(payload["messages"]) == 1


def test_write_json_handles_dataclasses_and_enums(tmp_path):
    from repro.experiments import table1

    result = table1.run(months=3, seed=1)
    path = write_json(tmp_path / "table1.json", result)
    payload = json.loads(path.read_text())
    assert payload["total_events"] == result.total_events
    assert isinstance(payload["rows"], list)


def test_to_jsonable_enum():
    assert to_jsonable(OpType.ALLREDUCE) == "allreduce"


def test_write_series_csv(tmp_path):
    path = write_series_csv(
        tmp_path / "series.csv", ["t", "busbw"], [(0.0, 362.0), (0.1, 355.5)]
    )
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "t,busbw"
    assert len(lines) == 3
