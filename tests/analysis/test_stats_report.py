"""Tests for analysis helpers."""

import pytest

from repro.analysis.report import format_percent_table, format_table
from repro.analysis.stats import improvement_percent, summarize


def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.p50 == pytest.approx(2.5)
    assert summary.spread == pytest.approx(3.0)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError, match="empty series"):
        summarize([])


def test_summarize_accepts_numpy_arrays():
    import numpy as np

    summary = summarize(np.array([2.0, 4.0]))
    assert summary.count == 2
    assert summary.mean == pytest.approx(3.0)
    # An empty array must raise cleanly, not trip numpy's ambiguous
    # truth-value error.
    with pytest.raises(ValueError, match="empty series"):
        summarize(np.array([]))


def test_summarize_accepts_generators():
    summary = summarize(v for v in (1.0, 3.0))
    assert summary.count == 2
    # An exhausted/empty generator is an empty series, not a crash.
    with pytest.raises(ValueError, match="empty series"):
        summarize(v for v in ())


def test_improvement_percent():
    assert improvement_percent(100.0, 115.0) == pytest.approx(15.0)
    assert improvement_percent(200.0, 100.0) == pytest.approx(-50.0)


def test_improvement_validates():
    with pytest.raises(ValueError, match="zero baseline"):
        improvement_percent(0.0, 1.0)
    with pytest.raises(ValueError, match="positive"):
        improvement_percent(-5.0, 1.0)


def test_format_table_alignment():
    out = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "yyyy" in lines[3]


def test_format_percent_table():
    out = format_percent_table({"Total": 0.3119})
    assert "31.19%" in out
