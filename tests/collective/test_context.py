"""Tests for the collective engine."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.algorithms import OpType
from repro.collective.communicator import RankLocation
from repro.collective.context import CollectiveContext, RepeatedOp
from repro.collective.monitoring import RecordingSink
from repro.collective.placement import contiguous_ranks
from repro.netsim.network import FlowNetwork
from repro.netsim.units import GIB


def make_ctx(seed=1, **kwargs):
    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=seed)
    sink = RecordingSink()
    ctx = CollectiveContext(topo, sink=sink, **kwargs)
    return net, topo, ctx, sink


def test_allreduce_completes():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(4), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert handle.done
    assert handle.duration > 0
    assert handle.busbw_per_nic_gbps <= 400.0


def test_busbw_capped_by_nvlink():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(4), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert handle.busbw_per_nic_gbps <= 362.0 + 1e-6


def test_zero_size_rejected():
    _net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    with pytest.raises(ValueError):
        ctx.run_op(comm, OpType.ALLREDUCE, 0.0)


def test_entry_offsets_shift_start():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    offsets = [0.0] * comm.size
    offsets[3] = 1.5
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB, entry_offsets=offsets)
    net.run()
    assert handle.start_time == pytest.approx(1.5)


def test_wrong_offsets_length_rejected():
    _net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    with pytest.raises(ValueError):
        ctx.run_op(comm, OpType.ALLREDUCE, 1.0, entry_offsets=[0.0])


def test_single_node_uses_nvlink_only():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks([0], 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert handle.done
    assert len(net.completed_flows) == 0  # no network flows


def test_hang_never_completes():
    net, _topo, ctx, sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB, hang=True)
    net.schedule(100.0, lambda: None)
    net.run()
    assert not handle.done
    assert handle.hung
    # Launches recorded, completions absent.
    assert len(sink.launches) == comm.size
    assert sink.ops == []


def test_absent_ranks_skip_launch_records():
    net, _topo, ctx, sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB, absent_ranks=[5])
    net.run()
    launched = {r.rank for r in sink.launches}
    assert 5 not in launched
    assert len(launched) == comm.size - 1


def test_op_records_one_per_rank():
    net, _topo, ctx, sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert len(sink.ops) == comm.size
    assert {r.rank for r in sink.ops} == set(range(comm.size))


def test_message_records_per_qp():
    net, _topo, ctx, sink = make_ctx(messages_per_op=4)
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    # 2 node-edges x 8 channels x 2 QPs x 4 messages.
    assert len(sink.messages) == 2 * 8 * 2 * 4
    for record in sink.messages:
        assert record.duration > 0
        assert record.size_bits > 0


def test_connections_are_cached():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    first = len(ctx.connections)
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert len(ctx.connections) == first


def test_send_recv():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    handle = ctx.run_send_recv(RankLocation(0, 0), RankLocation(1, 0), 1 * GIB, comm=comm)
    net.run()
    assert handle.done
    assert handle.op_type is OpType.SEND_RECV


def test_alltoall_completes():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(4), 8))
    handle = ctx.run_op(comm, OpType.ALLTOALL, 1 * GIB)
    net.run()
    assert handle.done


def test_reduce_scatter_faster_than_allreduce():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(4), 8))
    ar = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    rs = ctx.run_op(comm, OpType.REDUCE_SCATTER, 1 * GIB)
    net.run()
    assert rs.duration < ar.duration


def test_work_stealing_improves_unbalanced_connection():
    # Degrade one physical port; with stealing the healthy port picks up
    # the slack, so the op is faster than the no-stealing run.
    def run(stealing):
        net = FlowNetwork()
        topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=1)
        topo.set_port_scale(0, 0, 0, 0.1)
        ctx = CollectiveContext(topo, qp_work_stealing=stealing)
        comm = ctx.communicator(contiguous_ranks(range(2), 8), comm_id=f"ws{stealing}")
        handle = ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
        net.run()
        return handle.duration

    assert run(True) < run(False)


def test_repeated_op_collects_series():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    runner = RepeatedOp(ctx, comm, OpType.ALLREDUCE, 1 * GIB, max_ops=3, warmup_ops=1)
    runner.start()
    net.run()
    assert len(runner.handles) == 3
    assert runner.mean_busbw_gbps > 0


def test_repeated_op_requires_bound():
    _net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    with pytest.raises(ValueError):
        RepeatedOp(ctx, comm, OpType.ALLREDUCE, 1 * GIB)


def test_repeated_op_stop_time():
    net, _topo, ctx, _sink = make_ctx()
    comm = ctx.communicator(contiguous_ranks(range(2), 8))
    runner = RepeatedOp(ctx, comm, OpType.ALLREDUCE, 1 * GIB, stop_time=0.5)
    runner.start()
    net.run()
    assert net.now >= 0.5
    assert runner.handles


def test_two_jobs_share_fabric():
    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=3)
    ctx1 = CollectiveContext(topo, job_id="a")
    ctx2 = CollectiveContext(topo, job_id="b")
    c1 = ctx1.communicator(contiguous_ranks([0, 1], 8), comm_id="a")
    c2 = ctx2.communicator(contiguous_ranks([2, 3], 8), comm_id="b")
    h1 = ctx1.run_op(c1, OpType.ALLREDUCE, 1 * GIB)
    h2 = ctx2.run_op(c2, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert h1.done and h2.done


def test_close_releases_c4p_reservations():
    from repro.core.c4p.master import C4PMaster
    from repro.core.c4p.selector import C4PSelector

    net = FlowNetwork()
    topo = ClusterTopology(TESTBED_16_NODES, net, ecmp_seed=3)
    master = C4PMaster(topo, search_ports=False)
    ctx = CollectiveContext(topo, selector=C4PSelector(master))
    comm = ctx.communicator(contiguous_ranks(range(4), 8))
    ctx.run_op(comm, OpType.ALLREDUCE, 1 * GIB)
    net.run()
    assert any(v > 0 for v in master.registry.link_load.values())
    ctx.close()
    assert all(v == 0 for v in master.registry.link_load.values())
    assert ctx.connections == []
    ctx.close()  # idempotent
