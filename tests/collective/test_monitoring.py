"""Tests for the monitoring record schemas and RecordingSink."""

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import RankLocation
from repro.collective.monitoring import (
    CommunicatorRecord,
    MessageRecord,
    OpLaunchRecord,
    OpRecord,
    RecordingSink,
)


def op_record(seq=0, rank=0, launch=0.0, start=1.0, end=3.0, comm="c"):
    return OpRecord(
        comm_id=comm,
        seq=seq,
        op_type=OpType.ALLREDUCE,
        algorithm=Algorithm.RING,
        dtype="fp16",
        element_count=1024,
        rank=rank,
        location=RankLocation(0, rank),
        launch_time=launch,
        start_time=start,
        end_time=end,
    )


def message_record(seq=0, src=0, dst=1, post=0.0, complete=1.0, size=100.0, comm="c"):
    return MessageRecord(
        comm_id=comm,
        seq=seq,
        src_node=src,
        src_nic=0,
        dst_node=dst,
        dst_nic=0,
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        qp_num=7,
        src_port=50000,
        message_index=0,
        size_bits=size,
        post_time=post,
        complete_time=complete,
    )


def test_op_record_derived_times():
    record = op_record(launch=1.0, start=2.5, end=4.0)
    assert record.duration == 3.0
    assert record.wait_time == 1.5


def test_message_record_duration():
    assert message_record(post=2.0, complete=3.5).duration == 1.5


def test_recording_sink_accumulates():
    sink = RecordingSink()
    sink.on_communicator(CommunicatorRecord("c", 2, (RankLocation(0, 0), RankLocation(0, 1))))
    sink.on_op_launch(
        OpLaunchRecord("c", 0, OpType.ALLREDUCE, 0, RankLocation(0, 0), 0.0)
    )
    sink.on_op(op_record())
    sink.on_message(message_record())
    assert len(sink.communicators) == 1
    assert len(sink.launches) == 1
    assert len(sink.ops) == 1
    assert len(sink.messages) == 1


def test_recording_sink_clear():
    sink = RecordingSink()
    sink.on_op(op_record())
    sink.clear()
    assert sink.ops == []


def test_ops_for_seq_filters():
    sink = RecordingSink()
    sink.on_op(op_record(seq=0))
    sink.on_op(op_record(seq=1))
    sink.on_op(op_record(seq=1, rank=1))
    assert len(sink.ops_for_seq("c", 1)) == 2
    assert sink.ops_for_seq("c", 2) == []


def test_messages_for_seq_filters():
    sink = RecordingSink()
    sink.on_message(message_record(seq=0))
    sink.on_message(message_record(seq=3))
    assert len(sink.messages_for_seq("c", 3)) == 1
