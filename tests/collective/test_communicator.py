"""Tests for communicators and rank layout."""

import pytest

from repro.collective.communicator import Communicator, RankLocation
from repro.collective.placement import contiguous_ranks


def test_requires_ranks():
    with pytest.raises(ValueError):
        Communicator([])


def test_duplicate_ranks_rejected():
    rank = RankLocation(node=0, gpu=0)
    with pytest.raises(ValueError):
        Communicator([rank, rank])


def test_unbalanced_rejected():
    ranks = [RankLocation(0, 0), RankLocation(0, 1), RankLocation(1, 0)]
    with pytest.raises(ValueError):
        Communicator(ranks)


def test_size_and_nodes():
    comm = Communicator(contiguous_ranks([0, 1, 2], 4))
    assert comm.size == 12
    assert comm.num_nodes == 3
    assert comm.ranks_per_node == 4
    assert not comm.is_single_node


def test_single_node():
    comm = Communicator(contiguous_ranks([5], 8))
    assert comm.is_single_node
    assert comm.ring_node_edges() == []


def test_node_sequence_order_preserved():
    comm = Communicator(contiguous_ranks([3, 1, 2], 2))
    assert comm.node_sequence == [3, 1, 2]


def test_ring_edges_wrap():
    comm = Communicator(contiguous_ranks([0, 1, 2], 1))
    assert comm.ring_node_edges() == [(0, 1), (1, 2), (2, 0)]


def test_two_node_ring_has_both_directions():
    comm = Communicator(contiguous_ranks([0, 1], 8))
    assert comm.ring_node_edges() == [(0, 1), (1, 0)]


def test_channels_are_local_gpus():
    ranks = [RankLocation(0, 2), RankLocation(1, 2)]
    comm = Communicator(ranks)
    assert comm.channels() == [2]


def test_local_gpus():
    comm = Communicator(contiguous_ranks([0, 1], 3))
    assert comm.local_gpus(0) == [0, 1, 2]


def test_seq_monotonic():
    comm = Communicator(contiguous_ranks([0], 2))
    assert comm.next_seq() == 0
    assert comm.next_seq() == 1


def test_rank_index():
    ranks = contiguous_ranks([0, 1], 2)
    comm = Communicator(ranks)
    assert comm.rank_index(RankLocation(1, 0)) == 2


def test_comm_ids_unique_by_default():
    c1 = Communicator(contiguous_ranks([0], 1))
    c2 = Communicator(contiguous_ranks([0], 1))
    assert c1.comm_id != c2.comm_id


def test_nic_equals_gpu():
    rank = RankLocation(node=0, gpu=5)
    assert rank.nic == 5
