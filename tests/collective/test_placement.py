"""Tests for placement helpers."""

import pytest

from repro.collective.placement import contiguous_ranks, dp_groups, pp_stage_nodes, tp_groups


def test_contiguous_order():
    ranks = contiguous_ranks([3, 5], 2)
    assert [(r.node, r.gpu) for r in ranks] == [(3, 0), (3, 1), (5, 0), (5, 1)]


def test_contiguous_validates_gpus():
    with pytest.raises(ValueError):
        contiguous_ranks([0], 0)


def test_tp_groups_full_node():
    groups = tp_groups([0, 1], 8, 8)
    assert len(groups) == 2
    assert all(len(g) == 8 for g in groups)
    assert all(r.node == groups[0][0].node for r in groups[0])


def test_tp_groups_half_node():
    groups = tp_groups([0], 8, 4)
    assert len(groups) == 2
    assert [r.gpu for r in groups[1]] == [4, 5, 6, 7]


def test_tp_size_must_divide():
    with pytest.raises(ValueError):
        tp_groups([0], 8, 3)


def test_dp_groups_rail_aligned():
    groups = dp_groups([0, 1, 2], 8, 8)
    assert len(groups) == 8
    for gpu, group in enumerate(groups):
        assert all(r.gpu == gpu for r in group)
        assert [r.node for r in group] == [0, 1, 2]


def test_pp_stage_nodes():
    stages = pp_stage_nodes([0, 1, 2, 3], 2)
    assert stages == [[0, 1], [2, 3]]


def test_pp_must_divide():
    with pytest.raises(ValueError):
        pp_stage_nodes([0, 1, 2], 2)
