"""Tests for connections and QP load shares."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import EcmpPathSelector, PathRequest
from repro.collective.transport import Connection
from repro.netsim.flows import Flow
from repro.netsim.network import FlowNetwork


@pytest.fixture
def conn():
    topo = ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=0)
    selector = EcmpPathSelector(topo)
    request = PathRequest(
        comm_id="c", job_id="j", src_node=0, src_nic=0, dst_node=1, dst_nic=0, num_qps=2
    )
    allocations = selector.allocate(request)
    return Connection(
        request=request, allocations=allocations, src_ip="10.0.0.1", dst_ip="10.0.0.2"
    )


def test_key(conn):
    assert conn.key == (0, 0, 1, 0)


def test_equal_shares_initially(conn):
    for alloc in conn.allocations:
        assert conn.qp_share(alloc) == pytest.approx(0.5)


def test_set_qp_weight_changes_share(conn):
    conn.set_qp_weight(conn.allocations[0], 3.0)
    assert conn.qp_share(conn.allocations[0]) == pytest.approx(0.75)
    assert conn.total_weight == pytest.approx(4.0)


def test_set_qp_weight_updates_inflight_flows(conn):
    alloc = conn.allocations[0]
    flow = Flow(flow_id="f", path=list(alloc.path), size=1.0, metadata={"qp": alloc})
    conn.active_flows.append(flow)
    conn.set_qp_weight(alloc, 2.5)
    assert flow.weight == 2.5


def test_set_qp_weight_rejects_nonpositive(conn):
    with pytest.raises(ValueError):
        conn.set_qp_weight(conn.allocations[0], 0.0)


def test_observe_rate_ewma(conn):
    qp = conn.allocations[0].qp_num
    conn.observe_rate(qp, 100.0)
    assert conn.qp_rate_ewma[qp] == 100.0
    conn.observe_rate(qp, 200.0, alpha=0.5)
    assert conn.qp_rate_ewma[qp] == pytest.approx(150.0)


def test_observe_rate_ignores_nonpositive(conn):
    conn.observe_rate(conn.allocations[0].qp_num, 0.0)
    assert conn.qp_rate_ewma == {}


def test_move_remaining(conn):
    a, b = conn.allocations
    fa = Flow(flow_id="fa", path=list(a.path), size=10.0, metadata={"qp": a})
    fb = Flow(flow_id="fb", path=list(b.path), size=10.0, metadata={"qp": b})
    conn.active_flows.extend([fa, fb])
    moved = conn.move_remaining(a, b, fraction=0.5)
    assert moved == pytest.approx(5.0)
    assert fa.remaining == pytest.approx(5.0)
    assert fb.remaining == pytest.approx(15.0)


def test_move_remaining_without_flows(conn):
    assert conn.move_remaining(conn.allocations[0], conn.allocations[1]) == 0.0


def test_move_remaining_validates_fraction(conn):
    with pytest.raises(ValueError):
        conn.move_remaining(conn.allocations[0], conn.allocations[1], fraction=0.0)


def test_prune_finished(conn):
    from repro.netsim.flows import FlowState

    alloc = conn.allocations[0]
    flow = Flow(flow_id="f", path=list(alloc.path), size=1.0, metadata={"qp": alloc})
    flow.state = FlowState.COMPLETED
    conn.active_flows.append(flow)
    conn.prune_finished()
    assert conn.active_flows == []
