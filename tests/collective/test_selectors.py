"""Tests for the ECMP baseline path selector."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.cluster.topology import ClusterTopology
from repro.collective.selectors import EcmpPathSelector, PathRequest
from repro.netsim.network import FlowNetwork


@pytest.fixture
def topo():
    return ClusterTopology(TESTBED_16_NODES, FlowNetwork(), ecmp_seed=2)


def request(src=0, dst=1, nic=0, qps=2, comm="c0"):
    return PathRequest(
        comm_id=comm,
        job_id="job",
        src_node=src,
        src_nic=nic,
        dst_node=dst,
        dst_nic=nic,
        num_qps=qps,
    )


def test_allocates_requested_qps(topo):
    selector = EcmpPathSelector(topo)
    allocs = selector.allocate(request(qps=3))
    assert len(allocs) == 3
    assert len({a.qp_num for a in allocs}) == 3


def test_one_qp_per_physical_port(topo):
    selector = EcmpPathSelector(topo)
    allocs = selector.allocate(request(qps=2))
    assert {a.choice.src_side for a in allocs} == {0, 1}


def test_paths_reference_real_links(topo):
    selector = EcmpPathSelector(topo)
    for alloc in selector.allocate(request()):
        for link_id in alloc.path:
            assert link_id in topo.network.links


def test_ephemeral_ports_deterministic(topo):
    s1 = EcmpPathSelector(topo, seed=5)
    s2 = EcmpPathSelector(topo, seed=5)
    p1 = [a.src_port for a in s1.allocate(request())]
    p2 = [a.src_port for a in s2.allocate(request())]
    assert p1 == p2


def test_ephemeral_ports_vary_by_connection(topo):
    selector = EcmpPathSelector(topo)
    a1 = selector.allocate(request(comm="c0"))
    a2 = selector.allocate(request(comm="c1"))
    assert [x.src_port for x in a1] != [x.src_port for x in a2]


def test_ports_in_ephemeral_range(topo):
    selector = EcmpPathSelector(topo)
    for alloc in selector.allocate(request(qps=8)):
        assert 49152 <= alloc.src_port < 65536


def test_invalid_qps_rejected(topo):
    with pytest.raises(ValueError):
        EcmpPathSelector(topo, qps_per_connection=0)


def test_five_tuple_uses_nic_ips(topo):
    selector = EcmpPathSelector(topo)
    alloc = selector.allocate(request(src=2, dst=7, nic=3))[0]
    assert alloc.five_tuple.src_ip == topo.node(2).nics[3].ip_address
    assert alloc.five_tuple.dst_ip == topo.node(7).nics[3].ip_address


def test_on_link_down_reroutes_flow(topo):
    from repro.netsim.flows import Flow

    selector = EcmpPathSelector(topo)
    req = request()
    alloc = selector.allocate(req)[0]
    flow = Flow(
        flow_id="f",
        path=list(alloc.path),
        size=1.0,
        metadata={"request": req, "qp": alloc},
    )
    dead = topo.leaf_up(0, alloc.choice.src_side, alloc.choice.spine, alloc.choice.up_port)
    topo.network.add_link("dummy", 1.0)  # ensure net has unrelated state
    link = topo.network.link(dead)
    link.fail()
    selector.on_link_down(link, [flow])
    assert dead not in flow.path
    assert alloc.path == list(flow.path)


def test_on_link_down_ignores_foreign_flows(topo):
    from repro.netsim.flows import Flow

    selector = EcmpPathSelector(topo)
    flow = Flow(flow_id="f", path=[topo.nvlink(0)], size=1.0)
    link = topo.network.link(topo.leaf_up(0, 0, 0, 0))
    link.fail()
    selector.on_link_down(link, [flow])  # must not raise
    assert flow.path == [topo.nvlink(0)]
