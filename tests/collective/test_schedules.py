"""Tests for the multi-phase communication schedules."""

import pytest

from repro.collective.algorithms import Algorithm, OpType
from repro.collective.communicator import Communicator
from repro.collective.context import CollectiveContext
from repro.collective.placement import contiguous_ranks
from repro.collective.schedules import (
    halving_doubling_phases,
    hierarchical_allreduce_phases,
    pairwise_alltoall_phases,
    ring_phases,
    tree_phases,
)
from repro.netsim.units import GIB
from repro.workloads.generator import build_cluster


def comm_of(nodes, gpus=8):
    return Communicator(contiguous_ranks(range(nodes), gpus))


def total_bits(phases):
    return sum(t.bits_per_channel for phase in phases for t in phase)


def test_ring_is_single_phase():
    comm = comm_of(4)
    phases = ring_phases(comm, OpType.ALLREDUCE, 1000.0)
    assert len(phases) == 1
    assert len(phases[0]) == 4  # one edge per node


def test_ring_single_node_empty():
    assert ring_phases(comm_of(1), OpType.ALLREDUCE, 1000.0) == []


def test_halving_doubling_phase_count():
    comm = comm_of(8)
    phases = halving_doubling_phases(comm, 1000.0)
    assert len(phases) == 2 * 3  # log2(8) rounds each way


def test_halving_doubling_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        halving_doubling_phases(comm_of(6), 1000.0)


def test_halving_doubling_total_traffic_matches_ring():
    # Total per-channel bits summed over phases equals the ring's
    # steady-state edge payload (both realize the same allreduce).
    comm = comm_of(8)
    size = 1000.0
    ring_total = sum(
        t.bits_per_channel for t in ring_phases(comm, OpType.ALLREDUCE, size)[0]
    )
    hd_total = total_bits(halving_doubling_phases(comm, size))
    assert hd_total == pytest.approx(ring_total, rel=1e-9)


def test_halving_doubling_payloads_shrink_then_grow():
    comm = comm_of(8)
    phases = halving_doubling_phases(comm, 1024.0)
    sizes = [phase[0].bits_per_channel for phase in phases]
    assert sizes[0] > sizes[1] > sizes[2]
    assert sizes[3] < sizes[4] < sizes[5]
    assert sizes[:3] == sizes[5:2:-1]


def test_tree_phases_double_coverage():
    comm = comm_of(8)
    phases = tree_phases(comm, 1000.0)
    assert len(phases) == 3
    assert [len(p) for p in phases] == [1, 2, 4]


def test_tree_non_power_of_two():
    comm = comm_of(5, gpus=2)
    phases = tree_phases(comm, 1000.0)
    covered = {comm.node_sequence[0]}
    for phase in phases:
        for transfer in phase:
            assert transfer.src_node in covered
            covered.add(transfer.dst_node)
    assert covered == set(comm.node_sequence)


def test_pairwise_alltoall_covers_all_pairs():
    comm = comm_of(4)
    phases = pairwise_alltoall_phases(comm, 1000.0)
    assert len(phases) == 3
    pairs = {(t.src_node, t.dst_node) for phase in phases for t in phase}
    expected = {(a, b) for a in range(4) for b in range(4) if a != b}
    assert pairs == expected


def test_hierarchical_returns_intra_stages():
    comm = comm_of(4)
    pre, phases, post = hierarchical_allreduce_phases(comm, 1000.0)
    assert pre == 1000.0 and post == 1000.0
    assert len(phases) == 1


def test_hierarchical_single_node():
    pre, phases, post = hierarchical_allreduce_phases(comm_of(1), 1000.0)
    assert phases == []


# ----------------------------------------------------------------------
# End-to-end: the engine runs every algorithm to completion.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "op, algorithm",
    [
        (OpType.ALLREDUCE, Algorithm.RING),
        (OpType.ALLREDUCE, Algorithm.HALVING_DOUBLING),
        (OpType.ALLREDUCE, Algorithm.HIERARCHICAL),
        (OpType.BROADCAST, Algorithm.PIPELINE),
        (OpType.BROADCAST, Algorithm.TREE),
        (OpType.ALLTOALL, Algorithm.PAIRWISE),
    ],
)
def test_engine_completes_each_algorithm(op, algorithm):
    scenario = build_cluster(use_c4p=True, ecmp_seed=3)
    context = CollectiveContext(scenario.topology, selector=scenario.selector())
    comm = context.communicator(contiguous_ranks(range(8), 8))
    handle = context.run_op(comm, op, 1 * GIB, algorithm=algorithm)
    scenario.network.run()
    assert handle.done
    assert handle.duration > 0


def test_incompatible_algorithm_rejected():
    scenario = build_cluster()
    context = CollectiveContext(scenario.topology)
    comm = context.communicator(contiguous_ranks(range(2), 8))
    with pytest.raises(ValueError):
        context.run_op(comm, OpType.ALLTOALL, 1.0, algorithm=Algorithm.RING)


def test_hd_busbw_matches_ring_on_clean_fabric():
    results = {}
    for algorithm in (Algorithm.RING, Algorithm.HALVING_DOUBLING):
        scenario = build_cluster(use_c4p=True, ecmp_seed=3)
        context = CollectiveContext(scenario.topology, selector=scenario.selector())
        comm = context.communicator(contiguous_ranks(range(8), 8))
        handle = context.run_op(comm, OpType.ALLREDUCE, 1 * GIB, algorithm=algorithm)
        scenario.network.run()
        results[algorithm] = handle.busbw_per_nic_gbps
    assert results[Algorithm.HALVING_DOUBLING] == pytest.approx(
        results[Algorithm.RING], rel=0.05
    )


def test_hierarchical_pays_nvlink_stages():
    results = {}
    for algorithm in (Algorithm.RING, Algorithm.HIERARCHICAL):
        scenario = build_cluster(use_c4p=True, ecmp_seed=3)
        context = CollectiveContext(scenario.topology, selector=scenario.selector())
        comm = context.communicator(contiguous_ranks(range(8), 8))
        handle = context.run_op(comm, OpType.ALLREDUCE, 1 * GIB, algorithm=algorithm)
        scenario.network.run()
        results[algorithm] = handle.duration
    # Same fabric traffic plus explicit intra-node stages: slower here,
    # worthwhile only when inter-node bandwidth is the scarce resource.
    assert results[Algorithm.HIERARCHICAL] > results[Algorithm.RING]


def test_send_recv_is_one_directional():
    from repro.collective.communicator import RankLocation

    scenario = build_cluster(ecmp_seed=3)
    context = CollectiveContext(scenario.topology)
    comm = context.communicator(contiguous_ranks(range(2), 8))
    handle = context.run_send_recv(RankLocation(0, 0), RankLocation(1, 0), 1 * GIB, comm=comm)
    scenario.network.run()
    # Only forward-direction host links carried traffic.
    assert scenario.network.link(("hup", 0, 0, 0)).bits_carried > 0 or (
        scenario.network.link(("hup", 0, 0, 1)).bits_carried > 0
    )
    assert scenario.network.link(("hup", 1, 0, 0)).bits_carried == 0
    assert scenario.network.link(("hup", 1, 0, 1)).bits_carried == 0
    assert handle.done


def test_phase_latency_penalizes_multiphase_algorithms():
    # With a per-phase alpha, halving-doubling (2 log2 N phases) pays
    # more start-up latency than the single-phase pipelined ring.
    durations = {}
    for algorithm in (Algorithm.RING, Algorithm.HALVING_DOUBLING):
        scenario = build_cluster(use_c4p=True, ecmp_seed=3)
        context = CollectiveContext(
            scenario.topology,
            selector=scenario.selector(),
            phase_latency_seconds=0.001,
        )
        comm = context.communicator(contiguous_ranks(range(8), 8))
        handle = context.run_op(comm, OpType.ALLREDUCE, 1 * GIB, algorithm=algorithm)
        scenario.network.run()
        durations[algorithm] = handle.duration
    # Ring: 1 alpha; HD: 6 alphas (2 * log2(8)).
    extra = durations[Algorithm.HALVING_DOUBLING] - durations[Algorithm.RING]
    assert 0.004 < extra < 0.007


def test_phase_latency_validation():
    import pytest as _pytest

    scenario = build_cluster()
    with _pytest.raises(ValueError):
        CollectiveContext(scenario.topology, phase_latency_seconds=-1.0)
