"""Tests for traffic factors and busbw accounting."""

import pytest

from repro.collective.algorithms import (
    DEFAULT_ALGORITHM,
    Algorithm,
    OpType,
    alltoall_pair_bits,
    busbw,
    ring_edge_bits,
    traffic_factor,
)


def test_allreduce_factor():
    assert traffic_factor(OpType.ALLREDUCE, 4) == pytest.approx(1.5)
    assert traffic_factor(OpType.ALLREDUCE, 2) == pytest.approx(1.0)


def test_factor_approaches_two_for_large_n():
    assert traffic_factor(OpType.ALLREDUCE, 10_000) == pytest.approx(2.0, abs=1e-3)


def test_reduce_scatter_and_allgather_are_half_allreduce():
    for n in (2, 8, 64):
        ar = traffic_factor(OpType.ALLREDUCE, n)
        rs = traffic_factor(OpType.REDUCE_SCATTER, n)
        ag = traffic_factor(OpType.ALL_GATHER, n)
        assert rs + ag == pytest.approx(ar)


def test_broadcast_factor_is_one():
    assert traffic_factor(OpType.BROADCAST, 7) == 1.0


def test_single_rank_factor_zero():
    assert traffic_factor(OpType.ALLREDUCE, 1) == 0.0


def test_invalid_n_rejected():
    with pytest.raises(ValueError):
        traffic_factor(OpType.ALLREDUCE, 0)


def test_busbw_formula():
    # 1.5 factor, 8 bits, 2 seconds -> 6 bits/s.
    assert busbw(OpType.ALLREDUCE, 4, 8.0, 2.0) == pytest.approx(6.0)


def test_busbw_rejects_zero_time():
    with pytest.raises(ValueError):
        busbw(OpType.ALLREDUCE, 4, 8.0, 0.0)


def test_ring_edge_bits_split_by_channels():
    total = ring_edge_bits(OpType.ALLREDUCE, 16, 1000.0, 1)
    per_channel = ring_edge_bits(OpType.ALLREDUCE, 16, 1000.0, 8)
    assert per_channel == pytest.approx(total / 8)


def test_ring_edge_bits_rejects_bad_channels():
    with pytest.raises(ValueError):
        ring_edge_bits(OpType.ALLREDUCE, 16, 1000.0, 0)


def test_alltoall_pair_bits():
    assert alltoall_pair_bits(10, 100.0) == pytest.approx(10.0)
    assert alltoall_pair_bits(1, 100.0) == 0.0


def test_every_op_has_default_algorithm():
    for op in OpType:
        assert op in DEFAULT_ALGORITHM
        assert isinstance(DEFAULT_ALGORITHM[op], Algorithm)
