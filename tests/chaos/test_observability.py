"""End-to-end observability through the chaos harness (ISSUE PR 3).

The acceptance criteria: a chaos campaign must produce a JSON
observability snapshot whose fault spans walk inject → detect → steer →
recover, with aggregate MTTD/MTTR histograms — renderable by the
``repro obs`` dashboard without re-running anything.
"""

import json

import pytest

from repro.chaos import (
    ChaosCampaign,
    flapping_scenario,
    link_down_scenario,
    run_fabric_scenario,
    spine_maintenance_scenario,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import render_dashboard
from repro.obs.trace import FaultTracer


# ----------------------------------------------------------------------
# Fabric scenarios trace the full lifecycle
# ----------------------------------------------------------------------
def test_fabric_scenario_traces_inject_to_recover():
    registry = MetricsRegistry()
    tracer = FaultTracer(metrics=registry)
    scenario = link_down_scenario(seed=0)
    run_fabric_scenario(scenario, metrics=registry, tracer=tracer)
    assert tracer.spans, "link-down must open at least one fault span"
    span = next(iter(tracer.spans.values()))
    # Announced failure: every lifecycle stage lands on the timeline.
    for stage in ("inject", "first_record", "detect", "steer", "recover"):
        assert stage in span.stages, f"missing {stage} on {span.fault_id}"
    assert span.stages["detect"] >= span.stages["inject"]
    assert span.stages["recover"] >= span.stages["steer"]
    # Announced failures are detected at notification time.
    assert span.attrs["via"] == "notification"
    assert span.mttr is not None and span.mttr >= 0


def test_silent_fabric_fault_detected_by_reprobe():
    registry = MetricsRegistry()
    tracer = FaultTracer(metrics=registry)
    run_fabric_scenario(
        spine_maintenance_scenario(seed=1), metrics=registry, tracer=tracer
    )
    silent = [s for s in tracer.spans.values() if s.kind == "link_down_silent"]
    assert silent, "spine maintenance injects silent faults"
    for span in silent:
        if not span.detected:
            continue
        # Nobody announced the fault: detection can only come from the
        # maintenance re-probe, strictly after injection.
        assert span.attrs["via"] == "reprobe"
        assert span.mttd > 0
    assert any(span.detected for span in silent)


# ----------------------------------------------------------------------
# Campaign-level aggregation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def campaign():
    runner = ChaosCampaign(
        scenarios=[
            flapping_scenario(seed=3),
            link_down_scenario(seed=0),
        ]
    )
    runner.run()
    return runner


def test_campaign_snapshot_meets_acceptance_criteria(campaign):
    snapshot = campaign.obs.snapshot(meta={"title": "campaign"})
    # Per-fault spans present, namespaced by scenario.
    assert snapshot["faults"]
    names = {f["fault_id"] for f in snapshot["faults"]}
    assert any(n.startswith("flapping[s3]/") for n in names)
    assert any(n.startswith("link-down[s0]/") for n in names)
    for span in snapshot["faults"]:
        assert "inject" in span["stages"]
    # Aggregate MTTD/MTTR histograms carry samples.
    accounting = snapshot["accounting"]
    assert accounting["detected"] > 0
    assert accounting["mttd"]["count"] > 0
    assert accounting["mttr"]["count"] > 0
    assert "buckets" in accounting["mttd"]
    # The snapshot is a strict-JSON document.
    json.dumps(snapshot, allow_nan=False)


def test_campaign_snapshot_renders_as_dashboard(campaign):
    snapshot = campaign.obs.snapshot(meta={"title": "campaign"})
    text = render_dashboard(snapshot)
    assert "-- fault timelines --" in text
    assert "inject@" in text
    assert "MTTD: n=" in text


def test_campaign_metrics_cover_every_layer(campaign):
    families = {f.name for f in campaign.obs.registry.families()}
    # One series from each instrumented layer: telemetry, C4D, C4P,
    # the simulator, and the tracer itself.
    assert "telemetry_records_ingested_total" in families
    assert "c4d_evaluations_total" in families
    assert "c4p_routes_acquired_total" in families
    assert "netsim_simulated_seconds_total" in families
    assert "obs_fault_stage_total" in families


def test_scenarios_get_isolated_tracers(campaign):
    # Node ids are reused across scenarios; matching must not leak. The
    # flapping scenario's compute-node victims (small ints) must never
    # appear on a fabric span and vice versa.
    for span in campaign.obs.tracer.spans.values():
        scenario_name = span.fault_id.split("/")[0]
        if span.kind.startswith("link_down"):
            assert scenario_name == "link-down[s0]"
        else:
            assert scenario_name == "flapping[s3]"
