"""Acceptance tests for the fabric chaos scenarios (ISSUE PR 2).

These assert the headline criteria through the scorecard, exactly as the
campaign reports them: the mid-job link-down scenario migrates every QP
off the dead link within the migration deadline (zero residual QPs), and
the flapping-link scenario's hold-down keeps every QP off the link while
it is still flapping (zero hold-down violations).
"""

import pytest

from repro.analysis.export import scenario_scorecard_to_dict
from repro.chaos import (
    ChaosCampaign,
    dual_plane_scenario,
    flapping_link_scenario,
    link_down_scenario,
    run_fabric_scenario,
    spine_maintenance_scenario,
)
from repro.chaos.scenario import ScenarioKind, flapping_scenario


def test_link_down_migrates_all_qps_within_deadline():
    scenario = link_down_scenario(seed=0)
    card = run_fabric_scenario(scenario)
    fabric = card.fabric
    assert fabric is not None
    # The acceptance criterion: zero residual QPs on dead links when the
    # migration deadline expires, with nothing stranded on the way.
    assert fabric.residual_after_deadline == 0
    assert fabric.stranded == 0
    assert fabric.migrations > 0
    # Announced failure: rerouting is immediate, well inside the deadline.
    assert fabric.reroute_latency_max <= scenario.fabric.migration_deadline
    assert fabric.plane_violations == 0
    assert card.completed


def test_link_down_throughput_recovers():
    fabric = run_fabric_scenario(link_down_scenario(seed=0)).fabric
    assert fabric.pre_fault_throughput > 0
    assert fabric.recovery_time is not None
    # Post-fault load stays balanced across the surviving spines.
    assert fabric.spine_imbalance < 1.5


def test_flapping_link_holddown_prevents_replacement():
    scenario = flapping_link_scenario(seed=0)
    card = run_fabric_scenario(scenario)
    fabric = card.fabric
    # The acceptance criterion: no QP is ever placed back onto a link
    # while its flap guard window is open.
    assert fabric.holddown_violations == 0
    assert fabric.residual_after_deadline == 0
    assert fabric.stranded == 0
    # Both flapping links calm down and pass probation before the end.
    assert fabric.recovered_links == 2
    assert card.completed


def test_spine_maintenance_silent_failure_caught_by_reprobe():
    scenario = spine_maintenance_scenario(seed=0)
    card = run_fabric_scenario(scenario)
    fabric = card.fabric
    # No notification was sent (notify=False): detection had to come from
    # the periodic re-probe, so the latency is positive but bounded by
    # the deadline.
    assert 0.0 < fabric.reroute_latency_max <= scenario.fabric.migration_deadline
    assert fabric.residual_after_deadline == 0
    assert fabric.stranded == 0
    assert card.completed


def test_dual_plane_failure_preserves_planes():
    card = run_fabric_scenario(dual_plane_scenario(seed=0))
    fabric = card.fabric
    # Correlated failures on both planes at once: migration still never
    # crosses planes and still drains everything before the deadline.
    assert fabric.plane_violations == 0
    assert fabric.residual_after_deadline == 0
    assert fabric.stranded == 0
    assert card.completed


@pytest.mark.parametrize(
    "factory",
    [link_down_scenario, flapping_link_scenario, spine_maintenance_scenario],
)
def test_fabric_scenarios_deterministic(factory):
    scenario = factory(seed=7)
    first = scenario_scorecard_to_dict(run_fabric_scenario(scenario))
    second = scenario_scorecard_to_dict(run_fabric_scenario(scenario))
    assert first == second


def test_campaign_dispatches_fabric_scenarios():
    scenario = link_down_scenario(seed=2)
    assert scenario.kind is ScenarioKind.FABRIC
    card = ChaosCampaign([scenario]).run_scenario(scenario)
    assert card.fabric is not None
    assert card.completed


def test_run_fabric_rejects_non_fabric_scenario():
    with pytest.raises(ValueError):
        run_fabric_scenario(flapping_scenario(seed=0))


def test_fabric_scorecard_serializes():
    import json

    payload = scenario_scorecard_to_dict(run_fabric_scenario(link_down_scenario(seed=1)))
    decoded = json.loads(json.dumps(payload))
    assert decoded["fabric"]["residual_after_deadline"] == 0
    assert decoded["fabric"]["qps_total"] > 0
