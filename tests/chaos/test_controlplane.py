"""End-to-end tests for the control-plane chaos scenarios."""

import pytest

from repro.chaos import (
    agent_massacre_scenario,
    collector_partition_scenario,
    failover_scenario,
    master_kill_scenario,
    run_controlplane_scenario,
)
from repro.chaos.scenario import ScenarioKind, default_campaign
from repro.obs.metrics import MetricsRegistry


def run(scenario):
    return run_controlplane_scenario(scenario, metrics=MetricsRegistry())


def test_master_kill_recovers_to_identical_digest():
    card = run(master_kill_scenario(seed=0))
    cp = card.controlplane
    assert cp is not None
    assert cp.kills == 1 and cp.recoveries == 1
    assert cp.failovers == 0  # cold restart, not a standby promotion
    assert cp.replay_digest_match
    assert cp.entries_replayed > 0
    assert cp.duplicate_actions == 0
    assert cp.stale_actions_executed == 0
    assert card.recall >= cp.baseline_recall
    assert card.completed


def test_failover_fences_the_stale_master():
    card = run(failover_scenario(seed=0))
    cp = card.controlplane
    assert cp.failovers == 1
    assert cp.replay_digest_match
    # The demoted primary's post-takeover pokes were rejected, and none
    # of its actions leaked out.
    assert cp.fencing_rejections >= 1
    assert cp.stale_actions_executed == 0
    assert cp.duplicate_actions == 0
    assert card.completed


def test_collector_partition_degrades_without_false_isolations():
    card = run(collector_partition_scenario(seed=0))
    cp = card.controlplane
    # Coverage collapsed during the blackout...
    assert cp.coverage_min == 0.0
    # ...and the degraded gate turned it into missed-detection latency,
    # not a false-isolation storm.
    assert cp.blackout_false_isolations == 0
    assert card.false_isolations == 0
    assert card.isolation_storms == 0
    assert cp.backfilled_records > 0
    assert card.completed


def test_agent_massacre_recovers_coverage():
    card = run(agent_massacre_scenario(seed=0))
    cp = card.controlplane
    assert cp.coverage_min == pytest.approx(0.5)
    assert cp.blackout_false_isolations == 0
    assert card.recall >= cp.baseline_recall
    assert card.completed


def test_default_campaign_includes_controlplane_scenarios():
    scenarios = default_campaign(0)
    kinds = [s.kind for s in scenarios]
    assert kinds.count(ScenarioKind.CONTROLPLANE) == 4
    names = {
        s.name.split("[")[0] for s in scenarios if s.kind is ScenarioKind.CONTROLPLANE
    }
    assert names == {
        "master-kill", "failover", "collector-partition", "agent-massacre"
    }


def test_scenario_without_plan_is_rejected():
    scenario = master_kill_scenario(seed=0)
    from dataclasses import replace

    with pytest.raises(ValueError):
        run_controlplane_scenario(
            replace(scenario, controlplane=None), metrics=MetricsRegistry()
        )
