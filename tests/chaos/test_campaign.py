"""Tests for the chaos harness: scenarios, scoring, and the campaign.

The acceptance-criteria tests at the bottom run the real pipeline
end to end: flapping faults under 10% telemetry loss must be detected
with precision >= 0.9 and zero isolation storms, and a corrupted
checkpoint must be survived by falling back through the snapshot chain.
"""

import pytest

from repro.analysis.export import campaign_scorecard_to_dict
from repro.chaos import (
    ChaosCampaign,
    checkpoint_corruption_scenario,
    crash_under_loss_scenario,
    default_campaign,
    episodes_from_faults,
    flapping_scenario,
)
from repro.chaos.scorecard import score_pipeline_scenario
from repro.cluster.faults import FaultClass, FaultEvent, FaultInjector, FaultType
from repro.core.c4d.events import Anomaly, AnomalyType, Suspect, SuspectKind
from repro.core.c4d.steering import SteeringAction


# ----------------------------------------------------------------------
# Ground-truth grouping
# ----------------------------------------------------------------------
def test_episodes_group_flapping_recurrences():
    events = tuple(
        FaultInjector(seed=2).sample_flapping(3600.0, num_nodes=8, episodes=2)
    )
    episodes = episodes_from_faults(events)
    assert len(episodes) == 2
    assert sum(len(e.windows) for e in episodes) == len(events)
    for episode in episodes:
        assert len(episode.nodes) == 1


def test_episodes_group_cascades_as_one_multi_node_episode():
    events = tuple(
        FaultInjector(seed=2).sample_cascades(
            3600.0, num_nodes=8, cascades=1, group_size=3
        )
    )
    episodes = episodes_from_faults(events)
    assert len(episodes) == 1
    assert len(episodes[0].nodes) == 3


def test_episode_active_at_with_grace():
    crash = FaultEvent(100.0, FaultType.CUDA_ERROR, FaultClass.CRASH, True, 1)
    flap = FaultEvent(
        50.0,
        FaultType.FLAPPING_HOST,
        FaultClass.DEGRADE,
        True,
        2,
        duration=10.0,
        episode_id=0,
    )
    crash_ep, flap_ep = sorted(
        episodes_from_faults((crash, flap)), key=lambda e: e.onset, reverse=True
    )
    assert crash_ep.active_at(1e9)  # permanent fault: window to infinity
    assert flap_ep.active_at(59.0)
    assert not flap_ep.active_at(70.0)
    assert flap_ep.active_at(70.0, grace=15.0)


# ----------------------------------------------------------------------
# Scorecard arithmetic on hand-built actions
# ----------------------------------------------------------------------
def _action(nodes, detected_at, ready_at=None, replacements=()):
    return SteeringAction(
        anomaly=Anomaly(
            anomaly_type=AnomalyType.NONCOMM_SLOW,
            comm_id="c",
            detected_at=detected_at,
            suspects=tuple(
                Suspect(kind=SuspectKind.WORKER, node=n, device=0) for n in nodes
            ),
        ),
        isolated_nodes=tuple(nodes),
        replacement_nodes=tuple(replacements),
        ready_at=ready_at if ready_at is not None else detected_at + 180.0,
    )


def _scenario_with_one_episode():
    from repro.chaos import ChaosScenario

    fault = FaultEvent(
        100.0,
        FaultType.FLAPPING_HOST,
        FaultClass.DEGRADE,
        True,
        3,
        duration=200.0,
        episode_id=0,
    )
    return ChaosScenario(name="unit", seed=0, faults=(fault,))


def test_score_matches_true_action_and_mttr():
    scenario = _scenario_with_one_episode()
    card = score_pipeline_scenario(scenario, [_action([3], detected_at=150.0)])
    assert card.precision == 1.0 and card.recall == 1.0
    assert card.false_isolations == 0 and card.isolation_storms == 0
    assert card.mttr_values == (230.0,)  # ready 330 - onset 100


def test_score_flags_false_action_and_wasted_backup():
    scenario = _scenario_with_one_episode()
    card = score_pipeline_scenario(
        scenario,
        [_action([7], detected_at=150.0, replacements=[9])],  # wrong node
    )
    assert card.precision == 0.0
    assert card.recall == 0.0
    assert card.false_isolations == 1
    assert card.wasted_backups == 1  # the replacement cured nothing


def test_score_counts_isolation_storm():
    scenario = _scenario_with_one_episode()
    actions = [
        _action([3], detected_at=150.0),
        _action([3], detected_at=200.0),  # same node, same episode, again
    ]
    card = score_pipeline_scenario(scenario, actions)
    assert card.precision == 1.0  # both actions targeted a real fault...
    assert card.isolation_storms == 1  # ...but the second is a storm


def test_score_respects_grace_window():
    scenario = _scenario_with_one_episode()
    late = _action([3], detected_at=320.0)  # window closed at 300
    assert score_pipeline_scenario(scenario, [late], grace=100.0).precision == 1.0
    assert score_pipeline_scenario(scenario, [late], grace=10.0).precision == 0.0


# ----------------------------------------------------------------------
# End-to-end campaign runs (the ISSUE acceptance criteria)
# ----------------------------------------------------------------------
def test_flapping_under_lossy_telemetry_meets_acceptance():
    # Flapping faults + 10% telemetry drop: the hardened pipeline must
    # keep detection precision >= 0.9 with zero isolation storms (no
    # node isolated more than once per fault episode).
    scenario = flapping_scenario(seed=0, drop_rate=0.10)
    assert scenario.channel.drop_rate == pytest.approx(0.10)
    card = ChaosCampaign([scenario]).run_scenario(scenario)
    assert card.precision >= 0.9
    assert card.isolation_storms == 0
    assert card.true_actions >= 1  # it actually detected something
    assert card.steps_completed > 0
    assert card.channel["dropped_attempts"] > 0  # the channel really lost records


def test_crash_with_failing_steering_recovers():
    scenario = crash_under_loss_scenario(seed=3)
    card = ChaosCampaign([scenario]).run_scenario(scenario)
    assert card.recall == 1.0
    assert card.isolation_storms == 0
    assert card.relaunches >= 1  # the job came back after the crash


def test_checkpoint_corruption_falls_back_not_crashes():
    # The newest snapshot is corrupted right before the crash: recovery
    # must restore from an older valid snapshot and still finish.
    scenario = checkpoint_corruption_scenario(seed=4)
    card = ChaosCampaign([scenario]).run_scenario(scenario)
    assert card.completed  # the run finished despite the damage
    assert card.restore_fallbacks >= 1  # an older snapshot was used
    assert card.recall == 1.0


def test_campaign_runs_all_scenarios_and_aggregates():
    campaign = ChaosCampaign(seed=0)
    assert len(campaign.scenarios) == 13
    card = campaign.run()
    assert len(card.scenarios) == 13
    assert card.precision >= 0.9
    assert card.isolation_storms == 0
    stats = card.mttr_stats()
    assert stats["count"] >= 4
    assert stats["min"] <= stats["median"] <= stats["max"]


def test_campaign_deterministic_under_seed():
    first = campaign_scorecard_to_dict(ChaosCampaign(seed=1).run())
    second = campaign_scorecard_to_dict(ChaosCampaign(seed=1).run())
    assert first == second


def test_scorecard_serializes_to_json_safe_dict():
    import json

    from repro.chaos.scorecard import CampaignScorecard

    scenario = flapping_scenario(seed=0)
    card = ChaosCampaign([scenario]).run_scenario(scenario)
    payload = campaign_scorecard_to_dict(CampaignScorecard(scenarios=(card,)))
    decoded = json.loads(json.dumps(payload))
    assert decoded["scenarios"][0]["name"] == scenario.name
    assert 0.0 <= decoded["precision"] <= 1.0


def test_default_campaign_scenarios_are_seed_offset():
    scenarios = default_campaign(10)
    assert [s.seed for s in scenarios] == list(range(10, 23))
