"""Tests for the experiment runners and the CLI plumbing.

The heavy experiments are exercised by ``benchmarks/``; here we check
the runner/result/formatting machinery on the fast ones and the CLI's
dispatch logic.
"""

from repro.cli import main
from repro.experiments import EXPERIMENTS, fig7, table1, table3


def test_registry_covers_every_table_and_figure():
    assert set(EXPERIMENTS) == {
        "table1", "table3", "fig3", "fig7", "fig9",
        "fig10a", "fig10b", "fig11", "fig12", "fig13", "fig14",
        "ablations",
    }
    for module, description in EXPERIMENTS.values():
        assert callable(module.run)
        assert callable(module.format_result)
        assert description


def test_table1_runner_result_shape():
    result = table1.run(months=6, seed=1)
    assert len(result.rows) == 5
    assert 0.9 < sum(r.proportion for r in result.rows) <= 1.0 + 1e-9
    assert 0 < result.local_fraction < 1
    text = table1.format_result(result)
    assert "NCCL Error" in text and "82.5%" in text


def test_table3_runner_result_shape():
    result = table3.run(seed=3)
    assert result.total_before > result.total_after
    assert result.reduction_factor > 1
    text = table3.format_result(result)
    assert "paper Jun" in text and "Total" in text


def test_fig7_runner_localizes():
    result = fig7.run(victim_node=2, victim_nic=1, ops=4)
    assert result.localized
    text = fig7.format_result(result)
    assert "localized" in text


def test_fig7_heatmap_renders():
    result = fig7.run(ops=3)
    heatmap = fig7.render_heatmap(result.matrix)
    lines = heatmap.splitlines()
    # Header + one row per worker.
    assert len(lines) == len(result.matrix.workers) + 1
    assert "." in heatmap  # unobserved pairs


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_cli_run_table3(capsys):
    assert main(["run", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out


def test_cli_run_with_seed(capsys):
    assert main(["run", "table1", "--seed", "9"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err
