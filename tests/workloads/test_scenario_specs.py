"""Tests for the experiment-specific fabric specs and scenario knobs."""

import pytest

from repro.netsim.units import GBPS
from repro.workloads.generator import build_cluster, fig10b_spec, fig12_spec


def test_fig12_spec_has_eight_uplinks_per_leaf():
    spec = fig12_spec()
    # "1 link error among the 8 uplinks": one fat pipe per spine.
    assert spec.spines_per_rail == 8
    assert spec.uplink_ports_per_spine == 1
    # 1:1 against the 32 x 200G downlinks.
    downlink = spec.leaf_downlink_ports * spec.port_capacity
    uplink = spec.spines_per_rail * spec.uplink_capacity
    assert uplink == pytest.approx(downlink)


def test_fig10b_spec_sits_at_saturation_boundary():
    spec = fig10b_spec()
    # With half the spines disabled, live capacity must be slightly
    # below the NVLink-capped demand (32 flows x ~181 Gbps per leaf).
    live_capacity = (spec.spines_per_rail // 2) * spec.uplink_capacity
    demand = spec.leaf_downlink_ports * spec.nvlink_busbw_gbps * GBPS / 2
    assert 0.9 < live_capacity / demand < 1.05


def test_disable_spines_per_rail_applies_before_probe():
    scenario = build_cluster(use_c4p=True, disable_spines_per_rail=4)
    for rail in range(scenario.topology.spec.rails):
        assert len(scenario.topology.enabled_spines(rail)) == 4
    # The master's catalog excludes the disabled spines' links.
    dead = scenario.master.registry.dead_links
    assert any(link[0] == "lup" and link[3] >= 4 for link in dead)


def test_congestion_excludes_nvlink():
    scenario = build_cluster(congestion=True)
    model = scenario.network.congestion
    assert model is not None
    assert model.link_filter(("lup", 0, 0, 0, 0))
    assert not model.link_filter(("nvl", 3))


def test_no_congestion_by_default():
    assert build_cluster().network.congestion is None
