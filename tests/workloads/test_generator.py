"""Tests for the workload builders."""

import pytest

from repro.cluster.specs import TESTBED_16_NODES
from repro.netsim.units import GIB
from repro.workloads.generator import (
    FIG14_SPECS,
    allreduce_benchmark,
    build_cluster,
    concurrent_allreduce_jobs,
    fig14_jobs,
    scaling_sweep_job,
)


def test_build_cluster_without_c4p():
    scenario = build_cluster()
    assert scenario.master is None
    assert scenario.selector() is None


def test_build_cluster_with_c4p():
    scenario = build_cluster(use_c4p=True)
    assert scenario.master is not None
    assert scenario.selector() is not None


def test_build_cluster_with_congestion():
    scenario = build_cluster(congestion=True)
    assert scenario.network.congestion is not None


def test_allreduce_benchmark_runs():
    scenario = build_cluster(ecmp_seed=2)
    runner = allreduce_benchmark(scenario, [0, 1], size_bits=1 * GIB, max_ops=3, warmup_ops=1)
    runner.start()
    scenario.network.run()
    assert len(runner.handles) == 3
    assert runner.mean_busbw_gbps > 0


def test_concurrent_jobs_disjoint_nodes():
    scenario = build_cluster()
    runners = concurrent_allreduce_jobs(scenario, num_jobs=4, nodes_per_job=2, max_ops=1)
    comms = [r.comm for r in runners]
    nodes = [n for comm in comms for n in comm.node_sequence]
    assert len(nodes) == len(set(nodes))


def test_concurrent_jobs_capacity_check():
    scenario = build_cluster()
    with pytest.raises(ValueError):
        concurrent_allreduce_jobs(scenario, num_jobs=9, nodes_per_job=2)


def test_fig14_specs_match_paper_configs():
    job1 = FIG14_SPECS["job1"]
    assert job1.plan.tp == 8 and job1.plan.dp == 16
    job2 = FIG14_SPECS["job2"]
    assert job2.plan.dp == 128 and job2.plan.zero
    job3 = FIG14_SPECS["job3"]
    assert job3.plan.tp == 8 and job3.plan.pp == 8 and job3.plan.grad_accumulation == 16


def test_fig14_all_fit_testbed():
    for spec in FIG14_SPECS.values():
        assert spec.plan.nodes_required(8) <= TESTBED_16_NODES.num_nodes


def test_fig14_job_builder():
    scenario = build_cluster(ecmp_seed=1)
    job = fig14_jobs(scenario, "job1")
    job.run_steps(1)
    scenario.network.run()
    assert len(job.steps) == 1


def test_scaling_sweep_job_sizes():
    job = scaling_sweep_job(2, use_c4p=False)
    assert job.spec.plan.world_size == 16
    assert job.spec.global_batch == pytest.approx(16)
