"""Tests for fault-lifecycle tracing and MTTD/MTTR accounting."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FaultTracer, latency_histogram


def tracer(grace=240.0):
    return FaultTracer(metrics=MetricsRegistry(), grace=grace)


# ----------------------------------------------------------------------
# Span staging
# ----------------------------------------------------------------------
def test_register_fault_opens_span_with_inject_stage():
    t = tracer()
    span = t.register_fault("f0", "crash", victims=(3,), injected_at=100.0)
    assert span.injected_at == 100.0
    assert not span.detected
    assert span.mttd is None


def test_register_fault_is_idempotent():
    t = tracer()
    first = t.register_fault("f0", "crash", injected_at=100.0)
    second = t.register_fault("f0", "crash", injected_at=999.0)
    assert first is second
    assert second.injected_at == 100.0


def test_stage_first_occurrence_wins():
    t = tracer()
    t.register_fault("f0", "crash", injected_at=100.0)
    t.stage("f0", "detect", 130.0, detector="hang")
    t.stage("f0", "detect", 500.0)  # re-detection: timeline unchanged
    span = t.spans["f0"]
    assert span.stages["detect"] == 130.0
    assert span.mttd == pytest.approx(30.0)
    assert span.attrs["detector"] == "hang"


def test_stage_validates_name_and_span():
    t = tracer()
    t.register_fault("f0", "crash")
    with pytest.raises(ValueError):
        t.stage("f0", "teleport", 1.0)
    with pytest.raises(KeyError):
        t.stage("missing", "detect", 1.0)


def test_timeline_orders_stages_canonically():
    t = tracer()
    t.register_fault("f0", "crash", injected_at=100.0)
    t.stage("f0", "recover", 400.0)
    t.stage("f0", "detect", 130.0)
    span = t.spans["f0"]
    assert [s for s, _ in span.timeline()] == ["inject", "detect", "recover"]
    assert span.mttr == pytest.approx(300.0)


# ----------------------------------------------------------------------
# Detection matching and false positives
# ----------------------------------------------------------------------
def test_detection_matches_active_fault_by_victim():
    t = tracer()
    t.register_fault("f0", "crash", victims=(3,), injected_at=100.0, windows=[(100.0, 200.0)])
    matched = t.detection(130.0, victims=[3, 7], kind="hang")
    assert matched == ("f0",)
    assert t.spans["f0"].detected
    assert not t.false_positives


def test_detection_without_matching_fault_is_false_positive():
    t = tracer()
    t.register_fault("f0", "crash", victims=(3,), injected_at=100.0)
    assert t.detection(130.0, victims=[8], kind="hang") == ()
    assert len(t.false_positives) == 1
    assert t.false_positives[0].victims == (8,)


def test_detection_respects_grace_window():
    t = tracer(grace=50.0)
    t.register_fault("f0", "flap", victims=(3,), injected_at=100.0, windows=[(100.0, 200.0)])
    # Inside grace past the window end: still the same fault.
    assert t.detection(240.0, victims=[3]) == ("f0",)
    # Beyond grace: a new, unexplained detection.
    assert t.detection(260.0, victims=[3]) == ()
    assert len(t.false_positives) == 1


def test_observe_symptom_records_first_record_stage():
    t = tracer()
    t.register_fault("f0", "crash", victims=(3,), injected_at=100.0)
    t.observe_symptom(110.0, 3)
    t.observe_symptom(115.0, 3)  # later symptom does not move the stage
    assert t.spans["f0"].stages["first_record"] == 110.0


def test_action_stamps_steer_and_recover():
    t = tracer()
    t.register_fault("f0", "crash", victims=(3,), injected_at=100.0)
    t.action(140.0, victims=[3], ready_at=400.0)
    span = t.spans["f0"]
    assert span.stages["steer"] == 140.0
    assert span.stages["recover"] == 400.0
    assert span.mttr == pytest.approx(300.0)


# ----------------------------------------------------------------------
# Metrics emission
# ----------------------------------------------------------------------
def test_tracer_emits_latency_histograms_and_counters():
    registry = MetricsRegistry()
    t = FaultTracer(metrics=registry)
    t.register_fault("f0", "crash", victims=(3,), injected_at=100.0)
    t.detection(130.0, victims=[3])
    t.action(140.0, victims=[3], ready_at=400.0)
    t.detection(150.0, victims=[9])  # false positive
    snapshot = registry.snapshot()
    mttd = snapshot["obs_fault_mttd_seconds"]["series"][0]
    mttr = snapshot["obs_fault_mttr_seconds"]["series"][0]
    assert mttd["count"] == 1 and mttd["max"] == pytest.approx(30.0)
    assert mttr["count"] == 1 and mttr["max"] == pytest.approx(300.0)
    assert snapshot["obs_false_positives_total"]["series"][0]["value"] == 1


# ----------------------------------------------------------------------
# Merging per-scenario tracers
# ----------------------------------------------------------------------
def test_absorb_merges_spans_without_reemitting_metrics():
    registry = MetricsRegistry()
    campaign = FaultTracer(metrics=registry)
    scenario = FaultTracer(metrics=registry)
    scenario.register_fault("s0/f0", "crash", victims=(3,), injected_at=100.0)
    scenario.detection(130.0, victims=[3])
    scenario.detection(150.0, victims=[9])
    stage_counts = {
        labels["stage"]: child.value
        for labels, child in registry._families["obs_fault_stage_total"].series()
    }
    campaign.absorb(scenario)
    assert campaign.spans["s0/f0"].detected
    assert len(campaign.false_positives) == 1
    # Shared registry: absorbing must not double-count the stages.
    after = {
        labels["stage"]: child.value
        for labels, child in registry._families["obs_fault_stage_total"].series()
    }
    assert after == stage_counts


def test_absorb_rejects_duplicate_fault_ids():
    campaign = tracer()
    other = tracer()
    campaign.register_fault("f0", "crash")
    other.register_fault("f0", "crash")
    with pytest.raises(ValueError):
        campaign.absorb(other)


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_accounting_summary():
    t = tracer()
    t.register_fault("f0", "crash", victims=(3,), injected_at=100.0)
    t.register_fault("f1", "crash", victims=(5,), injected_at=200.0)
    t.detection(130.0, victims=[3])
    t.action(140.0, victims=[3], ready_at=400.0)
    t.detection(700.0, victims=[9])
    accounting = t.accounting()
    assert accounting["faults"] == 2
    assert accounting["detected"] == 1
    assert accounting["missed"] == 1
    assert accounting["recovered"] == 1
    assert accounting["false_positives"] == 1
    assert accounting["mttd"]["count"] == 1
    assert accounting["mttr"]["mean"] == pytest.approx(300.0)


def test_latency_histogram_buckets_and_percentiles():
    hist = latency_histogram([3.0, 25.0, 700.0], bounds=(5.0, 30.0, float("inf")))
    assert hist["count"] == 3
    assert hist["buckets"] == {"5": 1, "30": 2, "+Inf": 3}
    assert hist["p50"] == 25.0
    assert hist["min"] == 3.0 and hist["max"] == 700.0


def test_latency_histogram_empty():
    hist = latency_histogram([], bounds=(5.0, float("inf")))
    assert hist == {"count": 0, "buckets": {"5": 0, "+Inf": 0}}


def test_span_to_dict_is_json_safe():
    t = tracer()
    t.register_fault(
        "f0", "link_down", victims=(("rail", 0),), injected_at=100.0,
        windows=[(100.0, float("inf"))],
    )
    t.stage("f0", "detect", 130.0, via="notification")
    payload = t.spans["f0"].to_dict()
    assert payload["windows"] == [[100.0, None]]
    assert payload["victims"] == [str(("rail", 0))]
    assert payload["mttd_seconds"] == pytest.approx(30.0)
    assert payload["attrs"]["via"] == "notification"
